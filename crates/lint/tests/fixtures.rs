//! Self-tests: seeded-violation fixtures proving each rule family
//! detects what it claims to, with the exact diagnostics pinned.

use bft_lint::rules::{Rule, ScanOptions};
use bft_lint::{analyze_source, AllowedSite, Finding};
use std::path::Path;

const OPTS: ScanOptions =
    ScanOptions { quorum_exempt: false, state_machine_crate: true, long_lived_state: true };

fn analyze_fixture(name: &str) -> (Vec<Finding>, Vec<AllowedSite>) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    analyze_source(name, &src, OPTS)
}

/// Asserts that `findings` is exactly the expected `(line, rule,
/// message-fragment)` triples, in order.
fn assert_diagnostics(findings: &[Finding], expected: &[(usize, Rule, &str)]) {
    let got: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{} [{}] {}", f.line, f.col, f.rule, f.message))
        .collect();
    assert_eq!(findings.len(), expected.len(), "finding count mismatch; got:\n{}", got.join("\n"));
    for (f, (line, rule, fragment)) in findings.iter().zip(expected) {
        assert_eq!(f.line, *line, "line of {f}");
        assert_eq!(f.rule, *rule, "rule of {f}");
        assert!(f.message.contains(fragment), "message of {f} should contain {fragment:?}");
        assert!(!f.snippet.is_empty(), "snippet of {f}");
        assert_eq!(f.fingerprint.len(), 16, "fingerprint of {f}");
    }
}

#[test]
fn quorum_fixture_diagnostics() {
    let (findings, allowed) = analyze_fixture("quorum_violations.rs");
    assert_diagnostics(
        &findings,
        &[
            (10, Rule::QuorumArith, "bare quorum arithmetic `2*f + 1`"),
            (14, Rule::QuorumArith, "bare quorum arithmetic `f + 1`"),
            (20, Rule::QuorumArith, "bare quorum arithmetic `n - f`"),
            (24, Rule::QuorumArith, "bare quorum arithmetic `n/2 + 1`"),
            (28, Rule::QuorumArith, "bare quorum arithmetic `.len() vs 3`"),
        ],
    );
    assert!(allowed.is_empty());
}

#[test]
fn determinism_fixture_diagnostics() {
    let (findings, allowed) = analyze_fixture("determinism_violations.rs");
    assert_diagnostics(
        &findings,
        &[
            (4, Rule::Determinism, "`HashMap`"),
            (7, Rule::Determinism, "`HashMap`"),
            (11, Rule::Determinism, "`Instant`"),
            (12, Rule::Determinism, "`Instant`"),
            (16, Rule::Determinism, "`thread::sleep`"),
            (20, Rule::Determinism, "`rand`"),
            (20, Rule::Determinism, "`thread_rng`"),
        ],
    );
    assert!(allowed.is_empty());
}

#[test]
fn determinism_rand_exemption_outside_state_machines() {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/determinism_violations.rs");
    let src = std::fs::read_to_string(path).unwrap();
    let opts =
        ScanOptions { quorum_exempt: false, state_machine_crate: false, long_lived_state: false };
    let (findings, _) = analyze_source("determinism_violations.rs", &src, opts);
    // The bare `rand` path is legal outside `types`/`core`/`rbc`; the
    // entropy-seeded `thread_rng` stays banned everywhere.
    assert!(findings
        .iter()
        .all(|f| { f.rule != Rule::Determinism || !f.message.starts_with("`rand`") }));
    assert!(findings.iter().any(|f| f.message.contains("`thread_rng`")));
}

#[test]
fn panic_fixture_diagnostics() {
    let (findings, allowed) = analyze_fixture("panic_violations.rs");
    assert_diagnostics(
        &findings,
        &[
            (10, Rule::Panic, "`.unwrap()`"),
            (11, Rule::Panic, "`.expect()`"),
            (13, Rule::Panic, "`panic!`"),
            (15, Rule::Panic, "indexing with an integer literal"),
            (15, Rule::Panic, "indexing with an integer literal"),
            (24, Rule::Annotation, "suppresses nothing"),
        ],
    );
    // The reasoned escape hatch silenced exactly one site, and it stays
    // auditable in the report.
    assert_eq!(allowed.len(), 1);
    assert_eq!(allowed[0].rule, Rule::Panic);
    assert_eq!(allowed[0].reason, "fixture demonstrates a reasoned escape hatch");
}

#[test]
fn taint_alloc_fixture_diagnostics() {
    let (findings, allowed) = analyze_fixture("taint_alloc_violations.rs");
    assert_diagnostics(
        &findings,
        &[
            (7, Rule::TaintAlloc, "`with_capacity`"),
            (13, Rule::TaintAlloc, "`.to_vec()` of a tainted-length slice"),
            (19, Rule::TaintAlloc, "a range bound"),
        ],
    );
    assert!(allowed.is_empty());
    // Every W1 finding carries a source → sink taint trace.
    for f in &findings {
        assert!(!f.trace.is_empty(), "missing taint trace on {f}");
        assert!(f.trace[0].contains("wire read"), "trace of {f} must start at the source");
    }
}

#[test]
fn wire_overflow_fixture_diagnostics() {
    let (findings, allowed) = analyze_fixture("wire_overflow_violations.rs");
    assert_diagnostics(
        &findings,
        &[(7, Rule::WireOverflow, "unchecked `*`"), (13, Rule::WireOverflow, "unchecked `+`")],
    );
    assert!(allowed.is_empty());
}

#[test]
fn unbounded_map_fixture_diagnostics() {
    let (findings, allowed) = analyze_fixture("unbounded_map_violations.rs");
    assert_diagnostics(&findings, &[(6, Rule::UnboundedMap, "collection field `rounds`")]);
    assert!(allowed.is_empty());
}

#[test]
fn lock_discipline_fixture_diagnostics() {
    let (findings, allowed) = analyze_fixture("lock_discipline_violations.rs");
    assert_diagnostics(
        &findings,
        &[
            (6, Rule::LockDiscipline, "`.lock().unwrap()`"),
            (6, Rule::Panic, "`.unwrap()`"),
            (12, Rule::LockDiscipline, "nested lock acquisition"),
        ],
    );
    assert!(allowed.is_empty());
}

/// Rule families are stable strings, and fingerprints do not move when
/// the findings shift lines (they hash rule, file, snippet, ordinal —
/// the `rule_family` JSON field rides along without entering the hash).
#[test]
fn wire_rule_families_and_fingerprint_stability() {
    assert_eq!(Rule::TaintAlloc.family(), "W1");
    assert_eq!(Rule::UnboundedMap.family(), "W2");
    assert_eq!(Rule::LockDiscipline.family(), "W3");
    assert_eq!(Rule::WireOverflow.family(), "W4");
    assert_eq!(Rule::Panic.family(), "core");

    let name = "taint_alloc_violations.rs";
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = std::fs::read_to_string(path).unwrap();
    let (original, _) = analyze_source(name, &src, OPTS);
    let shifted_src = format!("// shifted by one line\n{src}");
    let (shifted, _) = analyze_source(name, &shifted_src, OPTS);
    assert_eq!(original.len(), shifted.len());
    for (a, b) in original.iter().zip(&shifted) {
        assert_eq!(a.fingerprint, b.fingerprint, "fingerprint moved under a line shift");
        assert_eq!(a.line + 1, b.line);
    }
}
