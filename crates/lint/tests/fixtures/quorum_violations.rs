//! Fixture: every quorum-arithmetic pattern the linter must catch.
//! Not compiled — read as text by the fixture self-tests.

struct Node {
    config: Config,
}

impl Node {
    fn check_decide(&self, count: usize) -> bool {
        count >= 2 * self.config.f() + 1 // seeded: bare decide threshold
    }

    fn check_adopt(&self, count: usize) -> bool {
        count >= self.config.f() + 1 // seeded: bare ready threshold
    }

    fn quorum_size(&self) -> usize {
        let n = self.config.n();
        let f = self.config.f();
        n - f // seeded: bare quorum
    }

    fn majority(&self) -> usize {
        self.config.n() / 2 + 1 // seeded: bare majority
    }

    fn enough_votes(&self, votes: &[usize]) -> bool {
        votes.len() >= 3 // seeded: numeric quorum literal
    }
}

#[cfg(test)]
mod tests {
    // Inside tests the same arithmetic is fine.
    fn threshold_math_is_allowed_here(f: usize) -> usize {
        2 * f + 1
    }
}
