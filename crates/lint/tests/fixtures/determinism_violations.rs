//! Fixture: every determinism hazard the linter must catch.
//! Not compiled — read as text by the fixture self-tests.

use std::collections::HashMap; // seeded: unordered map

struct Machine {
    votes: HashMap<u64, bool>, // seeded: unordered map (second site)
}

impl Machine {
    fn stamp(&self) -> std::time::Instant {
        Instant::now() // seeded: wall-clock read
    }

    fn nap(&self) {
        std::thread::sleep(core::time::Duration::from_millis(1)); // seeded: real-time wait
    }

    fn roll(&self) -> u64 {
        let mut rng = rand::thread_rng(); // seeded: rand + entropy-seeded RNG
        rng.gen()
    }
}
