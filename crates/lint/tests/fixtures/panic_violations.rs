//! Fixture: every panic-hygiene hazard the linter must catch.
//! Not compiled — read as text by the fixture self-tests.

struct Handler {
    counts: [usize; 2],
}

impl Handler {
    fn on_message(&mut self, slot: Option<usize>) -> usize {
        let v = slot.unwrap(); // seeded: naked unwrap
        let w = slot.expect("populated"); // seeded: naked expect
        if v > w {
            panic!("impossible"); // seeded: panic macro
        }
        self.counts[0] + self.counts[1] // seeded: literal indexing (two sites)
    }

    fn safe(&self, slot: Option<usize>) -> usize {
        // lint: allow(panic) — fixture demonstrates a reasoned escape hatch
        slot.unwrap()
    }

    fn stale(&self) -> usize {
        // lint: allow(panic) — this annotation suppresses nothing and must be flagged
        7
    }
}
