//! Seeded W4 violations: unchecked arithmetic on wire-derived values,
//! plus checked/saturating negatives that must stay clean.

/// Positive: multiplying a decoded count can overflow before any cap.
fn mul_overflow(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    let count = r.u32()? as usize;
    Ok(count * 8)
}

/// Positive: raw addition on a wire-decoded value.
fn add_overflow(r: &mut Reader<'_>) -> Result<u64, DecodeError> {
    let base = r.u64()?;
    Ok(base + 16)
}

/// Negative: saturating arithmetic cannot overflow.
fn saturating(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    let count = r.u32()? as usize;
    Ok(count.saturating_mul(8))
}

/// Negative: a cap guard clears the taint before the arithmetic.
fn capped(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    let count = r.u32()? as usize;
    if count > MAX_BATCH {
        return Err(DecodeError::Oversize(count as u32));
    }
    Ok(count * 8)
}
