//! Seeded W1 violations: wire-derived quantities reaching allocation
//! and indexing sinks, plus sanitized negatives that must stay clean.

/// Positive: a decoded length sizes an allocation with no cap guard.
fn alloc_from_wire(r: &mut Reader<'_>) -> Result<Vec<u8>, DecodeError> {
    let len = r.u32()? as usize;
    Ok(Vec::with_capacity(len))
}

/// Positive: a tainted-length slice is copied to the heap.
fn copy_from_wire(r: &mut Reader<'_>) -> Result<Vec<u8>, DecodeError> {
    let len = r.u32()? as usize;
    Ok(r.take(len)?.to_vec())
}

/// Positive: a decoded count bounds a decode loop.
fn loop_from_wire(r: &mut Reader<'_>) -> Result<(), DecodeError> {
    let count = r.u32()? as usize;
    for _ in 0..count {
        r.u8()?;
    }
    Ok(())
}

/// Negative: the cap guard with a typed early return sanitizes.
fn capped(r: &mut Reader<'_>) -> Result<Vec<u8>, DecodeError> {
    let len = r.u32()? as usize;
    if len > MAX_PAYLOAD as usize {
        return Err(DecodeError::Oversize(len as u32));
    }
    Ok(r.take(len)?.to_vec())
}

/// Negative: `.min()` clamps the quantity before the allocation.
fn clamped(r: &mut Reader<'_>) -> Result<Vec<u8>, DecodeError> {
    let len = (r.u32()? as usize).min(64);
    Ok(Vec::with_capacity(len))
}
