//! Seeded W2 violations: attacker-extensible collection fields with no
//! in-file GC path, plus GC'd and node-keyed negatives.

/// Positive: an epoch-keyed map that nothing in this file ever trims.
struct LeakyState {
    rounds: BTreeMap<u64, Vec<u8>>,
    done: bool,
}

/// Negative: a NodeId-keyed map is bounded by the membership set.
struct PerPeer {
    counters: BTreeMap<NodeId, u64>,
}

/// Negative: this set has an in-file GC path (`retain` below).
struct Pruned {
    seen: BTreeSet<u64>,
}

impl Pruned {
    fn gc(&mut self, horizon: u64) {
        self.seen.retain(|s| *s >= horizon);
    }
}
