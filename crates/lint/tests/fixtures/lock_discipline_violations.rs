//! Seeded W3 violations: poison-panicking lock use and nested
//! acquisitions, plus a scoped negative that must stay clean.

/// Positive: panics on poison instead of riding it.
fn lock_unwrap(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

/// Positive: acquires `b` while the guard on `a` is still live.
fn nested(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let ga = locked(a);
    let gb = locked(b);
    *ga + *gb
}

/// Negative: the first guard is scoped out before the second lock.
fn scoped(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let x = {
        let ga = locked(a);
        *ga
    };
    let gb = locked(b);
    x + *gb
}
