//! Intra-procedural wire-taint analysis (rule families **W1** and
//! **W4**).
//!
//! Every byte a node decodes from the wire is attacker-chosen, so any
//! wire-derived *quantity* that reaches an allocation, index, range
//! bound or loop limit without first being capped is a Byzantine
//! memory-exhaustion or crash vector — and wire quantities combined
//! with unchecked `+`/`*`/`<<` can overflow before the cap is even
//! consulted.
//!
//! - **Sources**: `Reader`-style numeric reads (`.u8()`/`.u16()`/
//!   `.u32()`/`.u64()`), calls to `*decode*`/`from_bytes` functions,
//!   and parameters of wire-struct type (`Fragment`).
//! - **Sinks (W1, `taint-alloc`)**: `with_capacity`, `reserve`,
//!   `resize`, `vec![_; n]`/`[_; n]`, `.to_vec()` of a tainted-length
//!   slice, indexing, range bounds, `while` loop bounds.
//! - **Sinks (W4, `wire-overflow`)**: raw `+`, `*`, `<<` with a
//!   tainted operand.
//! - **Sanitizers**: a comparison against an untainted bound followed
//!   by an early exit (`if len > MAX { return Err(..) }`), `.min()`,
//!   `min()`, `.clamp()`, `checked_*`/`saturating_*`/`wrapping_*`,
//!   `.len()`, `%`, and `&` masking.
//!
//! The analysis is flow-sensitive over the trees produced by
//! [`crate::expr`] and deliberately conservative the *other* way from
//! a type checker: anything unparsed is clean, so findings stay
//! high-precision and fixable at the source.

use crate::expr::{Arm, Expr, ExprKind, Function, Stmt};
use crate::rules::{RawFinding, Rule};
use std::collections::BTreeMap;

/// What kind of attacker influence a value carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    /// An attacker-chosen numeric quantity (length, count, index).
    Num,
    /// A byte buffer whose *length* is attacker-chosen.
    Buf,
    /// A decoded wire struct: its numeric fields are attacker-chosen.
    Wire,
}

#[derive(Clone, Debug)]
struct Taint {
    kind: Kind,
    trace: Vec<String>,
}

impl Taint {
    fn new(kind: Kind, origin: String) -> Self {
        Taint { kind, trace: vec![origin] }
    }

    fn hop(&self, kind: Kind, step: String) -> Self {
        let mut trace = self.trace.clone();
        if trace.len() < 8 {
            trace.push(step);
        }
        Taint { kind, trace }
    }
}

type Env = BTreeMap<String, Taint>;

/// Runs the taint analysis over every function, appending W1/W4
/// findings to `out`.
pub fn check(functions: &[Function], out: &mut Vec<RawFinding>) {
    for f in functions {
        let mut env = Env::new();
        for (name, ty) in &f.params {
            if name != "self" && ty.contains("Fragment") {
                env.insert(
                    name.clone(),
                    Taint::new(
                        Kind::Wire,
                        format!(
                            "wire-struct param `{name}: {ty}` of fn `{}` (line {})",
                            f.name, f.line
                        ),
                    ),
                );
            }
        }
        let mut cx = Cx { out };
        cx.walk(&f.body, &mut env);
    }
}

struct Cx<'a> {
    out: &'a mut Vec<RawFinding>,
}

/// Result of walking a statement list.
struct BlockInfo {
    diverges: bool,
}

impl Cx<'_> {
    fn finding(&mut self, rule: Rule, line: usize, col: usize, message: String, t: &Taint) {
        self.out.push(RawFinding { rule, line, col, message, trace: t.trace.clone() });
    }

    fn w1(&mut self, line: usize, col: usize, what: &str, t: &Taint) {
        self.finding(
            Rule::TaintAlloc,
            line,
            col,
            format!(
                "wire-tainted value reaches {what} without a cap guard: compare it against a \
                 MAX_*/limit bound (with an early typed-error return) before use"
            ),
            t,
        );
    }

    fn w4(&mut self, line: usize, col: usize, op: &str, t: &Taint) {
        self.finding(
            Rule::WireOverflow,
            line,
            col,
            format!(
                "unchecked `{op}` on a wire-tainted value can overflow: use checked_/saturating_ \
                 arithmetic or cap the operand first"
            ),
            t,
        );
    }

    fn walk(&mut self, stmts: &[Stmt], env: &mut Env) -> BlockInfo {
        for s in stmts {
            match s {
                Stmt::Let { names, destructured, init, els } => {
                    let t = init.as_ref().and_then(|e| self.eval(e, env));
                    if let Some(els) = els {
                        let mut e2 = env.clone();
                        self.walk(els, &mut e2);
                    }
                    self.bind(names, *destructured, t, env);
                }
                Stmt::Assign { target, op, value, line, col } => {
                    let tv = self.eval(value, env);
                    let tt = self.eval_lvalue(target, env);
                    let combined = match op {
                        None => tv,
                        Some(o) => {
                            let t = tv.or(tt);
                            if let Some(t) = &t {
                                if matches!(o.as_str(), "+" | "*" | "<<") {
                                    self.w4(*line, *col, o, t);
                                }
                            }
                            t
                        }
                    };
                    if let ExprKind::Path(segs) = &target.kind {
                        if segs.len() == 1 {
                            match combined {
                                Some(t) => {
                                    env.insert(segs[0].clone(), t);
                                }
                                None => {
                                    env.remove(&segs[0]);
                                }
                            }
                        }
                    }
                }
                Stmt::Expr(e) => {
                    self.eval(e, env);
                }
                Stmt::If { binds, cond, then, els } => {
                    let tc = self.eval_cond(cond, env);
                    let guarded = guarded_vars(cond, env);
                    let mut then_env = env.clone();
                    for v in &guarded {
                        then_env.remove(v);
                    }
                    if let Some(t) = &tc {
                        self.bind(binds, false, Some(t.clone()), &mut then_env);
                    }
                    let then_div = self.walk(then, &mut then_env).diverges;
                    let mut els_env = env.clone();
                    let els_div = match els {
                        Some(e) => self.walk(e, &mut els_env).diverges,
                        None => false,
                    };
                    match (then_div, els_div, els.is_some()) {
                        (true, _, false) => {
                            // `if tainted > bound { return .. }` — sanitized.
                            for v in &guarded {
                                env.remove(v);
                            }
                        }
                        (true, false, true) => *env = els_env,
                        (false, true, _) => *env = then_env,
                        (true, true, true) => { /* unreachable after; keep env */ }
                        _ => merge(env, &then_env, &els_env),
                    }
                }
                Stmt::While { binds, cond, body, line, col } => {
                    if let Some((t, var)) = tainted_cmp_operand(cond, env) {
                        self.finding(
                            Rule::TaintAlloc,
                            *line,
                            *col,
                            format!(
                                "wire-tainted `{var}` bounds a `while` loop without a cap guard: \
                                 an adversarial count stalls or exhausts the node"
                            ),
                            &t,
                        );
                    }
                    let tc = self.eval_cond(cond, env);
                    let mut benv = env.clone();
                    if let Some(t) = &tc {
                        self.bind(binds, false, Some(t.clone()), &mut benv);
                    }
                    self.walk(body, &mut benv);
                    merge_into(env, &benv);
                }
                Stmt::For { vars, iter, body } => {
                    let ti = self.eval(iter, env);
                    let mut benv = env.clone();
                    let elem = ti.map(|t| match t.kind {
                        Kind::Wire => t.hop(Kind::Wire, "element of wire-struct slice".into()),
                        Kind::Buf => t.hop(Kind::Num, "byte of tainted-length buffer".into()),
                        Kind::Num => t,
                    });
                    self.bind(vars, false, elem, &mut benv);
                    self.walk(body, &mut benv);
                    merge_into(env, &benv);
                }
                Stmt::Loop { body } => {
                    let mut benv = env.clone();
                    self.walk(body, &mut benv);
                    merge_into(env, &benv);
                }
                Stmt::Match { scrutinee, arms } => {
                    let t = self.eval(scrutinee, env);
                    self.walk_arms(arms, t, env);
                }
                Stmt::Return { value } => {
                    if let Some(v) = value {
                        self.eval(v, env);
                    }
                    return BlockInfo { diverges: true };
                }
                Stmt::Break | Stmt::Continue => return BlockInfo { diverges: true },
                Stmt::Block(inner) => {
                    if self.walk(inner, env).diverges {
                        return BlockInfo { diverges: true };
                    }
                }
                Stmt::Other => {}
            }
        }
        BlockInfo { diverges: false }
    }

    fn walk_arms(&mut self, arms: &[Arm], scrutinee: Option<Taint>, env: &mut Env) {
        let mut merged = env.clone();
        for arm in arms {
            let mut aenv = env.clone();
            let bound = scrutinee.as_ref().map(|t| match t.kind {
                // Destructuring a wire struct binds its (numeric) fields.
                Kind::Wire => t.hop(Kind::Num, "field bound from wire-struct pattern".into()),
                _ => t.clone(),
            });
            self.bind(&arm.binds, false, bound, &mut aenv);
            let div = self.walk(&arm.body, &mut aenv).diverges;
            if !div {
                merge_into(&mut merged, &aenv);
            }
        }
        *env = merged;
    }

    fn bind(&mut self, names: &[String], destructured: bool, t: Option<Taint>, env: &mut Env) {
        match t {
            Some(t) => {
                let t = if destructured && t.kind == Kind::Wire {
                    t.hop(Kind::Num, "field bound by destructuring a wire struct".into())
                } else {
                    t
                };
                for n in names {
                    env.insert(n.clone(), t.hop(t.kind, format!("bound to `{n}`")));
                }
            }
            None => {
                for n in names {
                    env.remove(n);
                }
            }
        }
    }

    /// Evaluates an lvalue (no fresh sink reports beyond index checks).
    fn eval_lvalue(&mut self, e: &Expr, env: &mut Env) -> Option<Taint> {
        self.eval(e, env)
    }

    /// Evaluates an `if`/`while` condition. `&&` chains are walked
    /// left-to-right with each conjunct's guards applied before the next
    /// is evaluated, so `if idx < n && !seen[idx]` does not report the
    /// short-circuit-protected index.
    fn eval_cond(&mut self, cond: &Expr, env: &mut Env) -> Option<Taint> {
        if let ExprKind::Binary { op, lhs, rhs } = &cond.kind {
            if op == "&&" {
                let tl = self.eval_cond(lhs, env);
                let mut scratch = env.clone();
                for v in guarded_vars(lhs, env) {
                    scratch.remove(&v);
                }
                let tr = self.eval_cond(rhs, &mut scratch);
                return tl.or(tr);
            }
        }
        self.eval(cond, env)
    }

    fn eval(&mut self, e: &Expr, env: &mut Env) -> Option<Taint> {
        let (line, col) = (e.line, e.col);
        match &e.kind {
            ExprKind::Int | ExprKind::Opaque => None,
            ExprKind::Path(segs) => {
                if segs.len() == 1 {
                    env.get(&segs[0]).cloned()
                } else {
                    None
                }
            }
            ExprKind::Field { base, name } => {
                let t = self.eval(base, env)?;
                Some(match t.kind {
                    Kind::Wire => t.hop(Kind::Num, format!("wire-struct field `.{name}`")),
                    _ => t,
                })
            }
            ExprKind::MethodCall { base, name, args } => {
                let targs: Vec<Option<Taint>> = args.iter().map(|a| self.eval(a, env)).collect();
                let tbase = self.eval(base, env);
                self.method_call(base, name, args, targs, tbase, env, line, col)
            }
            ExprKind::Call { callee, args } => {
                let targs: Vec<Option<Taint>> = args.iter().map(|a| self.eval(a, env)).collect();
                let last = match &callee.kind {
                    ExprKind::Path(segs) => segs.last().cloned().unwrap_or_default(),
                    _ => {
                        self.eval(callee, env);
                        String::new()
                    }
                };
                // Sources: decode-shaped constructors.
                if last == "decode"
                    || last.starts_with("decode_")
                    || last.ends_with("_decode")
                    || last == "from_bytes"
                {
                    return Some(Taint::new(
                        Kind::Wire,
                        format!("decoded wire value `{last}(..)` (line {line})"),
                    ));
                }
                // Sinks: capacity taken from a tainted quantity.
                if last == "with_capacity" {
                    if let Some(t) = first_tainted(&targs) {
                        self.w1(line, col, "`with_capacity`", t);
                    }
                    return None;
                }
                // Cleaners.
                if last == "min" {
                    return None;
                }
                // Constructors pass taint through unchanged.
                if matches!(last.as_str(), "Some" | "Ok" | "Err") {
                    return targs.into_iter().flatten().next();
                }
                first_tainted(&targs)
                    .map(|t| t.hop(t.kind, format!("through call `{last}(..)` (line {line})")))
            }
            ExprKind::Macro { name, args, repeat_len } => {
                for a in args {
                    self.eval(a, env);
                }
                if let Some(n) = repeat_len {
                    let tn = self.eval(n, env);
                    if let Some(t) = &tn {
                        if t.kind != Kind::Wire {
                            self.w1(line, col, &format!("a `{name}![_; n]` repeat length"), t);
                        }
                    }
                }
                None
            }
            ExprKind::Index { base, index } => {
                let ti = self.eval(index, env);
                let tb = self.eval(base, env);
                if let Some(t) = &ti {
                    if t.kind == Kind::Num {
                        self.w1(line, col, "a slice/array index (panics out of range)", t);
                    }
                }
                tb.map(|t| match t.kind {
                    Kind::Buf => t.hop(Kind::Num, "byte of tainted-length buffer".into()),
                    _ => t,
                })
            }
            ExprKind::Unary { expr } => self.eval(expr, env),
            ExprKind::Binary { op, lhs, rhs } => {
                let tl = self.eval(lhs, env);
                let tr = self.eval(rhs, env);
                match op.as_str() {
                    "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||" => None,
                    "%" | "&" => None, // bounded by the RHS mask/modulus
                    "+" | "*" | "<<" => {
                        let t = tl.or(tr);
                        if let Some(t) = &t {
                            self.w4(line, col, op, t);
                        }
                        t.map(|t| t.hop(Kind::Num, format!("through `{op}` (line {line})")))
                    }
                    _ => tl.or(tr),
                }
            }
            ExprKind::Range { lo, hi } => {
                let tl = lo.as_ref().and_then(|b| self.eval(b, env));
                let th = hi.as_ref().and_then(|b| self.eval(b, env));
                if let Some(t) = tl.as_ref().or(th.as_ref()) {
                    if t.kind == Kind::Num {
                        self.w1(line, col, "a range bound (slice panics / unbounded loop)", t);
                    }
                }
                tl.or(th)
            }
            ExprKind::Cast { expr } => self.eval(expr, env),
            ExprKind::Try { expr } => self.eval(expr, env),
            ExprKind::Tuple(elems) => {
                let ts: Vec<Option<Taint>> = elems.iter().map(|e| self.eval(e, env)).collect();
                first_tainted(&ts).cloned()
            }
            ExprKind::Closure { params, body } => {
                let mut cenv = env.clone();
                for p in params {
                    cenv.remove(p);
                }
                self.walk(body, &mut cenv);
                None
            }
            ExprKind::IfExpr { cond, then, els } => {
                let tc = self.eval(cond, env);
                let _ = tc;
                let guarded = guarded_vars(cond, env);
                let mut then_env = env.clone();
                for v in &guarded {
                    then_env.remove(v);
                }
                let t1 = self.walk_value_block(then, &mut then_env);
                let t2 = els.as_ref().and_then(|e| {
                    let mut els_env = env.clone();
                    self.walk_value_block(e, &mut els_env)
                });
                t1.or(t2)
            }
            ExprKind::MatchExpr { scrutinee, arms } => {
                let t = self.eval(scrutinee, env);
                let mut result = None;
                for arm in arms {
                    let mut aenv = env.clone();
                    let bound = t.as_ref().map(|t| match t.kind {
                        Kind::Wire => {
                            t.hop(Kind::Num, "field bound from wire-struct pattern".into())
                        }
                        _ => t.clone(),
                    });
                    self.bind(&arm.binds, false, bound, &mut aenv);
                    let tv = self.walk_value_block(&arm.body, &mut aenv);
                    result = result.or(tv);
                }
                result
            }
            ExprKind::StructLit { fields } => {
                let ts: Vec<Option<Taint>> = fields.iter().map(|f| self.eval(f, env)).collect();
                first_tainted(&ts)
                    .map(|t| t.hop(Kind::Wire, "struct built from tainted field".into()))
            }
            ExprKind::BlockExpr(stmts) => {
                let mut benv = env.clone();
                let t = self.walk_value_block(stmts, &mut benv);
                merge_into(env, &benv);
                t
            }
            ExprKind::Diverge { value } => {
                if let Some(v) = value {
                    self.eval(v, env);
                }
                None
            }
        }
    }

    /// Walks a block used as an expression; the trailing expression
    /// statement's taint is the block's value.
    fn walk_value_block(&mut self, stmts: &[Stmt], env: &mut Env) -> Option<Taint> {
        if stmts.is_empty() {
            return None;
        }
        let (head, tail) = stmts.split_at(stmts.len() - 1);
        if self.walk(head, env).diverges {
            return None;
        }
        match &tail[0] {
            Stmt::Expr(e) => self.eval(e, env),
            other => {
                self.walk(std::slice::from_ref(other), env);
                None
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn method_call(
        &mut self,
        base: &Expr,
        name: &str,
        _args: &[Expr],
        targs: Vec<Option<Taint>>,
        tbase: Option<Taint>,
        env: &mut Env,
        line: usize,
        col: usize,
    ) -> Option<Taint> {
        // Sources: Reader-style numeric wire reads.
        if matches!(name, "u8" | "u16" | "u32" | "u64") && targs.is_empty() {
            return Some(Taint::new(Kind::Num, format!("wire read `.{name}()` (line {line})")));
        }
        // `.take(n)` — a slice whose *length* is n.
        if name == "take" && targs.len() == 1 {
            if let Some(Some(t)) = targs.first() {
                return Some(
                    t.hop(Kind::Buf, format!("buffer sized by `.take(..)` (line {line})")),
                );
            }
            return None;
        }
        // Cleaners: bounded or checked projections.
        if matches!(name, "len" | "min" | "clamp" | "count" | "is_empty")
            || name.starts_with("checked_")
            || name.starts_with("saturating_")
            || name.starts_with("wrapping_")
        {
            return None;
        }
        // Sinks: allocation/index amounts.
        if matches!(name, "reserve" | "reserve_exact" | "resize" | "resize_with" | "split_off") {
            if let Some(t) = first_tainted(&targs) {
                if t.kind == Kind::Num {
                    self.w1(line, col, &format!("`.{name}(..)`"), t);
                }
            }
            return None;
        }
        // Materializing a tainted-length slice allocates that length.
        if matches!(name, "to_vec" | "to_owned") {
            if let Some(t) = &tbase {
                if t.kind == Kind::Buf {
                    self.w1(line, col, &format!("`.{name}()` of a tainted-length slice"), t);
                }
            }
            return tbase;
        }
        // Growing a local collection with tainted data taints it.
        if matches!(name, "push" | "insert" | "extend" | "extend_from_slice" | "push_back") {
            if let Some(t) = first_tainted(&targs) {
                if let ExprKind::Path(segs) = &base.kind {
                    if segs.len() == 1 {
                        env.insert(
                            segs[0].clone(),
                            t.hop(t.kind, format!("collected into `{}` (line {line})", segs[0])),
                        );
                    }
                }
            }
            return None;
        }
        // Default: taint flows through the receiver or any argument.
        let t = tbase.as_ref().or_else(|| first_tainted(&targs))?;
        let kind = match (tbase.is_some(), t.kind) {
            // A numeric projection of a wire struct is attacker data.
            (true, Kind::Wire) => Kind::Num,
            (_, k) => k,
        };
        // `.iter()`/`.values()`-style traversal keeps wire structs wire.
        let kind = if matches!(name, "iter" | "values" | "keys" | "next" | "get" | "first" | "last")
            && t.kind == Kind::Wire
        {
            Kind::Wire
        } else {
            kind
        };
        Some(t.hop(kind, format!("through `.{name}(..)` (line {line})")))
    }
}

fn first_tainted(ts: &[Option<Taint>]) -> Option<&Taint> {
    ts.iter().flatten().next()
}

/// Union-merge two branch environments into `env`.
fn merge(env: &mut Env, a: &Env, b: &Env) {
    let mut out = a.clone();
    for (k, v) in b {
        out.entry(k.clone()).or_insert_with(|| v.clone());
    }
    // A var cleared in *both* branches stays cleared.
    env.retain(|k, _| a.contains_key(k) || b.contains_key(k));
    for (k, v) in out {
        env.entry(k).or_insert(v);
    }
}

/// Union-merge a loop-body environment back into `env`.
fn merge_into(env: &mut Env, body: &Env) {
    for (k, v) in body {
        env.entry(k.clone()).or_insert_with(|| v.clone());
    }
}

/// Variables sanitized by a guard condition: a comparison where one
/// side mentions a tainted variable and the other side is untainted
/// (a literal, a `MAX_*` constant, `x.len()`, a clean local…).
fn guarded_vars(cond: &Expr, env: &Env) -> Vec<String> {
    let mut out = Vec::new();
    collect_guards(cond, env, &mut out);
    out
}

fn collect_guards(e: &Expr, env: &Env, out: &mut Vec<String>) {
    if let ExprKind::Binary { op, lhs, rhs } = &e.kind {
        match op.as_str() {
            "&&" | "||" => {
                collect_guards(lhs, env, out);
                collect_guards(rhs, env, out);
            }
            "==" | "!=" | "<" | ">" | "<=" | ">=" => {
                let l = tainted_roots(lhs, env);
                let r = tainted_roots(rhs, env);
                if !l.is_empty() && r.is_empty() {
                    out.extend(l);
                } else if l.is_empty() && !r.is_empty() {
                    out.extend(r);
                }
            }
            _ => {}
        }
    }
}

/// Single-segment path names inside `e` that are currently tainted.
fn tainted_roots(e: &Expr, env: &Env) -> Vec<String> {
    let mut out = Vec::new();
    roots(e, env, &mut out);
    out
}

fn roots(e: &Expr, env: &Env, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Path(segs)
            if segs.len() == 1 && env.contains_key(&segs[0]) && !out.contains(&segs[0]) =>
        {
            out.push(segs[0].clone());
        }
        ExprKind::Field { base, .. }
        | ExprKind::Unary { expr: base }
        | ExprKind::Cast { expr: base }
        | ExprKind::Try { expr: base } => roots(base, env, out),
        ExprKind::MethodCall { base, args, .. } => {
            roots(base, env, out);
            for a in args {
                roots(a, env, out);
            }
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                roots(a, env, out);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            roots(lhs, env, out);
            roots(rhs, env, out);
        }
        ExprKind::Index { base, index } => {
            roots(base, env, out);
            roots(index, env, out);
        }
        ExprKind::Tuple(es) => {
            for e in es {
                roots(e, env, out);
            }
        }
        _ => {}
    }
}

/// For `while` conditions: the first comparison with a tainted operand.
fn tainted_cmp_operand(cond: &Expr, env: &Env) -> Option<(Taint, String)> {
    if let ExprKind::Binary { op, lhs, rhs } = &cond.kind {
        if matches!(op.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=") {
            for side in [lhs, rhs] {
                let vars = tainted_roots(side, env);
                if let Some(v) = vars.first() {
                    if let Some(t) = env.get(v) {
                        return Some((t.clone(), v.clone()));
                    }
                }
            }
        }
        if matches!(op.as_str(), "&&" | "||") {
            return tainted_cmp_operand(lhs, env).or_else(|| tainted_cmp_operand(rhs, env));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_functions;
    use crate::lexer::{mask_source, tokenize};

    fn run(src: &str) -> Vec<RawFinding> {
        let fns = parse_functions(&tokenize(&mask_source(src).code_lines));
        let mut out = Vec::new();
        check(&fns, &mut out);
        out
    }

    #[test]
    fn wire_read_to_with_capacity_fires() {
        let f = run("fn d(r: &mut Reader) { let n = r.u32()? as usize; let v: Vec<u8> = Vec::with_capacity(n); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::TaintAlloc);
        assert!(!f[0].trace.is_empty());
    }

    #[test]
    fn cap_guard_sanitizes() {
        let f = run("fn d(r: &mut Reader) -> Result<(), E> { let n = r.u32()? as usize; \
             if n > MAX_PAYLOAD as usize { return Err(E::Oversize); } \
             let v: Vec<u8> = Vec::with_capacity(n); Ok(()) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn take_to_vec_fires_and_guard_clears_it() {
        let f =
            run("fn d(r: &mut Reader) { let n = r.u32()? as usize; let s = r.take(n)?.to_vec(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = run("fn d(r: &mut Reader) -> Result<(), E> { let n = r.u32()? as usize; \
             if n > CAP { return Err(E::Oversize); } let s = r.take(n)?.to_vec(); Ok(()) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn tainted_loop_and_index_fire() {
        let f = run("fn d(r: &mut R) { let c = r.u32().ok()?; for _ in 0..c { g(); } }");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = run("fn d(r: &mut R, xs: &[u8]) { let i = r.u16()? as usize; let b = xs[i]; }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn unchecked_mul_on_wire_len_is_w4() {
        let f = run("fn d(r: &mut R) { let n = r.u32()? as usize; let bytes = n * 8; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::WireOverflow);
        let f = run("fn d(r: &mut R) { let n = r.u32()? as usize; let b = n.saturating_mul(8); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fragment_param_fields_are_tainted() {
        let f = run("fn rec(frags: &[Fragment]) { let first = frags.first()?; \
             let len = first.total_len as usize; let v: Vec<u8> = Vec::with_capacity(len); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::TaintAlloc);
    }

    #[test]
    fn short_circuit_guard_protects_later_conjuncts() {
        let f = run("fn d(r: &mut R, seen: &[bool]) { let i = r.u32()? as usize; \
             if i < seen.len() && !seen[i] { g(); } }");
        assert!(f.is_empty(), "{f:?}");
        // The guard only protects conjuncts *after* it.
        let f = run("fn d(r: &mut R, seen: &[bool]) { let i = r.u32()? as usize; \
             if !seen[i] && i < seen.len() { g(); } }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn min_and_mod_clean() {
        let f = run("fn d(r: &mut R) { let n = (r.u32()? as usize).min(64); let v: Vec<u8> = Vec::with_capacity(n); }");
        assert!(f.is_empty(), "{f:?}");
        let f = run(
            "fn d(r: &mut R, xs: &[u8]) { let i = r.u32()? as usize % xs.len(); let b = xs[i]; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
