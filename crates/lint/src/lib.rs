//! `bft-lint` — protocol-aware static analysis for the workspace.
//!
//! Bracha-style protocols are correct only because every acceptance rule
//! sits on an exact quorum bound (`f + 1`, `2f + 1`, `⌈(n+f+1)/2⌉` under
//! `n ≥ 3f + 1`): a single transposed threshold silently breaks agreement
//! without failing any happy-path test. This crate machine-checks the
//! discipline DESIGN.md states in prose, with three rule families
//! (see [`rules`]):
//!
//! 1. **`quorum-arith`** — threshold arithmetic lives only in
//!    `types::Config` accessors and tests; protocol code calls the named
//!    accessor.
//! 2. **`determinism`** — no unordered-iteration collections, wall-clock
//!    reads, sleeps, or stray randomness in protocol crates.
//! 3. **`panic`** — no `unwrap`/`expect`/`panic!`/literal indexing in
//!    message-handling code, with a per-site escape hatch:
//!    `// lint: allow(<rule>) — <reason>`.
//!
//! The analyzer is fully self-contained (`std` plus the workspace's own
//! `bft-obs` JSON writer): it needs no `syn`, no registry access, and no
//! build of the code it checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataflow;
mod expr;
pub mod lexer;
pub mod rules;
mod wire_rules;

use bft_obs::json::JsonValue;
use rules::{Rule, ScanOptions};
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// The crates the analyzer walks (each crate's `src/` tree).
pub const PROTOCOL_CRATES: &[&str] = &[
    "types",
    "core",
    "rbc",
    "ec",
    "coin",
    "sim",
    "runtime",
    "adversary",
    "net",
    "order",
    "smr",
    "obs",
    "shim-poll",
];

/// Crates holding pure protocol state machines: these must be RNG-free
/// (randomness enters only through the injected `CoinScheme`).
pub const STATE_MACHINE_CRATES: &[&str] = &["types", "core", "rbc", "ec"];

/// Crates whose structs hold long-lived per-peer/per-epoch protocol
/// state: the `unbounded-map` (W2) rule applies to their fields.
pub const LONG_LIVED_STATE_CRATES: &[&str] = &["core", "rbc", "ec", "coin", "net", "order", "smr"];

/// Files where quorum arithmetic is *defined* rather than used — the
/// `types::Config` accessors — and therefore exempt from `quorum-arith`.
pub const QUORUM_EXEMPT_FILES: &[&str] = &["crates/types/src/config.rs"];

/// Version stamp carried in reports and baselines.
pub const TOOL_VERSION: &str = env!("CARGO_PKG_VERSION");

/// A confirmed violation (post allow-annotation filtering).
#[derive(Clone, Debug)]
pub struct Finding {
    /// The rule family violated.
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human-readable description.
    pub message: String,
    /// For taint findings (W1/W4): the source → sink propagation path.
    pub trace: Vec<String>,
    /// Stable identity for baselining: hash of rule, file, snippet and
    /// same-snippet ordinal — survives unrelated line-number churn.
    pub fingerprint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.col, self.rule, self.message, self.snippet
        )?;
        if !self.trace.is_empty() {
            write!(f, "\n    taint: {}", self.trace.join(" → "))?;
        }
        Ok(())
    }
}

/// A violation silenced by a reasoned `lint: allow` annotation — kept in
/// the report so every escape hatch stays auditable.
#[derive(Clone, Debug)]
pub struct AllowedSite {
    /// The rule that was allowed.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the silenced finding.
    pub line: usize,
    /// The annotation's reason text.
    pub reason: String,
}

/// The result of analyzing a file set.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Violations, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Silenced sites, same order.
    pub allowed: Vec<AllowedSite>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Splits findings into (new, baselined) against a baseline set.
    pub fn split_by_baseline<'a>(
        &'a self,
        baseline: &BTreeSet<String>,
    ) -> (Vec<&'a Finding>, Vec<&'a Finding>) {
        self.findings.iter().partition(|f| !baseline.contains(&f.fingerprint))
    }
}

/// One parsed `lint: allow(<rule>) — <reason>` annotation.
#[derive(Clone, Debug)]
struct Allow {
    line: usize,
    rule: Result<Rule, String>,
    reason: String,
    used: bool,
}

/// Analyzes one file's source text.
///
/// `rel_path` is the workspace-relative path used in findings; `opts`
/// carries the per-file rule scoping.
pub fn analyze_source(
    rel_path: &str,
    src: &str,
    opts: ScanOptions,
) -> (Vec<Finding>, Vec<AllowedSite>) {
    let masked = lexer::mask_source(src);
    let tokens = lexer::tokenize(&masked.code_lines);
    let test_regions = find_test_regions(&tokens);
    let mut allows = parse_allows(&masked.comment_lines);
    let mut raw = rules::scan(&tokens, opts);
    // Wire-safety families: expression-level taint (W1/W4) and
    // structural map/lock rules (W2/W3).
    let functions = expr::parse_functions(&tokens);
    dataflow::check(&functions, &mut raw);
    wire_rules::scan_lock_discipline(&tokens, &mut raw);
    if opts.long_lived_state {
        wire_rules::scan_unbounded_maps(&tokens, &mut raw);
    }
    raw.sort_by_key(|f| (f.line, f.col));
    let src_lines: Vec<&str> = src.lines().collect();

    let in_tests = |line: usize| test_regions.iter().any(|&(s, e)| line >= s && line <= e);

    let mut findings = Vec::new();
    let mut allowed = Vec::new();
    for f in raw {
        if in_tests(f.line) {
            continue;
        }
        // An annotation on the same line or the line above silences the
        // finding — but only with a known rule and a non-empty reason.
        let matching = allows.iter_mut().find(|a| {
            (a.line == f.line || a.line + 1 == f.line)
                && a.rule.as_ref() == Ok(&f.rule)
                && !a.reason.is_empty()
        });
        if let Some(a) = matching {
            a.used = true;
            allowed.push(AllowedSite {
                rule: f.rule,
                file: rel_path.to_string(),
                line: f.line,
                reason: a.reason.clone(),
            });
            continue;
        }
        let snippet = src_lines.get(f.line - 1).map(|l| l.trim()).unwrap_or("").to_string();
        findings.push(Finding {
            rule: f.rule,
            file: rel_path.to_string(),
            line: f.line,
            col: f.col,
            snippet,
            message: f.message,
            trace: f.trace,
            fingerprint: String::new(), // filled below, needs ordinals
        });
    }

    // Annotation hygiene: unknown rules, missing reasons, and annotations
    // that silence nothing are themselves findings.
    for a in &allows {
        if in_tests(a.line) {
            continue;
        }
        let (message, bad) = match &a.rule {
            Err(name) => (
                format!(
                    "`lint: allow({name})` names an unknown rule (expected quorum-arith, \
                     determinism, panic, taint-alloc, unbounded-map, lock-discipline, or \
                     wire-overflow)"
                ),
                true,
            ),
            Ok(rule) if a.reason.is_empty() => (
                format!(
                    "`lint: allow({rule})` has no reason — the escape hatch requires \
                     `// lint: allow({rule}) — <why this site is safe>`"
                ),
                true,
            ),
            Ok(rule) if !a.used => (
                format!("`lint: allow({rule})` suppresses nothing — remove the stale annotation"),
                true,
            ),
            Ok(_) => (String::new(), false),
        };
        if bad {
            let snippet = src_lines.get(a.line - 1).map(|l| l.trim()).unwrap_or("").to_string();
            findings.push(Finding {
                rule: Rule::Annotation,
                file: rel_path.to_string(),
                line: a.line,
                col: 1,
                snippet,
                message,
                trace: Vec::new(),
                fingerprint: String::new(),
            });
        }
    }

    findings.sort_by_key(|a| (a.line, a.col, a.rule));
    assign_fingerprints(&mut findings);
    (findings, allowed)
}

/// Fills each finding's fingerprint: FNV-1a over rule, file, snippet and
/// the ordinal among same-keyed findings (stable under line renumbering).
fn assign_fingerprints(findings: &mut [Finding]) {
    let mut seen: Vec<(Rule, String)> = Vec::new();
    for f in findings.iter_mut() {
        let key = (f.rule, f.snippet.clone());
        let ordinal = seen.iter().filter(|k| **k == key).count();
        seen.push(key);
        let material = format!("{}|{}|{}|{}", f.rule, f.file, f.snippet, ordinal);
        f.fingerprint = format!("{:016x}", fnv1a64(material.as_bytes()));
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Extracts `lint: allow(...)` annotations from the per-line comments.
fn parse_allows(comment_lines: &[Option<String>]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (idx, comment) in comment_lines.iter().enumerate() {
        let Some(text) = comment else { continue };
        let mut rest = text.as_str();
        while let Some(pos) = rest.find("lint: allow(") {
            rest = &rest[pos + "lint: allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let name = rest[..close].trim().to_string();
            let reason = rest[close + 1..]
                .trim_start_matches(|c: char| {
                    c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ',')
                })
                .trim()
                .to_string();
            out.push(Allow {
                line: idx + 1,
                rule: Rule::from_allow_name(&name).ok_or(name),
                reason,
                used: false,
            });
            rest = &rest[close + 1..];
        }
    }
    out
}

/// Finds `#[cfg(test)]`-gated brace regions as inclusive line ranges.
fn find_test_regions(tokens: &[lexer::Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = tokens[i].is_punct("#")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 5).is_some_and(|t| t.is_punct(")"))
            && tokens.get(i + 6).is_some_and(|t| t.is_punct("]"));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // The next `{` opens the gated item; a `;` first means the
        // attribute gated a braceless item (use/static) — skip it.
        let mut j = i + 7;
        let mut open = None;
        while j < tokens.len() {
            if tokens[j].is_punct(";") {
                break;
            }
            if tokens[j].is_punct("{") {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(start) = open else {
            i += 7;
            continue;
        };
        let mut depth = 0usize;
        let mut k = start;
        while k < tokens.len() {
            if tokens[k].is_punct("{") {
                depth += 1;
            } else if tokens[k].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let end_line = tokens.get(k).map(|t| t.line).unwrap_or(usize::MAX);
        regions.push((tokens[i].line, end_line));
        i = k + 1;
    }
    regions
}

/// Analyzes the workspace rooted at `root`: every `.rs` file under
/// `crates/<protocol crate>/src`, in sorted path order.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for krate in PROTOCOL_CRATES {
        let dir = root.join("crates").join(krate).join("src");
        collect_rs_files(&dir, &mut files)?;
    }
    files.sort();
    let mut report = Report::default();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let krate = rel.split('/').nth(1).unwrap_or("");
        let opts = ScanOptions {
            quorum_exempt: QUORUM_EXEMPT_FILES.contains(&rel.as_str()),
            state_machine_crate: STATE_MACHINE_CRATES.contains(&krate),
            long_lived_state: LONG_LIVED_STATE_CRATES.contains(&krate),
        };
        let (findings, allowed) = analyze_source(&rel, &src, opts);
        report.findings.extend(findings);
        report.allowed.extend(allowed);
        report.files_scanned += 1;
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.exists() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("expected protocol crate source dir {}", dir.display()),
        ));
    }
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------

/// Header of the baseline file (also its entire content when clean).
pub const BASELINE_HEADER: &str =
    "# bft-lint baseline v1 — one accepted finding per line; regenerate with\n\
     #   cargo run -p lint -- --write-baseline\n";

/// Renders the deterministic baseline for a report (byte-for-byte
/// reproducible for identical sources).
pub fn render_baseline(report: &Report) -> String {
    let mut out = String::from(BASELINE_HEADER);
    for f in &report.findings {
        out.push_str(&format!(
            "{} {} {}:{} {}\n",
            f.fingerprint, f.rule, f.file, f.line, f.snippet
        ));
    }
    out
}

/// Parses a baseline file into its fingerprint set. Lines starting with
/// `#` and blank lines are ignored.
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_string)
        .collect()
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

/// Renders the human-readable report.
pub fn render_text(report: &Report, baseline: &BTreeSet<String>) -> String {
    let (new, baselined) = report.split_by_baseline(baseline);
    let mut out = String::new();
    for f in &new {
        out.push_str(&format!("{f}\n"));
    }
    out.push_str(&format!(
        "bft-lint: {} file(s) scanned, {} finding(s) ({} baselined), {} allowed site(s)\n",
        report.files_scanned,
        new.len(),
        baselined.len(),
        report.allowed.len()
    ));
    out
}

/// Renders the machine-readable JSON report (single line).
pub fn render_json(report: &Report, baseline: &BTreeSet<String>) -> String {
    let (new, baselined) = report.split_by_baseline(baseline);
    let finding_json = |f: &Finding, baselined: bool| {
        JsonValue::Obj(vec![
            ("rule".into(), JsonValue::str(f.rule.name())),
            ("rule_family".into(), JsonValue::str(f.rule.family())),
            ("file".into(), JsonValue::str(&f.file)),
            ("line".into(), JsonValue::U64(f.line as u64)),
            ("col".into(), JsonValue::U64(f.col as u64)),
            ("message".into(), JsonValue::str(&f.message)),
            ("snippet".into(), JsonValue::str(&f.snippet)),
            ("taint_trace".into(), JsonValue::Arr(f.trace.iter().map(JsonValue::str).collect())),
            ("fingerprint".into(), JsonValue::str(&f.fingerprint)),
            ("baselined".into(), JsonValue::Bool(baselined)),
        ])
    };
    let allowed_json = |a: &AllowedSite| {
        JsonValue::Obj(vec![
            ("rule".into(), JsonValue::str(a.rule.name())),
            ("file".into(), JsonValue::str(&a.file)),
            ("line".into(), JsonValue::U64(a.line as u64)),
            ("reason".into(), JsonValue::str(&a.reason)),
        ])
    };
    let mut findings: Vec<JsonValue> = Vec::new();
    findings.extend(new.iter().map(|f| finding_json(f, false)));
    findings.extend(baselined.iter().map(|f| finding_json(f, true)));
    JsonValue::Obj(vec![
        ("tool".into(), JsonValue::str("bft-lint")),
        ("version".into(), JsonValue::str(TOOL_VERSION)),
        (
            "rules".into(),
            JsonValue::Arr(Rule::ALL.iter().map(|r| JsonValue::str(r.name())).collect()),
        ),
        ("files_scanned".into(), JsonValue::U64(report.files_scanned as u64)),
        (
            "summary".into(),
            JsonValue::Obj(vec![
                ("new".into(), JsonValue::U64(new.len() as u64)),
                ("baselined".into(), JsonValue::U64(baselined.len() as u64)),
                ("allowed".into(), JsonValue::U64(report.allowed.len() as u64)),
            ]),
        ),
        ("findings".into(), JsonValue::Arr(findings)),
        ("allowed".into(), JsonValue::Arr(report.allowed.iter().map(allowed_json).collect())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPTS: ScanOptions =
        ScanOptions { quorum_exempt: false, state_machine_crate: true, long_lived_state: true };

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); let z = 2 * f + 1; }\n\
                   }\n";
        let (findings, _) = analyze_source("a.rs", src, OPTS);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_swallow_file() {
        let src = "#[cfg(test)]\nuse std::collections::BTreeMap;\nfn live() { x.unwrap(); }\n";
        let (findings, _) = analyze_source("a.rs", src, OPTS);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn allow_with_reason_silences_and_is_recorded() {
        let src = "// lint: allow(panic) — slot invariant upheld by install()\n\
                   fn live() { x.unwrap(); }\n";
        let (findings, allowed) = analyze_source("a.rs", src, OPTS);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(allowed.len(), 1);
        assert_eq!(allowed[0].reason, "slot invariant upheld by install()");
    }

    #[test]
    fn same_line_allow_works() {
        let src = "fn live() { x.unwrap(); } // lint: allow(panic) — infallible here\n";
        let (findings, allowed) = analyze_source("a.rs", src, OPTS);
        assert!(findings.is_empty());
        assert_eq!(allowed.len(), 1);
    }

    #[test]
    fn allow_without_reason_does_not_silence() {
        let src = "fn live() { x.unwrap(); } // lint: allow(panic)\n";
        let (findings, _) = analyze_source("a.rs", src, OPTS);
        assert_eq!(findings.len(), 2); // the unwrap + the bad annotation
        assert!(findings.iter().any(|f| f.rule == Rule::Annotation));
    }

    #[test]
    fn allow_with_wrong_rule_does_not_silence() {
        let src = "fn live() { x.unwrap(); } // lint: allow(determinism) — wrong family\n";
        let (findings, _) = analyze_source("a.rs", src, OPTS);
        assert!(findings.iter().any(|f| f.rule == Rule::Panic));
        // The determinism allow is unused → annotation finding too.
        assert!(findings.iter().any(|f| f.rule == Rule::Annotation));
    }

    #[test]
    fn unknown_rule_is_flagged() {
        let src = "fn live() {} // lint: allow(quorum) — typo'd rule name\n";
        let (findings, _) = analyze_source("a.rs", src, OPTS);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::Annotation);
        assert!(findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn fingerprints_are_stable_under_line_shifts() {
        let a = analyze_source("a.rs", "fn live() { x.unwrap(); }\n", OPTS).0;
        let b = analyze_source("a.rs", "\n\n\nfn live() { x.unwrap(); }\n", OPTS).0;
        assert_eq!(a[0].fingerprint, b[0].fingerprint);
    }

    #[test]
    fn duplicate_snippets_get_distinct_fingerprints() {
        let src = "fn a() { x.unwrap(); }\nfn b() { x.unwrap(); }\n";
        let (findings, _) = analyze_source("a.rs", src, OPTS);
        assert_eq!(findings.len(), 2);
        assert_ne!(findings[0].fingerprint, findings[1].fingerprint);
    }

    #[test]
    fn baseline_round_trips() {
        let (findings, _) =
            analyze_source("a.rs", "fn live() { x.unwrap(); let q = n - f; }\n", OPTS);
        let report = Report { findings, allowed: Vec::new(), files_scanned: 1 };
        let text = render_baseline(&report);
        let set = parse_baseline(&text);
        let (new, baselined) = report.split_by_baseline(&set);
        assert!(new.is_empty());
        assert_eq!(baselined.len(), 2);
        // Byte-for-byte reproducible.
        assert_eq!(text, render_baseline(&report));
    }

    #[test]
    fn json_report_shape() {
        let (findings, _) = analyze_source("a.rs", "fn live() { x.unwrap(); }\n", OPTS);
        let report = Report { findings, allowed: Vec::new(), files_scanned: 1 };
        let json = render_json(&report, &BTreeSet::new());
        assert!(json.starts_with(r#"{"tool":"bft-lint""#));
        assert!(json.contains(r#""rule":"panic""#));
        assert!(json.contains(r#""baselined":false"#));
    }
}
