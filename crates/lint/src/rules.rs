//! The three protocol rule families, as token patterns.
//!
//! | rule | enforces |
//! |------|----------|
//! | `quorum-arith` | threshold expressions (`2f+1`, `n−f`, `n+f`, `n/2+1`, `f+1` comparisons, `.len() >= <literal>`) appear only in `types::Config` accessors and tests; everywhere else code must call the named accessor |
//! | `determinism`  | no `HashMap`/`HashSet`, wall-clock reads (`Instant`, `SystemTime`), `thread::sleep`, or nondeterministic randomness in protocol crates; no `rand` at all in the state-machine crates (`types`, `core`, `rbc`) |
//! | `panic`        | no `.unwrap()`, `.expect(…)`, `panic!`-family macros, or indexing with an integer literal outside tests |
//!
//! Every finding can be silenced per-site with
//! `// lint: allow(<rule>) — <reason>` on the same line or the line
//! above; the annotation itself is linted (unknown rule, missing reason,
//! or an annotation that suppresses nothing are all findings of the
//! `annotation` pseudo-rule).

use crate::lexer::{Tok, Token};
use std::fmt;

/// A rule family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Quorum-arithmetic discipline.
    QuorumArith,
    /// Determinism (replay / seed-ordered merge safety).
    Determinism,
    /// Panic hygiene in message-handling code.
    Panic,
    /// Hygiene of the `lint: allow` annotations themselves.
    Annotation,
    /// **W1** — a wire-tainted quantity reaches an allocation, index,
    /// range bound or loop limit without a cap guard.
    TaintAlloc,
    /// **W2** — a peer/epoch/instance-keyed collection field with no
    /// in-file GC path.
    UnboundedMap,
    /// **W3** — `.lock().unwrap()` or nested lock acquisitions without
    /// a declared order.
    LockDiscipline,
    /// **W4** — unchecked `+`/`*`/`<<` on a wire-tainted value.
    WireOverflow,
}

impl Rule {
    /// The stable name used in reports, baselines and allow annotations.
    pub const fn name(self) -> &'static str {
        match self {
            Rule::QuorumArith => "quorum-arith",
            Rule::Determinism => "determinism",
            Rule::Panic => "panic",
            Rule::Annotation => "annotation",
            Rule::TaintAlloc => "taint-alloc",
            Rule::UnboundedMap => "unbounded-map",
            Rule::LockDiscipline => "lock-discipline",
            Rule::WireOverflow => "wire-overflow",
        }
    }

    /// The rule family: `"core"` for the original token rules, `"W1"`…
    /// `"W4"` for the wire-safety families (reported in JSON and gated
    /// separately in CI).
    pub const fn family(self) -> &'static str {
        match self {
            Rule::QuorumArith | Rule::Determinism | Rule::Panic | Rule::Annotation => "core",
            Rule::TaintAlloc => "W1",
            Rule::UnboundedMap => "W2",
            Rule::LockDiscipline => "W3",
            Rule::WireOverflow => "W4",
        }
    }

    /// Every rule, in report order.
    pub const ALL: &'static [Rule] = &[
        Rule::QuorumArith,
        Rule::Determinism,
        Rule::Panic,
        Rule::Annotation,
        Rule::TaintAlloc,
        Rule::UnboundedMap,
        Rule::LockDiscipline,
        Rule::WireOverflow,
    ];

    /// Parses an allow-annotation rule name. The `annotation` pseudo-rule
    /// is deliberately not allowable.
    pub fn from_allow_name(name: &str) -> Option<Rule> {
        match name {
            "quorum-arith" => Some(Rule::QuorumArith),
            "determinism" => Some(Rule::Determinism),
            "panic" => Some(Rule::Panic),
            "taint-alloc" => Some(Rule::TaintAlloc),
            "unbounded-map" => Some(Rule::UnboundedMap),
            "lock-discipline" => Some(Rule::LockDiscipline),
            "wire-overflow" => Some(Rule::WireOverflow),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A rule match before allow/baseline filtering.
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// The rule family violated.
    pub rule: Rule,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// For taint findings: the source → sink propagation path.
    pub trace: Vec<String>,
}

/// Per-file scan configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScanOptions {
    /// The file defines the `types::Config` accessors: quorum arithmetic
    /// is its job, so `quorum-arith` is off.
    pub quorum_exempt: bool,
    /// The file belongs to a protocol state-machine crate (`types`,
    /// `core`, `rbc`): any `rand` path at all is a determinism violation.
    pub state_machine_crate: bool,
    /// The file belongs to a crate holding long-lived per-peer/per-epoch
    /// state: the `unbounded-map` (W2) rule applies to its struct fields.
    pub long_lived_state: bool,
}

/// Scans a token stream and returns every raw rule match, in source
/// order. Test-region filtering happens in the caller (the region data
/// lives at file level).
pub fn scan(tokens: &[Token], opts: ScanOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !opts.quorum_exempt {
            if let Some((end, raw)) = match_quorum(tokens, i) {
                out.push(raw);
                i = end;
                continue;
            }
        }
        if let Some(raw) = match_determinism(tokens, i, opts.state_machine_crate) {
            out.push(raw);
            i += 1;
            continue;
        }
        if let Some(raw) = match_panic(tokens, i) {
            out.push(raw);
            i += 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Parses a dotted/`::` path starting at `i` and returns
/// `(end_exclusive, last_segment)`; a trailing call `()` is consumed.
/// `self.config.f()` ⇒ `f`; `cfg.n` ⇒ `n`; `f` ⇒ `f`.
fn parse_path(tokens: &[Token], i: usize) -> Option<(usize, String)> {
    let Tok::Ident(first) = &tokens.get(i)?.tok else { return None };
    let mut last = first.clone();
    let mut j = i + 1;
    while j + 1 < tokens.len()
        && (tokens[j].is_punct(".") || tokens[j].is_punct("::"))
        && matches!(tokens[j + 1].tok, Tok::Ident(_))
    {
        if let Tok::Ident(seg) = &tokens[j + 1].tok {
            last = seg.clone();
        }
        j += 2;
    }
    // A no-argument call: `f()`.
    if j + 1 < tokens.len() && tokens[j].is_punct("(") && tokens[j + 1].is_punct(")") {
        j += 2;
    }
    Some((j, last))
}

/// Matches a path whose final segment is `name`, returning the end index.
fn path_ending(tokens: &[Token], i: usize, name: &str) -> Option<usize> {
    let (end, last) = parse_path(tokens, i)?;
    (last == name).then_some(end)
}

fn is_cmp(t: &Token) -> bool {
    matches!(&t.tok, Tok::Punct(p) if matches!(p.as_str(), ">=" | "<=" | "==" | ">" | "<"))
}

fn quorum_finding(at: &Token, pattern: &str, hint: &str) -> RawFinding {
    RawFinding {
        rule: Rule::QuorumArith,
        line: at.line,
        col: at.col,
        message: format!(
            "bare quorum arithmetic `{pattern}`: call the named Config accessor ({hint}) instead"
        ),
        trace: Vec::new(),
    }
}

/// Tries every quorum-arithmetic pattern at `i`; returns the match end so
/// the caller can skip past it (preventing overlapping double reports).
fn match_quorum(tokens: &[Token], i: usize) -> Option<(usize, RawFinding)> {
    let t = &tokens[i];

    // `2 * f + 1` / `3 * f + 1` (any `f`-path: `self.f`, `cfg.f()`, …).
    if let Tok::Int(Some(k @ (2 | 3))) = t.tok {
        if tokens.get(i + 1).is_some_and(|t| t.is_punct("*")) {
            if let Some(end) = path_ending(tokens, i + 2, "f") {
                if tokens.get(end).is_some_and(|t| t.is_punct("+"))
                    && tokens.get(end + 1).is_some_and(|t| t.is_int(1))
                {
                    let hint = if k == 2 {
                        "decide_threshold / bv_accept_threshold"
                    } else {
                        "is_within_resilience / Config::new"
                    };
                    return Some((end + 2, quorum_finding(t, &format!("{k}*f + 1"), hint)));
                }
            }
        }
    }

    // `n / 2 + 1`.
    if let Some(end) = path_ending(tokens, i, "n") {
        if tokens.get(end).is_some_and(|t| t.is_punct("/"))
            && tokens.get(end + 1).is_some_and(|t| t.is_int(2))
            && tokens.get(end + 2).is_some_and(|t| t.is_punct("+"))
            && tokens.get(end + 3).is_some_and(|t| t.is_int(1))
        {
            return Some((end + 4, quorum_finding(t, "n/2 + 1", "majority_threshold")));
        }
    }

    // `n - f` and `n + f` (quorum / echo / super-majority arithmetic).
    if let Some(end) = path_ending(tokens, i, "n") {
        if let Some(t2) = tokens.get(end) {
            if t2.is_punct("-") || t2.is_punct("+") {
                if let Some(end2) = path_ending(tokens, end + 1, "f") {
                    let (pat, hint) = if t2.is_punct("-") {
                        ("n - f", "quorum")
                    } else {
                        ("n + f", "echo_threshold / super_majority_threshold")
                    };
                    return Some((end2, quorum_finding(t, pat, hint)));
                }
            }
        }
    }

    // `>= f + 1` (comparison against the `f + 1` bound), either side.
    if is_cmp(t) {
        if let Some(end) = path_ending(tokens, i + 1, "f") {
            if tokens.get(end).is_some_and(|t| t.is_punct("+"))
                && tokens.get(end + 1).is_some_and(|t| t.is_int(1))
            {
                return Some((end + 2, quorum_finding(t, "f + 1", "ready_threshold")));
            }
        }
    }
    if let Some(end) = path_ending(tokens, i, "f") {
        if tokens.get(end).is_some_and(|t| t.is_punct("+"))
            && tokens.get(end + 1).is_some_and(|t| t.is_int(1))
            && tokens.get(end + 2).is_some_and(is_cmp)
        {
            return Some((end + 2, quorum_finding(t, "f + 1", "ready_threshold")));
        }
    }

    // `.len() >= <literal ≥ 2>` — a numeric quorum literal.
    if t.is_ident("len")
        && i > 0
        && tokens[i - 1].is_punct(".")
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(")"))
        && tokens.get(i + 3).is_some_and(is_cmp)
    {
        if let Some(Tok::Int(Some(k))) = tokens.get(i + 4).map(|t| &t.tok) {
            if *k >= 2 {
                return Some((
                    i + 5,
                    quorum_finding(t, &format!(".len() vs {k}"), "the Config accessor for {k}"),
                ));
            }
        }
    }

    None
}

fn det_finding(at: &Token, what: &str, why: &str) -> RawFinding {
    RawFinding {
        rule: Rule::Determinism,
        line: at.line,
        col: at.col,
        message: format!("{what} in protocol code: {why}"),
        trace: Vec::new(),
    }
}

fn match_determinism(tokens: &[Token], i: usize, state_machine: bool) -> Option<RawFinding> {
    let t = &tokens[i];
    let Tok::Ident(name) = &t.tok else { return None };
    match name.as_str() {
        "HashMap" | "HashSet" | "IndexMap" | "IndexSet" => Some(det_finding(
            t,
            &format!("`{name}`"),
            "iteration order is nondeterministic; use BTreeMap/BTreeSet (replay and the \
             seed-ordered experiment merge depend on deterministic order)",
        )),
        "Instant" | "SystemTime" => Some(det_finding(
            t,
            &format!("`{name}`"),
            "wall-clock reads make runs irreproducible; take time from the simulated clock",
        )),
        "sleep" if i >= 2 && tokens[i - 1].is_punct("::") && tokens[i - 2].is_ident("thread") => {
            Some(det_finding(
                t,
                "`thread::sleep`",
                "real-time waits make runs irreproducible and stall the simulated schedule",
            ))
        }
        "thread_rng" | "from_entropy" | "OsRng" => Some(det_finding(
            t,
            &format!("`{name}`"),
            "entropy-seeded randomness breaks replay; use a seeded RNG injected by the host",
        )),
        "rand" | "rand_chacha" if state_machine => Some(det_finding(
            t,
            &format!("`{name}`"),
            "protocol state machines must be RNG-free; randomness enters only through the \
             injected CoinScheme",
        )),
        _ => None,
    }
}

fn panic_finding(at: &Token, what: &str) -> RawFinding {
    RawFinding {
        rule: Rule::Panic,
        line: at.line,
        col: at.col,
        message: format!(
            "{what} in message-handling code: return a typed error (surface it through the obs \
             Invariant sink) or annotate why it is infallible"
        ),
        trace: Vec::new(),
    }
}

fn match_panic(tokens: &[Token], i: usize) -> Option<RawFinding> {
    let t = &tokens[i];
    match &t.tok {
        Tok::Ident(name) if (name == "unwrap" || name == "expect") => (i > 0
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("(")))
        .then(|| panic_finding(t, &format!("`.{name}()`"))),
        Tok::Ident(name)
            if matches!(name.as_str(), "panic" | "unreachable" | "todo" | "unimplemented") =>
        {
            (tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
                // `core::panic` imports / `std::panic` paths are not macros.
                && !(i > 0 && tokens[i - 1].is_punct("::")))
            .then(|| panic_finding(t, &format!("`{name}!`")))
        }
        Tok::Punct(p) if p == "[" => {
            // Indexing only: the bracket follows an expression (`xs[0]`,
            // `foo()[1]`), not an array literal, type, or attribute.
            let idx_expr = i > 0
                && (matches!(tokens[i - 1].tok, Tok::Ident(_))
                    || tokens[i - 1].is_punct(")")
                    || tokens[i - 1].is_punct("]"));
            if idx_expr
                && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Int(Some(_))))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct("]"))
            {
                Some(panic_finding(t, "indexing with an integer literal"))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    const DEFAULT: ScanOptions =
        ScanOptions { quorum_exempt: false, state_machine_crate: true, long_lived_state: true };

    fn scan_src(src: &str) -> Vec<RawFinding> {
        let masked = crate::lexer::mask_source(src);
        scan(&tokenize(&masked.code_lines), DEFAULT)
    }

    #[test]
    fn detects_two_f_plus_one_variants() {
        for src in ["x >= 2 * f + 1", "x >= 2 * self.f + 1", "x >= 2 * cfg.f() + 1"] {
            let f = scan_src(src);
            assert_eq!(f.len(), 1, "{src}");
            assert_eq!(f[0].rule, Rule::QuorumArith, "{src}");
        }
    }

    #[test]
    fn detects_f_plus_one_comparisons_only() {
        assert_eq!(scan_src("if count >= f + 1 {}").len(), 1);
        assert_eq!(scan_src("if self.config.f() + 1 <= c {}").len(), 1);
        // Arithmetic away from a comparison is not a threshold check.
        assert!(scan_src("let x = g + 1;").is_empty());
        assert!(scan_src("let x = round + 1;").is_empty());
    }

    #[test]
    fn detects_n_arith_and_majority() {
        assert_eq!(scan_src("let q = n - f;").len(), 1);
        assert_eq!(scan_src("let e = (self.n + self.f + 1) / 2;").len(), 1);
        assert_eq!(scan_src("let m = self.config.n() / 2 + 1;").len(), 1);
        assert!(scan_src("let x = n - 1;").is_empty());
    }

    #[test]
    fn detects_len_vs_literal() {
        assert_eq!(scan_src("if votes.len() >= 3 {}").len(), 1);
        assert!(scan_src("if votes.len() >= q {}").is_empty());
        assert!(scan_src("if votes.len() >= 1 {}").is_empty(), "emptiness check is fine");
    }

    #[test]
    fn detects_determinism_hazards() {
        assert_eq!(scan_src("use std::collections::HashMap;").len(), 1);
        assert_eq!(scan_src("let t = Instant::now();").len(), 1);
        assert_eq!(scan_src("std::thread::sleep(d);").len(), 1);
        assert_eq!(scan_src("let r = rand::thread_rng();").len(), 2); // rand + thread_rng
        assert!(scan_src("queue.sleep_sort();").is_empty());
    }

    #[test]
    fn rand_allowed_outside_state_machines() {
        let masked = crate::lexer::mask_source("use rand::Rng;");
        let opts = ScanOptions {
            quorum_exempt: false,
            state_machine_crate: false,
            long_lived_state: false,
        };
        assert!(scan(&tokenize(&masked.code_lines), opts).is_empty());
    }

    #[test]
    fn detects_panic_hygiene() {
        assert_eq!(scan_src("let v = x.unwrap();").len(), 1);
        assert_eq!(scan_src("let v = x.expect(\"reason\");").len(), 1);
        assert_eq!(scan_src("panic!(\"boom\");").len(), 1);
        assert_eq!(scan_src("let v = xs[0];").len(), 1);
        assert!(scan_src("let v = xs[i];").is_empty());
        assert!(scan_src("let a = [0, 1];").is_empty(), "array literal is not indexing");
        assert!(scan_src("let a: [usize; 2] = b;").is_empty());
        assert!(scan_src("#[cfg(feature = \"x\")]").is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(scan_src("let v = x.unwrap_or(y);").is_empty());
        assert!(scan_src("let v = x.unwrap_or_else(|| y);").is_empty());
        assert!(scan_src("let v = x.expect_err(\"e\");").is_empty());
    }

    #[test]
    fn quorum_exempt_file_skips_quorum_only() {
        let masked = crate::lexer::mask_source("let x = 2 * f + 1; let y = z.unwrap();");
        let opts =
            ScanOptions { quorum_exempt: true, state_machine_crate: true, long_lived_state: false };
        let f = scan(&tokenize(&masked.code_lines), opts);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Panic);
    }
}
