//! A lightweight statement/expression parser over the masking lexer.
//!
//! This is deliberately *not* a full Rust grammar: it recovers enough
//! structure — functions, statements, let-bindings, calls, operators,
//! ranges, closures — for the intra-procedural taint engine in
//! [`crate::dataflow`] to follow wire-decoded values from source to
//! sink. Anything it cannot parse degrades to [`ExprKind::Opaque`]
//! (never a panic): unknown constructs are conservatively treated as
//! clean, which keeps the analyzer dependency-free and total.

use crate::lexer::{Tok, Token};

/// One parsed `fn` item (free function or method).
#[derive(Debug)]
pub struct Function {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// Parameters as `(name, type text)`; `self` has type `"Self"`.
    pub params: Vec<(String, String)>,
    /// The body statements.
    pub body: Vec<Stmt>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// A match arm: bound pattern names plus the arm body.
#[derive(Debug)]
pub struct Arm {
    /// Lowercase identifiers bound by the arm pattern.
    pub binds: Vec<String>,
    /// The arm body (a block's statements, or one expression statement).
    pub body: Vec<Stmt>,
}

/// A statement, as much of it as the analyzer needs.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <init>;` — `names` are the bound lowercase idents.
    /// `destructured` is true when the pattern unpacks a struct/tuple.
    Let { names: Vec<String>, destructured: bool, init: Option<Expr>, els: Option<Vec<Stmt>> },
    /// `x = v;` / `x += v;` (`op` is the compound operator, if any).
    Assign { target: Expr, op: Option<String>, value: Expr, line: usize, col: usize },
    /// A bare expression statement.
    Expr(Expr),
    /// `if` / `if let` with optional else; `binds` come from `if let`.
    If { binds: Vec<String>, cond: Expr, then: Vec<Stmt>, els: Option<Vec<Stmt>> },
    /// `while` / `while let`.
    While { binds: Vec<String>, cond: Expr, body: Vec<Stmt>, line: usize, col: usize },
    /// `for <pat> in <iter> { .. }`.
    For { vars: Vec<String>, iter: Expr, body: Vec<Stmt> },
    /// `loop { .. }`.
    Loop { body: Vec<Stmt> },
    /// `match` used as a statement.
    Match { scrutinee: Expr, arms: Vec<Arm> },
    /// `return <expr>?;`.
    Return { value: Option<Expr> },
    /// `break` (any labels/values skipped).
    Break,
    /// `continue`.
    Continue,
    /// A bare `{ .. }` block.
    Block(Vec<Stmt>),
    /// Anything unrecognized (nested items, attributes, recovery).
    Other,
}

/// An expression with its source position.
#[derive(Debug)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Expression kinds the taint engine distinguishes.
#[derive(Debug)]
pub enum ExprKind {
    /// Integer literal.
    Int,
    /// A (possibly qualified) path: `x`, `self.x` is Field, `a::b::c`.
    Path(Vec<String>),
    /// Field access `base.name` (tuple fields use the digit as name).
    Field { base: Box<Expr>, name: String },
    /// Method call `base.name(args)`.
    MethodCall { base: Box<Expr>, name: String, args: Vec<Expr> },
    /// Call `callee(args)` — callee is usually a `Path`.
    Call { callee: Box<Expr>, args: Vec<Expr> },
    /// Macro invocation `name!(args)`; `repeat_len` holds `n` for
    /// `vec![elem; n]` / `[elem; n]` repeat forms.
    Macro { name: String, args: Vec<Expr>, repeat_len: Option<Box<Expr>> },
    /// Indexing `base[index]`.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Unary `-x`, `!x`, `*x`, `&x`.
    Unary { expr: Box<Expr> },
    /// Binary operator application.
    Binary { op: String, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Range `lo..hi` / `lo..=hi` (either bound optional).
    Range { lo: Option<Box<Expr>>, hi: Option<Box<Expr>> },
    /// `expr as T`.
    Cast { expr: Box<Expr> },
    /// `expr?`.
    Try { expr: Box<Expr> },
    /// Tuple `(a, b)` (1-tuples collapse to the inner expression).
    Tuple(Vec<Expr>),
    /// Closure `|params| body` — params shadow outer bindings.
    Closure { params: Vec<String>, body: Vec<Stmt> },
    /// `if` in expression position.
    IfExpr { cond: Box<Expr>, then: Vec<Stmt>, els: Option<Vec<Stmt>> },
    /// `match` in expression position.
    MatchExpr { scrutinee: Box<Expr>, arms: Vec<Arm> },
    /// Struct literal `Path { field: expr, .. }` — field values only.
    StructLit { fields: Vec<Expr> },
    /// Block in expression position (`{ .. }`, `unsafe { .. }`, `loop`).
    BlockExpr(Vec<Stmt>),
    /// `return`/`break`/`continue` in expression position.
    Diverge { value: Option<Box<Expr>> },
    /// Anything unmodeled.
    Opaque,
}

/// Parses every `fn` item (any nesting depth) out of a token stream.
pub fn parse_functions(tokens: &[Token]) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn")
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(_)))
        {
            if let Some((func, body_open)) = parse_fn_header(tokens, i) {
                out.push(func);
                // Continue *inside* the body so nested fns are found too.
                i = body_open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses one fn starting at the `fn` keyword; returns the function and
/// the index of its body-opening `{`. `None` for bodyless trait decls.
fn parse_fn_header(tokens: &[Token], at: usize) -> Option<(Function, usize)> {
    let line = tokens[at].line;
    let Tok::Ident(name) = &tokens[at + 1].tok else { return None };
    let mut j = at + 2;
    // Generic parameters.
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(tokens, j);
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let params_start = j + 1;
    let params_end = matching_close(tokens, j, "(", ")")?;
    let params = parse_params(&tokens[params_start..params_end]);
    // Scan to the body `{` or a `;` (trait method without a body).
    let mut k = params_end + 1;
    while k < tokens.len() {
        if tokens[k].is_punct(";") {
            return None;
        }
        if tokens[k].is_punct("{") {
            break;
        }
        k += 1;
    }
    if k >= tokens.len() {
        return None;
    }
    let body_end = matching_close(tokens, k, "{", "}")?;
    let body = Parser::new(&tokens[k + 1..body_end]).parse_stmts();
    Some((Function { name: name.clone(), params, body, line }, k))
}

/// Index of the token closing the group opened at `open_at`.
fn matching_close(tokens: &[Token], open_at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Skips a balanced `<...>` group starting at `i` (which is `<`);
/// `>>` closes two levels. Returns the index after the group.
fn skip_angles(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct(p) if p == "<" => depth += 1,
            Tok::Punct(p) if p == ">" => depth -= 1,
            Tok::Punct(p) if p == ">>" => depth -= 2,
            Tok::Punct(p) if p == "->" => {}
            Tok::Punct(p) if p == ";" || p == "{" => break,
            _ => {}
        }
        j += 1;
        if depth <= 0 {
            break;
        }
    }
    j
}

/// Splits a parameter token slice at top-level commas into
/// `(name, type text)` pairs.
fn parse_params(tokens: &[Token]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for part in split_top_level(tokens, ",") {
        if part.is_empty() {
            continue;
        }
        if part.iter().any(|t| t.is_ident("self")) && !part.iter().any(|t| t.is_punct(":")) {
            out.push(("self".to_string(), "Self".to_string()));
            continue;
        }
        let colon = part.iter().position(|t| t.is_punct(":"));
        let Some(c) = colon else { continue };
        let name = part[..c]
            .iter()
            .rev()
            .find_map(|t| match &t.tok {
                Tok::Ident(s) if s != "mut" && s != "ref" => Some(s.clone()),
                _ => None,
            })
            .unwrap_or_default();
        let ty = render_tokens(&part[c + 1..]);
        if !name.is_empty() {
            out.push((name, ty));
        }
    }
    out
}

/// Splits a token slice at top-level occurrences of `sep` (depth-aware
/// for parens, brackets, braces and angle brackets).
fn split_top_level<'a>(tokens: &'a [Token], sep: &str) -> Vec<&'a [Token]> {
    let mut parts = Vec::new();
    let (mut depth, mut angle) = (0i32, 0i32);
    let mut start = 0usize;
    for (k, t) in tokens.iter().enumerate() {
        if let Tok::Punct(p) = &t.tok {
            match p.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => angle += 1,
                ">" if angle > 0 => angle -= 1,
                ">>" if angle > 1 => angle -= 2,
                s if s == sep && depth == 0 && angle == 0 => {
                    parts.push(&tokens[start..k]);
                    start = k + 1;
                }
                _ => {}
            }
        }
    }
    parts.push(&tokens[start..]);
    parts
}

/// Renders tokens back to a spaced text form (for type matching).
fn render_tokens(tokens: &[Token]) -> String {
    let mut s = String::new();
    for t in tokens {
        if !s.is_empty() {
            s.push(' ');
        }
        match &t.tok {
            Tok::Ident(i) => s.push_str(i),
            Tok::Int(Some(v)) => s.push_str(&v.to_string()),
            Tok::Int(None) => s.push('0'),
            Tok::Punct(p) => s.push_str(p),
        }
    }
    s
}

/// Collects the lowercase identifiers a pattern binds (skips keywords,
/// uppercase constructors and path segments).
fn pattern_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (k, t) in tokens.iter().enumerate() {
        let Tok::Ident(s) = &t.tok else { continue };
        if matches!(s.as_str(), "mut" | "ref" | "box" | "_") {
            continue;
        }
        if s.chars().next().is_some_and(|c| c.is_uppercase()) {
            continue;
        }
        // Skip path segments (`a::b`) — only the binding position counts.
        if tokens.get(k + 1).is_some_and(|t| t.is_punct("::"))
            || (k > 0 && tokens[k - 1].is_punct("::"))
        {
            continue;
        }
        // `field: bound` struct patterns bind the *right* side.
        if tokens.get(k + 1).is_some_and(|t| t.is_punct(":")) {
            continue;
        }
        if !names.contains(s) {
            names.push(s.clone());
        }
    }
    names
}

/// Whether a pattern token slice destructures (unpacks fields/elements).
fn pattern_destructures(tokens: &[Token]) -> bool {
    tokens.iter().any(|t| t.is_punct("(") || t.is_punct("{") || t.is_punct("[") || t.is_punct(","))
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(toks: &'a [Token]) -> Self {
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + off)
    }
    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn pos_of(&self, t: Option<&Token>) -> (usize, usize) {
        t.map(|t| (t.line, t.col)).unwrap_or((0, 0))
    }

    /// Parses statements until the end of the slice.
    fn parse_stmts(&mut self) -> Vec<Stmt> {
        let mut out = Vec::new();
        while self.pos < self.toks.len() {
            let before = self.pos;
            if let Some(s) = self.parse_stmt() {
                out.push(s);
            }
            if self.pos == before {
                self.pos += 1; // guaranteed progress
            }
        }
        out
    }

    /// Parses a `{ .. }` group into statements (consumes both braces).
    fn parse_block(&mut self) -> Vec<Stmt> {
        if !self.at_punct("{") {
            return Vec::new();
        }
        let Some(close) = matching_close(self.toks, self.pos, "{", "}") else {
            self.pos = self.toks.len();
            return Vec::new();
        };
        let body = Parser::new(&self.toks[self.pos + 1..close]).parse_stmts();
        self.pos = close + 1;
        body
    }

    fn skip_attribute(&mut self) {
        // `#[ .. ]` or `#![ .. ]`.
        self.pos += 1;
        if self.at_punct("!") {
            self.pos += 1;
        }
        if self.at_punct("[") {
            if let Some(close) = matching_close(self.toks, self.pos, "[", "]") {
                self.pos = close + 1;
            } else {
                self.pos = self.toks.len();
            }
        }
    }

    /// Skips a nested item (fn/struct/impl/…): everything through the
    /// first top-level `{ .. }` group or `;`.
    fn skip_item(&mut self) {
        while self.pos < self.toks.len() {
            if self.at_punct(";") {
                self.pos += 1;
                return;
            }
            if self.at_punct("{") {
                if let Some(close) = matching_close(self.toks, self.pos, "{", "}") {
                    self.pos = close + 1;
                } else {
                    self.pos = self.toks.len();
                }
                return;
            }
            self.pos += 1;
        }
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        let t = self.peek()?;
        match &t.tok {
            Tok::Punct(p) if p == ";" => {
                self.pos += 1;
                None
            }
            Tok::Punct(p) if p == "#" => {
                self.skip_attribute();
                None
            }
            Tok::Punct(p) if p == "{" => Some(Stmt::Block(self.parse_block())),
            Tok::Ident(kw) => match kw.as_str() {
                "let" => Some(self.parse_let()),
                "if" => Some(self.parse_if()),
                "while" => Some(self.parse_while()),
                "for" => Some(self.parse_for()),
                "loop" => {
                    self.pos += 1;
                    Some(Stmt::Loop { body: self.parse_block() })
                }
                "match" => {
                    self.pos += 1;
                    let scrutinee = self.parse_expr_no_struct();
                    let arms = self.parse_arms();
                    Some(Stmt::Match { scrutinee, arms })
                }
                "return" => {
                    self.pos += 1;
                    let value = if self.at_punct(";") || self.peek().is_none() {
                        None
                    } else {
                        Some(self.parse_expr())
                    };
                    self.eat_punct(";");
                    Some(Stmt::Return { value })
                }
                "break" => {
                    self.skip_to_semi();
                    Some(Stmt::Break)
                }
                "continue" => {
                    self.skip_to_semi();
                    Some(Stmt::Continue)
                }
                "unsafe" if self.peek_at(1).is_some_and(|t| t.is_punct("{")) => {
                    self.pos += 1;
                    Some(Stmt::Block(self.parse_block()))
                }
                "fn" | "struct" | "enum" | "impl" | "mod" | "use" | "const" | "static" | "type"
                | "trait" | "pub" | "extern" | "macro_rules" => {
                    self.skip_item();
                    Some(Stmt::Other)
                }
                _ => Some(self.parse_expr_stmt()),
            },
            _ => Some(self.parse_expr_stmt()),
        }
    }

    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            match &self.toks[self.pos].tok {
                Tok::Punct(p) if p == "(" || p == "[" || p == "{" => depth += 1,
                Tok::Punct(p) if p == ")" || p == "]" || p == "}" => depth -= 1,
                Tok::Punct(p) if p == ";" && depth <= 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    fn parse_let(&mut self) -> Stmt {
        self.pos += 1; // `let`
                       // Pattern: tokens until a top-level `:` (type) or `=`.
        let pat_start = self.pos;
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            match &self.toks[self.pos].tok {
                Tok::Punct(p) if p == "(" || p == "[" || p == "{" => depth += 1,
                Tok::Punct(p) if p == ")" || p == "]" || p == "}" => depth -= 1,
                Tok::Punct(p) if (p == ":" || p == "=" || p == ";") && depth <= 0 => break,
                _ => {}
            }
            self.pos += 1;
        }
        let pat = &self.toks[pat_start..self.pos];
        let names = pattern_names(pat);
        let destructured = pattern_destructures(pat);
        // Optional `: Type`.
        if self.eat_punct(":") {
            let mut angle = 0i32;
            while self.pos < self.toks.len() {
                match &self.toks[self.pos].tok {
                    Tok::Punct(p) if p == "<" => angle += 1,
                    Tok::Punct(p) if p == ">" => angle -= 1,
                    Tok::Punct(p) if p == ">>" => angle -= 2,
                    Tok::Punct(p) if (p == "=" || p == ";") && angle <= 0 => break,
                    _ => {}
                }
                self.pos += 1;
            }
        }
        let mut init = None;
        let mut els = None;
        if self.eat_punct("=") {
            init = Some(self.parse_expr());
            if self.at_ident("else") {
                self.pos += 1;
                els = Some(self.parse_block());
            }
        }
        self.eat_punct(";");
        Stmt::Let { names, destructured, init, els }
    }

    /// Parses the `<pat> = <expr>` part of `if let` / `while let`;
    /// assumes the `let` keyword is current.
    fn parse_let_cond(&mut self) -> (Vec<String>, Expr) {
        self.pos += 1; // `let`
        let pat_start = self.pos;
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            match &self.toks[self.pos].tok {
                Tok::Punct(p) if p == "(" || p == "[" || p == "{" => depth += 1,
                Tok::Punct(p) if p == ")" || p == "]" || p == "}" => depth -= 1,
                Tok::Punct(p) if p == "=" && depth <= 0 => break,
                _ => {}
            }
            self.pos += 1;
        }
        let names = pattern_names(&self.toks[pat_start..self.pos]);
        self.eat_punct("=");
        (names, self.parse_expr_no_struct())
    }

    fn parse_if(&mut self) -> Stmt {
        self.pos += 1; // `if`
        let (binds, cond) = if self.at_ident("let") {
            self.parse_let_cond()
        } else {
            (Vec::new(), self.parse_expr_no_struct())
        };
        let then = self.parse_block();
        let els = if self.at_ident("else") {
            self.pos += 1;
            if self.at_ident("if") {
                Some(vec![self.parse_if()])
            } else {
                Some(self.parse_block())
            }
        } else {
            None
        };
        Stmt::If { binds, cond, then, els }
    }

    fn parse_while(&mut self) -> Stmt {
        let (line, col) = self.pos_of(self.peek());
        self.pos += 1; // `while`
        let (binds, cond) = if self.at_ident("let") {
            self.parse_let_cond()
        } else {
            (Vec::new(), self.parse_expr_no_struct())
        };
        let body = self.parse_block();
        Stmt::While { binds, cond, body, line, col }
    }

    fn parse_for(&mut self) -> Stmt {
        self.pos += 1; // `for`
        let pat_start = self.pos;
        while self.pos < self.toks.len() && !self.toks[self.pos].is_ident("in") {
            self.pos += 1;
        }
        let vars = pattern_names(&self.toks[pat_start..self.pos]);
        self.pos += 1; // `in`
        let iter = self.parse_expr_no_struct();
        let body = self.parse_block();
        Stmt::For { vars, iter, body }
    }

    fn parse_arms(&mut self) -> Vec<Arm> {
        if !self.at_punct("{") {
            return Vec::new();
        }
        let Some(close) = matching_close(self.toks, self.pos, "{", "}") else {
            self.pos = self.toks.len();
            return Vec::new();
        };
        let mut inner = Parser::new(&self.toks[self.pos + 1..close]);
        self.pos = close + 1;
        let mut arms = Vec::new();
        while inner.pos < inner.toks.len() {
            let before = inner.pos;
            while inner.at_punct("#") {
                inner.skip_attribute();
            }
            // Pattern tokens until a top-level `=>`.
            let pat_start = inner.pos;
            let mut depth = 0i32;
            while inner.pos < inner.toks.len() {
                match &inner.toks[inner.pos].tok {
                    Tok::Punct(p) if p == "(" || p == "[" || p == "{" => depth += 1,
                    Tok::Punct(p) if p == ")" || p == "]" || p == "}" => depth -= 1,
                    Tok::Punct(p) if p == "=>" && depth <= 0 => break,
                    _ => {}
                }
                inner.pos += 1;
            }
            let mut pat = &inner.toks[pat_start..inner.pos];
            // A pattern guard binds nothing new past the `if`.
            if let Some(g) = pat.iter().position(|t| t.is_ident("if")) {
                pat = &pat[..g];
            }
            let binds = pattern_names(pat);
            if !inner.eat_punct("=>") {
                break;
            }
            let body = if inner.at_punct("{") {
                inner.parse_block()
            } else {
                let e = inner.parse_expr();
                vec![Stmt::Expr(e)]
            };
            inner.eat_punct(",");
            arms.push(Arm { binds, body });
            if inner.pos == before {
                inner.pos += 1;
            }
        }
        arms
    }

    fn parse_expr_stmt(&mut self) -> Stmt {
        let (line, col) = self.pos_of(self.peek());
        let target = self.parse_expr();
        // Assignment / compound assignment?
        if self.at_punct("=") {
            self.pos += 1;
            let value = self.parse_expr();
            self.eat_punct(";");
            return Stmt::Assign { target, op: None, value, line, col };
        }
        if let Some(Tok::Punct(p)) = self.peek().map(|t| &t.tok) {
            let compound =
                matches!(p.as_str(), "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|" | "<<" | ">>")
                    && self.peek_at(1).is_some_and(|t| t.is_punct("="));
            if compound {
                let op = p.clone();
                self.pos += 2;
                let value = self.parse_expr();
                self.eat_punct(";");
                return Stmt::Assign { target, op: Some(op), value, line, col };
            }
        }
        self.eat_punct(";");
        Stmt::Expr(target)
    }

    fn parse_expr(&mut self) -> Expr {
        self.parse_bp(0, false)
    }

    fn parse_expr_no_struct(&mut self) -> Expr {
        self.parse_bp(0, true)
    }

    fn opaque(&self, line: usize, col: usize) -> Expr {
        Expr { kind: ExprKind::Opaque, line, col }
    }

    /// Pratt loop: parse a primary then fold infix/postfix operators of
    /// binding power above `min_bp`. `no_struct` suppresses struct
    /// literals (condition position, where `{` opens the block).
    fn parse_bp(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.parse_primary(no_struct);
        while let Some(t) = self.peek() {
            let (line, col) = (t.line, t.col);
            match &t.tok {
                Tok::Punct(p) => match p.as_str() {
                    "." => {
                        let Some(next) = self.peek_at(1) else { break };
                        match &next.tok {
                            Tok::Ident(name) => {
                                let name = name.clone();
                                self.pos += 2;
                                // Turbofish on methods: `.collect::<..>`.
                                if self.at_punct("::") {
                                    self.pos += 1;
                                    if self.at_punct("<") {
                                        self.pos = skip_angles(self.toks, self.pos);
                                    }
                                }
                                if self.at_punct("(") {
                                    let args = self.parse_call_args();
                                    lhs = Expr {
                                        kind: ExprKind::MethodCall {
                                            base: Box::new(lhs),
                                            name,
                                            args,
                                        },
                                        line,
                                        col,
                                    };
                                } else {
                                    lhs = Expr {
                                        kind: ExprKind::Field { base: Box::new(lhs), name },
                                        line,
                                        col,
                                    };
                                }
                            }
                            Tok::Int(v) => {
                                let name = v.map(|v| v.to_string()).unwrap_or_default();
                                self.pos += 2;
                                lhs = Expr {
                                    kind: ExprKind::Field { base: Box::new(lhs), name },
                                    line,
                                    col,
                                };
                            }
                            _ => break,
                        }
                    }
                    "?" => {
                        self.pos += 1;
                        lhs = Expr { kind: ExprKind::Try { expr: Box::new(lhs) }, line, col };
                    }
                    "(" => {
                        let args = self.parse_call_args();
                        lhs = Expr {
                            kind: ExprKind::Call { callee: Box::new(lhs), args },
                            line,
                            col,
                        };
                    }
                    "[" => {
                        let Some(close) = matching_close(self.toks, self.pos, "[", "]") else {
                            self.pos = self.toks.len();
                            break;
                        };
                        let mut inner = Parser::new(&self.toks[self.pos + 1..close]);
                        let index = inner.parse_expr();
                        self.pos = close + 1;
                        lhs = Expr {
                            kind: ExprKind::Index { base: Box::new(lhs), index: Box::new(index) },
                            line,
                            col,
                        };
                    }
                    ".." => {
                        if min_bp > 1 {
                            break;
                        }
                        self.pos += 1;
                        self.eat_punct("="); // `..=` lexes as `..` `=`
                        let hi = if self.range_bound_follows(no_struct) {
                            Some(Box::new(self.parse_bp(2, no_struct)))
                        } else {
                            None
                        };
                        lhs = Expr {
                            kind: ExprKind::Range { lo: Some(Box::new(lhs)), hi },
                            line,
                            col,
                        };
                    }
                    op => {
                        let Some(bp) = infix_bp(op) else { break };
                        if bp <= min_bp {
                            break;
                        }
                        // Compound assignment belongs to the statement.
                        if self.peek_at(1).is_some_and(|t| t.is_punct("=")) && bp >= 4 {
                            break;
                        }
                        let op = op.to_string();
                        self.pos += 1;
                        let rhs = self.parse_bp(bp, no_struct);
                        lhs = Expr {
                            kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                            line,
                            col,
                        };
                    }
                },
                Tok::Ident(kw) if kw == "as" => {
                    self.pos += 1;
                    self.skip_type();
                    lhs = Expr { kind: ExprKind::Cast { expr: Box::new(lhs) }, line, col };
                }
                _ => break,
            }
        }
        lhs
    }

    /// Whether a range bound expression follows (vs `..` ending at a
    /// closing delimiter, as in `&xs[1..]`).
    fn range_bound_follows(&self, no_struct: bool) -> bool {
        match self.peek().map(|t| &t.tok) {
            None => false,
            Some(Tok::Punct(p)) => {
                !(matches!(p.as_str(), ")" | "]" | "}" | "," | ";") || no_struct && p == "{")
            }
            Some(_) => true,
        }
    }

    /// Consumes a type after `as` (path, generics, primitive).
    fn skip_type(&mut self) {
        while self.pos < self.toks.len() {
            match &self.toks[self.pos].tok {
                Tok::Ident(_) => {
                    self.pos += 1;
                    if self.at_punct("::") {
                        self.pos += 1;
                        continue;
                    }
                    if self.at_punct("<") {
                        self.pos = skip_angles(self.toks, self.pos);
                    }
                    return;
                }
                Tok::Punct(p) if p == "*" || p == "&" => self.pos += 1,
                _ => return,
            }
        }
    }

    /// Parses `( a, b, c )` call arguments (consumes both parens).
    fn parse_call_args(&mut self) -> Vec<Expr> {
        let Some(close) = matching_close(self.toks, self.pos, "(", ")") else {
            self.pos = self.toks.len();
            return Vec::new();
        };
        let inner = &self.toks[self.pos + 1..close];
        self.pos = close + 1;
        split_top_level(inner, ",")
            .into_iter()
            .filter(|p| !p.is_empty())
            .map(|p| Parser::new(p).parse_expr())
            .collect()
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let Some(t) = self.peek() else {
            return self.opaque(0, 0);
        };
        let (line, col) = (t.line, t.col);
        match &t.tok {
            Tok::Int(_) => {
                self.pos += 1;
                Expr { kind: ExprKind::Int, line, col }
            }
            Tok::Punct(p) => match p.as_str() {
                "(" => {
                    let Some(close) = matching_close(self.toks, self.pos, "(", ")") else {
                        self.pos = self.toks.len();
                        return self.opaque(line, col);
                    };
                    let inner = &self.toks[self.pos + 1..close];
                    self.pos = close + 1;
                    let mut elems: Vec<Expr> = split_top_level(inner, ",")
                        .into_iter()
                        .filter(|p| !p.is_empty())
                        .map(|p| Parser::new(p).parse_expr())
                        .collect();
                    if elems.len() == 1 {
                        elems.pop().unwrap_or_else(|| self.opaque(line, col))
                    } else {
                        Expr { kind: ExprKind::Tuple(elems), line, col }
                    }
                }
                "[" => self.parse_bracket_group(line, col),
                "&" => {
                    self.pos += 1;
                    if self.at_ident("mut") {
                        self.pos += 1;
                    }
                    let e = self.parse_bp(10, no_struct);
                    Expr { kind: ExprKind::Unary { expr: Box::new(e) }, line, col }
                }
                "*" | "!" | "-" => {
                    self.pos += 1;
                    let e = self.parse_bp(10, no_struct);
                    Expr { kind: ExprKind::Unary { expr: Box::new(e) }, line, col }
                }
                "|" | "||" => self.parse_closure(line, col),
                ".." => {
                    self.pos += 1;
                    self.eat_punct("=");
                    let hi = if self.range_bound_follows(no_struct) {
                        Some(Box::new(self.parse_bp(2, no_struct)))
                    } else {
                        None
                    };
                    Expr { kind: ExprKind::Range { lo: None, hi }, line, col }
                }
                "{" => Expr { kind: ExprKind::BlockExpr(self.parse_block()), line, col },
                _ => {
                    self.pos += 1;
                    self.opaque(line, col)
                }
            },
            Tok::Ident(kw) => match kw.as_str() {
                "if" => {
                    self.pos += 1;
                    let cond = if self.at_ident("let") {
                        self.parse_let_cond().1
                    } else {
                        self.parse_expr_no_struct()
                    };
                    let then = self.parse_block();
                    let els = if self.at_ident("else") {
                        self.pos += 1;
                        if self.at_ident("if") {
                            Some(vec![self.parse_if()])
                        } else {
                            Some(self.parse_block())
                        }
                    } else {
                        None
                    };
                    Expr { kind: ExprKind::IfExpr { cond: Box::new(cond), then, els }, line, col }
                }
                "match" => {
                    self.pos += 1;
                    let scrutinee = self.parse_expr_no_struct();
                    let arms = self.parse_arms();
                    Expr {
                        kind: ExprKind::MatchExpr { scrutinee: Box::new(scrutinee), arms },
                        line,
                        col,
                    }
                }
                "loop" => {
                    self.pos += 1;
                    Expr { kind: ExprKind::BlockExpr(self.parse_block()), line, col }
                }
                "unsafe" => {
                    self.pos += 1;
                    Expr { kind: ExprKind::BlockExpr(self.parse_block()), line, col }
                }
                "move" => {
                    self.pos += 1;
                    let (l2, c2) = self.pos_of(self.peek());
                    if self.at_punct("|") || self.at_punct("||") {
                        self.parse_closure(l2, c2)
                    } else {
                        self.opaque(line, col)
                    }
                }
                "return" | "break" | "continue" => {
                    let is_bare = kw == "continue";
                    self.pos += 1;
                    let value = if !is_bare && self.range_bound_follows(no_struct) {
                        Some(Box::new(self.parse_bp(0, no_struct)))
                    } else {
                        None
                    };
                    Expr { kind: ExprKind::Diverge { value }, line, col }
                }
                _ => self.parse_path_primary(no_struct, line, col),
            },
        }
    }

    /// `[a, b]` array literal or `[elem; n]` repeat.
    fn parse_bracket_group(&mut self, line: usize, col: usize) -> Expr {
        let Some(close) = matching_close(self.toks, self.pos, "[", "]") else {
            self.pos = self.toks.len();
            return self.opaque(line, col);
        };
        let inner = &self.toks[self.pos + 1..close];
        self.pos = close + 1;
        let semi = split_top_level(inner, ";");
        if semi.len() == 2 {
            let elem = Parser::new(semi[0]).parse_expr();
            let len = Parser::new(semi[1]).parse_expr();
            return Expr {
                kind: ExprKind::Macro {
                    name: "array".to_string(),
                    args: vec![elem],
                    repeat_len: Some(Box::new(len)),
                },
                line,
                col,
            };
        }
        let elems = split_top_level(inner, ",")
            .into_iter()
            .filter(|p| !p.is_empty())
            .map(|p| Parser::new(p).parse_expr())
            .collect();
        Expr { kind: ExprKind::Tuple(elems), line, col }
    }

    fn parse_closure(&mut self, line: usize, col: usize) -> Expr {
        let mut params = Vec::new();
        if self.at_punct("||") {
            self.pos += 1;
        } else {
            self.pos += 1; // opening `|`
                           // Parameter names; skip `: Type` segments until the closing `|`.
            let mut expect_name = true;
            while self.pos < self.toks.len() {
                match &self.toks[self.pos].tok {
                    Tok::Punct(p) if p == "|" => {
                        self.pos += 1;
                        break;
                    }
                    Tok::Punct(p) if p == "," => {
                        expect_name = true;
                        self.pos += 1;
                    }
                    Tok::Punct(p) if p == ":" => {
                        expect_name = false;
                        self.pos += 1;
                    }
                    Tok::Ident(s) if expect_name && s != "mut" && s != "ref" => {
                        params.push(s.clone());
                        self.pos += 1;
                    }
                    _ => self.pos += 1,
                }
            }
        }
        let body = if self.at_punct("{") {
            self.parse_block()
        } else {
            let e = self.parse_bp(0, false);
            vec![Stmt::Expr(e)]
        };
        Expr { kind: ExprKind::Closure { params, body }, line, col }
    }

    /// Path, path call, macro, or struct literal.
    fn parse_path_primary(&mut self, no_struct: bool, line: usize, col: usize) -> Expr {
        let mut segs = Vec::new();
        while let Some(Tok::Ident(s)) = self.peek().map(|t| &t.tok) {
            segs.push(s.clone());
            self.pos += 1;
            if self.at_punct("::") {
                self.pos += 1;
                if self.at_punct("<") {
                    self.pos = skip_angles(self.toks, self.pos);
                    if self.at_punct("::") {
                        self.pos += 1;
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            self.pos += 1;
            return self.opaque(line, col);
        }
        // Macro invocation.
        if self.at_punct("!") && !self.peek_at(1).is_some_and(|t| t.is_punct("=")) {
            self.pos += 1;
            let name = segs.last().cloned().unwrap_or_default();
            return self.parse_macro_args(name, line, col);
        }
        // Call.
        if self.at_punct("(") {
            let args = self.parse_call_args();
            let callee = Expr { kind: ExprKind::Path(segs), line, col };
            return Expr { kind: ExprKind::Call { callee: Box::new(callee), args }, line, col };
        }
        // Struct literal: uppercase-initial last segment + `{ field ... }`.
        let upper = segs.last().and_then(|s| s.chars().next()).is_some_and(|c| c.is_uppercase());
        if upper && !no_struct && self.at_punct("{") {
            if let Some(close) = matching_close(self.toks, self.pos, "{", "}") {
                let inner = &self.toks[self.pos + 1..close];
                self.pos = close + 1;
                let fields = split_top_level(inner, ",")
                    .into_iter()
                    .filter(|p| !p.is_empty())
                    .map(|p| {
                        // `name: expr` → expr; shorthand `name` → path.
                        let val = p
                            .iter()
                            .position(|t| t.is_punct(":"))
                            .map(|c| &p[c + 1..])
                            .unwrap_or(p);
                        Parser::new(val).parse_expr()
                    })
                    .collect();
                return Expr { kind: ExprKind::StructLit { fields }, line, col };
            }
        }
        Expr { kind: ExprKind::Path(segs), line, col }
    }

    /// Macro arguments in any delimiter; `vec![e; n]` keeps the repeat.
    fn parse_macro_args(&mut self, name: String, line: usize, col: usize) -> Expr {
        let (open, close) = match self.peek().map(|t| &t.tok) {
            Some(Tok::Punct(p)) if p == "(" => ("(", ")"),
            Some(Tok::Punct(p)) if p == "[" => ("[", "]"),
            Some(Tok::Punct(p)) if p == "{" => ("{", "}"),
            _ => {
                return Expr {
                    kind: ExprKind::Macro { name, args: Vec::new(), repeat_len: None },
                    line,
                    col,
                }
            }
        };
        let Some(end) = matching_close(self.toks, self.pos, open, close) else {
            self.pos = self.toks.len();
            return Expr {
                kind: ExprKind::Macro { name, args: Vec::new(), repeat_len: None },
                line,
                col,
            };
        };
        let inner = &self.toks[self.pos + 1..end];
        self.pos = end + 1;
        let semi = split_top_level(inner, ";");
        if semi.len() == 2 {
            let elem = Parser::new(semi[0]).parse_expr();
            let len = Parser::new(semi[1]).parse_expr();
            return Expr {
                kind: ExprKind::Macro { name, args: vec![elem], repeat_len: Some(Box::new(len)) },
                line,
                col,
            };
        }
        let args = split_top_level(inner, ",")
            .into_iter()
            .filter(|p| !p.is_empty())
            .map(|p| Parser::new(p).parse_expr())
            .collect();
        Expr { kind: ExprKind::Macro { name, args, repeat_len: None }, line, col }
    }
}

/// Infix binding power (higher binds tighter); `None` = not an operator.
fn infix_bp(op: &str) -> Option<u8> {
    Some(match op {
        "||" => 2,
        "&&" => 3,
        "==" | "!=" | "<" | ">" | "<=" | ">=" => 4,
        "|" => 5,
        "^" => 6,
        "&" => 7,
        "<<" | ">>" => 8,
        "+" | "-" => 9,
        "*" | "/" | "%" => 10,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{mask_source, tokenize};

    fn parse(src: &str) -> Vec<Function> {
        parse_functions(&tokenize(&mask_source(src).code_lines))
    }

    #[test]
    fn finds_functions_and_params() {
        let fs = parse("fn a(x: u32, ys: &[Fragment]) -> u32 { x }\nfn b() {}\n");
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].name, "a");
        assert_eq!(fs[0].params.len(), 2);
        assert_eq!(fs[0].params[1].0, "ys");
        assert!(fs[0].params[1].1.contains("Fragment"));
    }

    #[test]
    fn parses_let_and_method_chain() {
        let fs = parse("fn f(r: R) { let n = r.u32()?; }");
        let Stmt::Let { names, init, .. } = &fs[0].body[0] else { panic!("not a let") };
        assert_eq!(names, &["n"]);
        let Some(Expr { kind: ExprKind::Try { expr }, .. }) = init.as_ref() else {
            panic!("not a try")
        };
        let ExprKind::MethodCall { name, .. } = &expr.kind else { panic!("not a method") };
        assert_eq!(name, "u32");
    }

    #[test]
    fn parses_if_guard_and_return() {
        let fs = parse("fn f(n: usize) { if n > MAX { return; } let v = n + 1; }");
        assert!(matches!(&fs[0].body[0], Stmt::If { .. }));
        let Stmt::If { then, .. } = &fs[0].body[0] else { unreachable!() };
        assert!(matches!(then[0], Stmt::Return { .. }));
    }

    #[test]
    fn parses_for_range_and_vec_macro() {
        let fs = parse("fn f(n: usize) { for i in 0..n { } let v = vec![0u8; n]; }");
        let Stmt::For { vars, iter, .. } = &fs[0].body[0] else { panic!("not a for") };
        assert_eq!(vars, &["i"]);
        assert!(matches!(iter.kind, ExprKind::Range { .. }));
        let Stmt::Let { init: Some(e), .. } = &fs[0].body[1] else { panic!("not a let") };
        let ExprKind::Macro { name, repeat_len, .. } = &e.kind else { panic!("not a macro") };
        assert_eq!(name, "vec");
        assert!(repeat_len.is_some());
    }

    #[test]
    fn parses_struct_literal_without_consuming_condition_blocks() {
        let fs = parse(
            "fn f(x: u32) { if x > 0 { g(); } let s = Foo { a: x, b: 1 }; match x { 0 => h(), _ => {} } }",
        );
        assert_eq!(fs.len(), 1);
        assert!(matches!(&fs[0].body[0], Stmt::If { .. }));
        let Stmt::Let { init: Some(e), .. } = &fs[0].body[1] else { panic!("not a let") };
        assert!(matches!(e.kind, ExprKind::StructLit { .. }));
        assert!(matches!(&fs[0].body[2], Stmt::Match { .. }));
    }

    #[test]
    fn parses_closures_and_compound_assign() {
        let fs = parse("fn f(xs: &[u8], mut n: usize) { xs.iter().map(|x| x + 1); n += 2; }");
        assert!(matches!(&fs[0].body[1], Stmt::Assign { op: Some(op), .. } if op == "+"));
    }

    #[test]
    fn nested_fn_found_and_outer_body_survives() {
        let fs = parse("fn outer() { fn inner(k: u8) { } let x = 1; }");
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[1].name, "inner");
    }

    #[test]
    fn let_else_and_if_let_bind_names() {
        let fs =
            parse("fn f(o: O) { let Some(x) = o.get() else { return; }; if let Ok(y) = x { } }");
        let Stmt::Let { names, els, .. } = &fs[0].body[0] else { panic!("not a let") };
        assert_eq!(names, &["x"]);
        assert!(els.is_some());
        let Stmt::If { binds, .. } = &fs[0].body[1] else { panic!("not an if") };
        assert_eq!(binds, &["y"]);
    }
}
