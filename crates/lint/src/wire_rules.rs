//! Structural wire-safety rules: **W2** (`unbounded-map`) and **W3**
//! (`lock-discipline`).
//!
//! - **W2** — a `BTreeMap`/`BTreeSet` struct field in a long-lived
//!   protocol crate whose key is *not* `NodeId` (so the key space is
//!   attacker-extensible: epochs, instance ids, roots, raw indices)
//!   must be reachable from an in-file GC path — `retain`, `remove`,
//!   `clear`, `drain`, `split_off`, `pop_first`/`pop_last`,
//!   `mem::take`/`replace`, or a wholesale reset. `NodeId`-keyed
//!   state is bounded by `n` and exempt.
//! - **W3** — no `.lock().unwrap()`/`.lock().expect(..)` (poison must
//!   be ridden or surfaced as a typed error), and no overlapping lock
//!   acquisitions (a second `.lock()`/`locked(..)` while a let-bound
//!   guard is live) without a `lint: allow(lock-discipline)` site
//!   declaring the acquisition order.

use crate::lexer::{Tok, Token};
use crate::rules::{RawFinding, Rule};

const GC_METHODS: &[&str] =
    &["retain", "remove", "clear", "drain", "split_off", "pop_first", "pop_last"];

/// Scans struct fields for unbounded peer/epoch-keyed collections.
pub fn scan_unbounded_maps(tokens: &[Token], out: &mut Vec<RawFinding>) {
    let fields = collect_map_fields(tokens);
    for (name, key, line, col) in fields {
        if key.starts_with("NodeId") {
            continue;
        }
        if has_gc_evidence(tokens, &name) {
            continue;
        }
        out.push(RawFinding {
            rule: Rule::UnboundedMap,
            line,
            col,
            message: format!(
                "collection field `{name}` is keyed by `{key}` (attacker-extensible) with no \
                 in-file GC path (retain/remove/clear/drain/split_off/mem::take): wire it into \
                 the epoch GC horizon or annotate why it is bounded"
            ),
            trace: vec![format!("field `{name}: …<{key}, _>`")],
        });
    }
}

/// Finds `(field_name, key_type_text, line, col)` for every
/// `BTreeMap`/`BTreeSet`-typed named struct field.
fn collect_map_fields(tokens: &[Token]) -> Vec<(String, String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("struct") {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(_)) = tokens.get(i + 1).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        // Skip generics/where to the struct body; `;`/`(` = not a
        // brace struct (unit/tuple) — skip it.
        let mut j = i + 2;
        let mut body = None;
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct(p) if p == "{" => {
                    body = Some(j);
                    break;
                }
                Tok::Punct(p) if p == ";" || p == "(" => break,
                _ => j += 1,
            }
        }
        let Some(open) = body else {
            i = j + 1;
            continue;
        };
        let Some(close) = matching_brace(tokens, open) else {
            break;
        };
        parse_fields(&tokens[open + 1..close], &mut out);
        i = close + 1;
    }
    out
}

fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Parses `name: Type,` fields inside a struct body token slice.
fn parse_fields(tokens: &[Token], out: &mut Vec<(String, String, usize, usize)>) {
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        if tokens[i].is_punct("#") {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct("[")) {
                let mut depth = 0usize;
                while i < tokens.len() {
                    if tokens[i].is_punct("[") {
                        depth += 1;
                    } else if tokens[i].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            continue;
        }
        if tokens[i].is_ident("pub") {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct("(")) {
                while i < tokens.len() && !tokens[i].is_punct(")") {
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        // Field: `name : type-tokens (, | end)`.
        let (Some(Tok::Ident(fname)), true) =
            (tokens.get(i).map(|t| &t.tok), tokens.get(i + 1).is_some_and(|t| t.is_punct(":")))
        else {
            i += 1;
            continue;
        };
        let fname = fname.clone();
        let (line, col) = (tokens[i].line, tokens[i].col);
        let ty_start = i + 2;
        let mut j = ty_start;
        let (mut depth, mut angle) = (0i32, 0i32);
        while j < tokens.len() {
            if let Tok::Punct(p) = &tokens[j].tok {
                match p.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "," if depth == 0 && angle <= 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if let Some(key) = map_key_type(&tokens[ty_start..j]) {
            out.push((fname, key, line, col));
        }
        i = j + 1;
    }
}

/// If the type tokens contain `BTreeMap<K, ..>` / `BTreeSet<K>`,
/// returns the rendered key type `K`.
fn map_key_type(ty: &[Token]) -> Option<String> {
    let at = ty.iter().position(|t| t.is_ident("BTreeMap") || t.is_ident("BTreeSet"))?;
    if !ty.get(at + 1).is_some_and(|t| t.is_punct("<")) {
        return None;
    }
    let mut angle = 0i32;
    let mut key = String::new();
    for t in &ty[at + 1..] {
        match &t.tok {
            Tok::Punct(p) if p == "<" => {
                angle += 1;
                if angle == 1 {
                    continue;
                }
            }
            Tok::Punct(p) if p == ">" => angle -= 1,
            Tok::Punct(p) if p == ">>" => angle -= 2,
            Tok::Punct(p) if p == "," && angle == 1 => break,
            _ => {}
        }
        if angle <= 0 {
            break;
        }
        if !key.is_empty() {
            key.push(' ');
        }
        match &t.tok {
            Tok::Ident(s) => key.push_str(s),
            Tok::Int(Some(v)) => key.push_str(&v.to_string()),
            Tok::Int(None) => key.push('0'),
            Tok::Punct(p) => key.push_str(p),
        }
    }
    Some(key)
}

/// Whether the file shows a GC call on `field` anywhere
/// (`field.retain(..)`, `mem::take(&mut self.field)`, reset…).
fn has_gc_evidence(tokens: &[Token], field: &str) -> bool {
    for (k, t) in tokens.iter().enumerate() {
        // `field . gc_method (`
        if t.is_ident(field)
            && tokens.get(k + 1).is_some_and(|t| t.is_punct("."))
            && tokens.get(k + 2).is_some_and(|t| GC_METHODS.iter().any(|m| t.is_ident(m)))
            && tokens.get(k + 3).is_some_and(|t| t.is_punct("("))
        {
            return true;
        }
        // `take(&mut self.field)` / `replace(&mut self.field, ..)`
        if (t.is_ident("take") || t.is_ident("replace"))
            && tokens.get(k + 1).is_some_and(|t| t.is_punct("("))
            && tokens.get(k + 2).is_some_and(|t| t.is_punct("&"))
            && tokens.get(k + 3).is_some_and(|t| t.is_ident("mut"))
            && tokens.get(k + 4).is_some_and(|t| t.is_ident("self"))
            && tokens.get(k + 5).is_some_and(|t| t.is_punct("."))
            && tokens.get(k + 6).is_some_and(|t| t.is_ident(field))
        {
            return true;
        }
        // Wholesale reset: `self . field = BTreeMap :: new` / Default.
        if t.is_ident("self")
            && tokens.get(k + 1).is_some_and(|t| t.is_punct("."))
            && tokens.get(k + 2).is_some_and(|t| t.is_ident(field))
            && tokens.get(k + 3).is_some_and(|t| t.is_punct("="))
            && tokens.get(k + 4).is_some_and(|t| {
                t.is_ident("BTreeMap") || t.is_ident("BTreeSet") || t.is_ident("Default")
            })
        {
            return true;
        }
    }
    false
}

/// Scans for lock-discipline violations.
pub fn scan_lock_discipline(tokens: &[Token], out: &mut Vec<RawFinding>) {
    scan_lock_unwrap(tokens, out);
    scan_nested_locks(tokens, out);
}

/// `.lock().unwrap()` / `.lock().expect(..)` — poison must be ridden
/// (`unwrap_or_else(PoisonError::into_inner)`) or surfaced typed.
fn scan_lock_unwrap(tokens: &[Token], out: &mut Vec<RawFinding>) {
    for (k, t) in tokens.iter().enumerate() {
        if t.is_punct(".")
            && tokens.get(k + 1).is_some_and(|t| t.is_ident("lock"))
            && tokens.get(k + 2).is_some_and(|t| t.is_punct("("))
            && tokens.get(k + 3).is_some_and(|t| t.is_punct(")"))
            && tokens.get(k + 4).is_some_and(|t| t.is_punct("."))
            && tokens.get(k + 5).is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            && tokens.get(k + 6).is_some_and(|t| t.is_punct("("))
        {
            let at = &tokens[k + 1];
            out.push(RawFinding {
                rule: Rule::LockDiscipline,
                line: at.line,
                col: at.col,
                message: "`.lock().unwrap()` panics the thread on poison: ride the poison \
                          (`unwrap_or_else(PoisonError::into_inner)`) or surface a typed error"
                    .to_string(),
                trace: Vec::new(),
            });
        }
    }
}

/// Whether a lock acquisition starts at `k` (`.lock(` on a `Mutex`, or
/// a call to the `locked(..)` poison-riding helper). Returns the token
/// carrying the position.
fn lock_acquisition_at(tokens: &[Token], k: usize) -> Option<&Token> {
    let t = tokens.get(k)?;
    if t.is_punct(".")
        && tokens.get(k + 1).is_some_and(|t| t.is_ident("lock"))
        && tokens.get(k + 2).is_some_and(|t| t.is_punct("("))
    {
        return tokens.get(k + 1);
    }
    if t.is_ident("locked")
        && tokens.get(k + 1).is_some_and(|t| t.is_punct("("))
        && !(k > 0 && (tokens[k - 1].is_punct(".") || tokens[k - 1].is_ident("fn")))
    {
        return Some(t);
    }
    None
}

/// Flags a lock acquisition while a let-bound guard from an enclosing
/// statement is still live (nested locking deadlock risk).
fn scan_nested_locks(tokens: &[Token], out: &mut Vec<RawFinding>) {
    let mut depth = 0i32;
    // Live let-bound guards: (brace depth, guard name).
    let mut guards: Vec<(i32, String)> = Vec::new();
    // Current-statement state.
    let mut stmt_locks = 0usize;
    let mut stmt_is_let = false;
    let mut stmt_let_name = String::new();
    let mut paren = 0i32;

    let mut k = 0;
    while k < tokens.len() {
        let t = &tokens[k];
        match &t.tok {
            Tok::Punct(p) => match p.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" => {
                    // Statement header ends: transient guards die here.
                    depth += 1;
                    stmt_locks = 0;
                    stmt_is_let = false;
                }
                "}" => {
                    guards.retain(|(d, _)| *d < depth);
                    depth -= 1;
                    stmt_locks = 0;
                    stmt_is_let = false;
                }
                ";" if paren <= 0 => {
                    if stmt_is_let && stmt_locks == 1 && !stmt_let_name.is_empty() {
                        guards.push((depth, stmt_let_name.clone()));
                    }
                    stmt_locks = 0;
                    stmt_is_let = false;
                    stmt_let_name.clear();
                }
                _ => {}
            },
            Tok::Ident(s) => match s.as_str() {
                "let" if paren <= 0 => {
                    stmt_is_let = true;
                    stmt_locks = 0;
                    stmt_let_name = match tokens.get(k + 1).map(|t| &t.tok) {
                        Some(Tok::Ident(n)) if n == "mut" => {
                            match tokens.get(k + 2).map(|t| &t.tok) {
                                Some(Tok::Ident(n)) => n.clone(),
                                _ => String::new(),
                            }
                        }
                        Some(Tok::Ident(n)) => n.clone(),
                        _ => String::new(),
                    };
                }
                "drop" if tokens.get(k + 1).is_some_and(|t| t.is_punct("(")) => {
                    if let Some(Tok::Ident(n)) = tokens.get(k + 2).map(|t| &t.tok) {
                        guards.retain(|(_, g)| g != n);
                    }
                }
                _ => {}
            },
            _ => {}
        }
        if let Some(at) = lock_acquisition_at(tokens, k) {
            if !guards.is_empty() || stmt_locks >= 1 {
                let held = guards
                    .last()
                    .map(|(_, g)| format!("guard `{g}`"))
                    .unwrap_or_else(|| "an earlier acquisition in this statement".to_string());
                out.push(RawFinding {
                    rule: Rule::LockDiscipline,
                    line: at.line,
                    col: at.col,
                    message: format!(
                        "nested lock acquisition while {held} is still held: a second thread \
                         taking them in the other order deadlocks — scope the first guard out, \
                         or annotate the declared order"
                    ),
                    trace: Vec::new(),
                });
            }
            stmt_locks += 1;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{mask_source, tokenize};

    fn run_maps(src: &str) -> Vec<RawFinding> {
        let mut out = Vec::new();
        scan_unbounded_maps(&tokenize(&mask_source(src).code_lines), &mut out);
        out
    }

    fn run_locks(src: &str) -> Vec<RawFinding> {
        let mut out = Vec::new();
        scan_lock_discipline(&tokenize(&mask_source(src).code_lines), &mut out);
        out
    }

    #[test]
    fn epoch_keyed_map_without_gc_fires() {
        let f = run_maps("struct S { epochs: BTreeMap<u64, State> }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnboundedMap);
        assert!(f[0].message.contains("epochs"));
    }

    #[test]
    fn retain_evidence_clears() {
        let f = run_maps(
            "struct S { epochs: BTreeMap<u64, State> }\n\
             impl S { fn gc(&mut self, h: u64) { self.epochs.retain(|e, _| *e >= h); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn node_id_keyed_is_exempt() {
        assert!(run_maps("struct S { votes: BTreeMap<NodeId, Value> }").is_empty());
        assert!(run_maps("struct S { seen: BTreeSet<NodeId> }").is_empty());
    }

    #[test]
    fn mem_take_is_evidence() {
        let f = run_maps(
            "struct S { buf: BTreeMap<u64, V> }\n\
             impl S { fn flush(&mut self) -> BTreeMap<u64, V> { std::mem::take(&mut self.buf) } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_unwrap_fires() {
        let f = run_locks("fn f(m: &Mutex<u8>) { let g = m.lock().unwrap(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockDiscipline);
    }

    #[test]
    fn nested_lock_fires_and_scoped_does_not() {
        let nested = "fn f(a: &M, b: &M) { let ga = locked(a); let gb = locked(b); }";
        assert_eq!(run_locks(nested).len(), 1, "{:?}", run_locks(nested));
        let scoped = "fn f(a: &M, b: &M) { { let ga = locked(a); } { let gb = locked(b); } }";
        assert!(run_locks(scoped).is_empty(), "{:?}", run_locks(scoped));
    }

    #[test]
    fn transient_and_dropped_guards_do_not_fire() {
        let transient = "fn f(a: &M, b: &M) { locked(a).push(1); locked(b).push(2); }";
        assert!(run_locks(transient).is_empty(), "{:?}", run_locks(transient));
        let dropped = "fn f(a: &M, b: &M) { let ga = locked(a); drop(ga); let gb = locked(b); }";
        assert!(run_locks(dropped).is_empty(), "{:?}", run_locks(dropped));
    }
}
