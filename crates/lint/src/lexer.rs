//! A minimal Rust source scanner: comment/string masking, line-comment
//! capture, and a flat token stream with positions.
//!
//! The analyzer does not need a real parser — every rule it enforces is a
//! local token pattern — but it must never report matches inside string
//! literals, comments, or `#[cfg(test)]` modules. This module provides
//! exactly that: [`mask_source`] blanks out everything that is not code
//! (retaining `//` comment text per line so the allow-annotation scanner
//! can read it), and [`tokenize`] turns the masked code into identifiers,
//! integer literals and operator tokens with 1-based line/column positions.

/// The result of masking one source file.
#[derive(Debug)]
pub struct MaskedSource {
    /// Source lines with string/char/comment contents replaced by spaces.
    /// Line count always equals the input's.
    pub code_lines: Vec<String>,
    /// The text of each line's `//` comment (without the slashes), if any.
    /// Doc comments (`///`, `//!`) are captured too.
    pub comment_lines: Vec<Option<String>>,
}

/// Strips strings, character literals and comments from `src`.
///
/// Handles nested `/* */` block comments, raw strings (`r"…"`,
/// `r#"…"#`, …), byte strings and lifetimes (`'a` is code, `'a'` is a
/// char literal). Masked characters become spaces so token positions in
/// the output line up with the original source.
pub fn mask_source(src: &str) -> MaskedSource {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }

    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;

    let mut chars = src.chars().peekable();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        if c == '\n' {
            // Line comments end at the newline; everything else carries on.
            if state == State::LineComment {
                state = State::Code;
            }
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(if comment.is_empty() {
                None
            } else {
                Some(std::mem::take(&mut comment))
            });
            prev = None;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    code.push_str("  ");
                    state = State::LineComment;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    code.push_str("  ");
                    state = State::BlockComment(1);
                }
                '"' => {
                    // Raw / byte strings: the prefix chars were already
                    // emitted as code (harmless: `r` / `b` idents vanish
                    // into the preceding token or stand alone).
                    if prev == Some('r') || (prev == Some('b') && ends_with(&code, "br")) {
                        code.push(' ');
                        state = State::RawStr(0);
                    } else {
                        code.push(' ');
                        state = State::Str;
                    }
                }
                '#' if prev == Some('r') || prev == Some('#') => {
                    // Possible raw-string guard `r#"` / `r##"`; count the
                    // hashes only when a quote follows.
                    let mut hashes = 1;
                    while chars.peek() == Some(&'#') {
                        chars.next();
                        hashes += 1;
                        code.push(' ');
                    }
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        code.push(' ');
                        code.push(' ');
                        state = State::RawStr(hashes);
                    } else {
                        // Not a raw string (e.g. `r#keyword`); keep the '#'.
                        code.push('#');
                    }
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let mut look = chars.clone();
                    let is_char = match look.next() {
                        Some('\\') => true,
                        Some(_) => look.next() == Some('\''),
                        None => false,
                    };
                    if is_char {
                        code.push(' ');
                        state = State::Char;
                    } else {
                        code.push(' '); // lifetimes carry no rule signal
                    }
                }
                _ => code.push(c),
            },
            State::LineComment => {
                code.push(' ');
                comment.push(c);
            }
            State::BlockComment(depth) => {
                code.push(' ');
                if c == '/' && chars.peek() == Some(&'*') {
                    chars.next();
                    code.push(' ');
                    state = State::BlockComment(depth + 1);
                } else if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    code.push(' ');
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                }
            }
            State::Str => {
                code.push(' ');
                if c == '\\' {
                    if chars.next().is_some() {
                        code.push(' ');
                    }
                } else if c == '"' {
                    state = State::Code;
                }
            }
            State::RawStr(hashes) => {
                code.push(' ');
                if c == '"' {
                    let mut look = chars.clone();
                    let mut seen = 0;
                    while seen < hashes && look.peek() == Some(&'#') {
                        look.next();
                        seen += 1;
                    }
                    if seen == hashes {
                        for _ in 0..hashes {
                            chars.next();
                            code.push(' ');
                        }
                        state = State::Code;
                    }
                }
            }
            State::Char => {
                code.push(' ');
                if c == '\\' {
                    if chars.next().is_some() {
                        code.push(' ');
                    }
                } else if c == '\'' {
                    state = State::Code;
                }
            }
        }
        prev = Some(c);
    }
    code_lines.push(code);
    comment_lines.push(if comment.is_empty() { None } else { Some(comment) });
    MaskedSource { code_lines, comment_lines }
}

fn ends_with(code: &str, suffix: &str) -> bool {
    code.trim_end_matches(' ').ends_with(suffix)
}

/// One lexical token of the masked source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal (`None` when it overflows or is a float).
    Int(Option<u64>),
    /// An operator or punctuation (multi-char comparison/path operators
    /// are fused: `>=`, `<=`, `==`, `!=`, `::`, `->`, `=>`, `..`).
    Punct(String),
}

/// A token plus its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (character offset).
    pub col: usize,
}

impl Token {
    /// Whether the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == name)
    }

    /// Whether the token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(s) if s == p)
    }

    /// Whether the token is the integer literal `v`.
    pub fn is_int(&self, v: u64) -> bool {
        matches!(&self.tok, Tok::Int(Some(x)) if *x == v)
    }
}

/// Tokenizes masked source lines into a flat stream.
pub fn tokenize(code_lines: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (lineno, line) in code_lines.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let col = i + 1;
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                out.push(Token { tok: Tok::Ident(ident), line: lineno + 1, col });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let mut float = false;
                // A fractional part glues on only when a digit follows the
                // dot (`1.5`), not for ranges (`0..4`) or calls (`2.pow`).
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    float = true;
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                let raw: String = chars[start..i].iter().collect();
                let value = if float { None } else { parse_int(&raw) };
                out.push(Token { tok: Tok::Int(value), line: lineno + 1, col });
            } else {
                let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
                let fused = matches!(
                    two.as_str(),
                    ">=" | "<="
                        | "=="
                        | "!="
                        | "::"
                        | "->"
                        | "=>"
                        | ".."
                        | "&&"
                        | "||"
                        | "<<"
                        | ">>"
                );
                if fused {
                    out.push(Token { tok: Tok::Punct(two), line: lineno + 1, col });
                    i += 2;
                } else {
                    out.push(Token { tok: Tok::Punct(c.to_string()), line: lineno + 1, col });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Parses a decimal/hex/octal/binary integer literal with optional
/// underscores and type suffix.
fn parse_int(raw: &str) -> Option<u64> {
    let cleaned: String = raw.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(hex) = cleaned.strip_prefix("0x") {
        (hex.to_string(), 16)
    } else if let Some(oct) = cleaned.strip_prefix("0o") {
        (oct.to_string(), 8)
    } else if let Some(bin) = cleaned.strip_prefix("0b") {
        (bin.to_string(), 2)
    } else {
        (cleaned, 10)
    };
    // Strip a type suffix (`1u64`, `2usize`, `3i32`).
    let end = digits.find(|c: char| !c.is_digit(radix)).unwrap_or(digits.len());
    u64::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let src = "let a = \"2 * f + 1\"; // 2 * f + 1\nlet b = 1;";
        let m = mask_source(src);
        assert!(!m.code_lines[0].contains('f'));
        assert_eq!(m.comment_lines[0].as_deref(), Some(" 2 * f + 1"));
        assert_eq!(m.code_lines[1], "let b = 1;");
    }

    #[test]
    fn masks_nested_block_comments_and_chars() {
        let src = "a /* x /* y */ z */ b '\\n' 'q' c";
        let m = mask_source(src);
        let code = &m.code_lines[0];
        assert!(code.contains('a') && code.contains('b') && code.contains('c'));
        assert!(!code.contains('x') && !code.contains('z') && !code.contains('q'));
    }

    #[test]
    fn lifetimes_survive_char_masking() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let m = mask_source(src);
        assert!(m.code_lines[0].contains("str"));
    }

    #[test]
    fn raw_strings_masked() {
        let src = "let s = r#\"unwrap() 2 * f + 1\"#; s.len()";
        let m = mask_source(src);
        assert!(!m.code_lines[0].contains("unwrap"));
        assert!(m.code_lines[0].contains("len"));
    }

    #[test]
    fn tokenizes_with_positions_and_fused_ops() {
        let toks = tokenize(&["x >= 2 * f + 1".to_string()]);
        assert!(toks[0].is_ident("x"));
        assert!(toks[1].is_punct(">="));
        assert!(toks[2].is_int(2));
        assert!(toks[4].is_ident("f"));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
    }

    #[test]
    fn integer_literal_forms() {
        let toks = tokenize(&["10_000 0x10 2usize 1.5".to_string()]);
        assert!(toks[0].is_int(10_000));
        assert!(toks[1].is_int(16));
        assert!(toks[2].is_int(2));
        assert_eq!(toks[3].tok, Tok::Int(None)); // float: no integer value
    }
}
