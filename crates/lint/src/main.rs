//! `bft-lint` command-line driver.
//!
//! ```text
//! bft-lint [--root <dir>] [--format text|json] [--baseline <file>]
//!          [--write-baseline] [--out <file>] [--family core|W1|W2|W3|W4]
//! ```
//!
//! Exit codes: `0` clean (or all findings baselined), `1` new findings,
//! `2` usage or I/O error.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    out: Option<PathBuf>,
    family: Option<String>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

const USAGE: &str = "usage: bft-lint [--root <dir>] [--format text|json] \
                     [--baseline <file>] [--write-baseline] [--out <file>] \
                     [--family core|W1|W2|W3|W4]";

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace this binary was built from.
    let mut args = Args {
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        format: Format::Text,
        baseline: None,
        write_baseline: false,
        out: None,
        family: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value\n{USAGE}"));
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`\n{USAGE}")),
                }
            }
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => args.write_baseline = true,
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--family" => {
                let fam = value("--family")?;
                if !bft_lint::rules::Rule::ALL.iter().any(|r| r.family() == fam) {
                    return Err(format!("unknown rule family `{fam}`\n{USAGE}"));
                }
                args.family = Some(fam);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut report = match bft_lint::analyze_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bft-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(fam) = &args.family {
        report.findings.retain(|f| f.rule.family() == fam);
    }

    let baseline_path = args.baseline.clone().unwrap_or_else(|| args.root.join("lint.baseline"));

    if args.write_baseline {
        let text = bft_lint::render_baseline(&report);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("bft-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "bft-lint: wrote {} ({} finding(s) baselined)",
            baseline_path.display(),
            report.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => bft_lint::parse_baseline(&text),
        // No baseline file means an empty baseline, unless one was
        // explicitly requested.
        Err(_) if args.baseline.is_none() => BTreeSet::new(),
        Err(e) => {
            eprintln!("bft-lint: reading {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let rendered = match args.format {
        Format::Text => bft_lint::render_text(&report, &baseline),
        Format::Json => bft_lint::render_json(&report, &baseline),
    };
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, &rendered) {
            eprintln!("bft-lint: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
    } else {
        // Ignore write errors (e.g. a closed pipe from `| head`): the
        // exit code below is the tool's contract, not the stream.
        use std::io::Write;
        let mut stdout = std::io::stdout();
        let _ = write!(stdout, "{rendered}");
        if args.format == Format::Json {
            let _ = writeln!(stdout);
        }
    }

    let (new, _) = report.split_by_baseline(&baseline);
    if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
