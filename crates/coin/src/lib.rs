//! Coin-flip schemes for randomized asynchronous Byzantine agreement.
//!
//! FLP rules out deterministic asynchronous consensus; Bracha's protocol
//! (like Ben-Or's) escapes it by letting undecided processes adopt a
//! random value. The *source* of that randomness determines the expected
//! round count:
//!
//! * [`LocalCoin`] — each node flips privately (the scheme of the 1984
//!   paper). Termination has probability 1, but the adversary can keep
//!   correct nodes split, so the expected number of rounds grows
//!   exponentially with the number of flipping nodes in the worst case.
//! * [`CommonCoin`] — all correct nodes observe the *same* unpredictable
//!   flip per round. The paper attributes this model to Rabin's trusted
//!   dealer; modern systems (HoneyBadgerBFT and its descendants) realise
//!   it with threshold signatures. With a common coin the expected number
//!   of rounds is constant. We model the dealer with a keyed PRF over
//!   `(instance, round)` — same interface, same unpredictability-to-the-
//!   protocol property, no crypto (documented substitution, DESIGN.md).
//! * [`FixedCoin`] and [`CyclingCoin`] — deterministic test doubles used to
//!   drive protocols into specific executions and for adversarial
//!   worst-case experiments.
//!
//! All schemes implement [`CoinScheme`], which protocols consume via
//! dependency injection so that the state machines themselves stay
//! deterministic and reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bft_types::{NodeId, Value};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A source of coin flips for a randomized agreement protocol.
///
/// `flip(round)` is called by a node when the protocol reaches its coin
/// step in `round`. Whether different nodes see the same flip is the
/// defining property of the scheme (local vs common).
pub trait CoinScheme {
    /// Returns the coin value for `round` at this node.
    fn flip(&mut self, round: u64) -> Value;

    /// A short label for experiment reports (e.g. `"local"`).
    fn name(&self) -> &'static str;
}

/// A boxed coin scheme, for heterogeneous harness code.
pub type BoxedCoin = Box<dyn CoinScheme + Send>;

impl CoinScheme for BoxedCoin {
    fn flip(&mut self, round: u64) -> Value {
        (**self).flip(round)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A private, per-node fair coin — the scheme of Bracha's 1984 protocol.
///
/// The flip is a keyed PRF over `(seed, node, instance, round)`, exactly
/// like [`CommonCoin`] but with the node id (and an instance number) mixed
/// into the key, so different nodes — and different concurrent agreement
/// instances at *one* node — draw independent streams. Keying by round
/// (rather than advancing a stateful RNG per call) makes the flip a pure
/// function of the round: replays that reach the coin step a different
/// number of times still agree per-round.
///
/// # Example
///
/// ```
/// use bft_coin::{CoinScheme, LocalCoin};
/// use bft_types::NodeId;
///
/// let mut a = LocalCoin::new(42, NodeId::new(0));
/// let mut b = LocalCoin::new(42, NodeId::new(0));
/// assert_eq!(a.flip(1), b.flip(1)); // same node, same seed → same stream
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LocalCoin {
    seed: u64,
    node: NodeId,
    instance: u64,
}

impl LocalCoin {
    /// Creates the local coin for `node` in a run seeded with `seed`
    /// (agreement instance 0).
    pub fn new(seed: u64, node: NodeId) -> Self {
        LocalCoin::for_instance(seed, node, 0)
    }

    /// Creates the local coin for agreement instance `instance` at `node`.
    ///
    /// Multi-instance protocols (one binary agreement per ACS slot, one
    /// ACS per epoch) must give each instance its own number, or every
    /// instance at the node would see the same flip in the same round.
    pub fn for_instance(seed: u64, node: NodeId, instance: u64) -> Self {
        LocalCoin { seed, node, instance }
    }
}

impl CoinScheme for LocalCoin {
    fn flip(&mut self, round: u64) -> Value {
        // Keyed PRF over (seed, node, instance, round): one ChaCha8 block,
        // one bit. See CommonCoin::flip for the dealer-model analogue.
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&self.seed.to_le_bytes());
        key[8..16].copy_from_slice(&(self.node.index() as u64).to_le_bytes());
        key[16..24].copy_from_slice(&self.instance.to_le_bytes());
        key[24..32].copy_from_slice(&round.to_le_bytes());
        let mut rng = ChaCha8Rng::from_seed(key);
        Value::from_bit((rng.next_u32() & 1) as u8)
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

/// A common coin in the trusted-dealer model: every node constructed with
/// the same `(seed, instance)` observes the same flip for the same round.
///
/// The flip is a keyed PRF over `(instance, round)`; protocol code cannot
/// predict it before asking (and the simulator's schedulers never ask), so
/// the adversary-unpredictability assumption of the dealer model holds for
/// every experiment in this workspace.
///
/// # Example
///
/// ```
/// use bft_coin::{CoinScheme, CommonCoin};
///
/// let mut a = CommonCoin::new(7, 0);
/// let mut b = CommonCoin::new(7, 0);
/// assert_eq!(a.flip(3), b.flip(3)); // same dealer → same coin at all nodes
/// ```
#[derive(Clone, Debug)]
pub struct CommonCoin {
    seed: u64,
    instance: u64,
}

impl CommonCoin {
    /// Creates the dealer coin for agreement instance `instance` in a run
    /// seeded with `seed`.
    pub const fn new(seed: u64, instance: u64) -> Self {
        CommonCoin { seed, instance }
    }
}

impl CoinScheme for CommonCoin {
    fn flip(&mut self, round: u64) -> Value {
        // Keyed PRF: seed the stream cipher with (seed, instance, round)
        // and take one bit. Deterministic across nodes, unpredictable to
        // protocol code that has not queried it.
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&self.seed.to_le_bytes());
        key[8..16].copy_from_slice(&self.instance.to_le_bytes());
        key[16..24].copy_from_slice(&round.to_le_bytes());
        let mut rng = ChaCha8Rng::from_seed(key);
        Value::from_bit((rng.next_u32() & 1) as u8)
    }

    fn name(&self) -> &'static str {
        "common"
    }
}

/// A coin that always lands on the same value. Test double: drives a
/// protocol into a chosen branch, and models the worst case where the
/// adversary fully controls local randomness.
#[derive(Clone, Copy, Debug)]
pub struct FixedCoin {
    value: Value,
}

impl FixedCoin {
    /// Creates a coin that always returns `value`.
    pub const fn new(value: Value) -> Self {
        FixedCoin { value }
    }
}

impl CoinScheme for FixedCoin {
    fn flip(&mut self, _round: u64) -> Value {
        self.value
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// A coin that alternates deterministically with the round number
/// (`round parity`). Test double for executions that need both branches.
#[derive(Clone, Copy, Debug, Default)]
pub struct CyclingCoin;

impl CoinScheme for CyclingCoin {
    fn flip(&mut self, round: u64) -> Value {
        Value::from_bit((round % 2) as u8)
    }

    fn name(&self) -> &'static str {
        "cycling"
    }
}

/// A biased local coin: returns [`Value::One`] with probability
/// `bias_num / bias_den`. Used by ablation experiments to show how coin
/// quality affects expected rounds.
#[derive(Clone, Debug)]
pub struct BiasedCoin {
    rng: ChaCha8Rng,
    bias_num: u32,
    bias_den: u32,
}

impl BiasedCoin {
    /// Creates a coin biased toward one with probability
    /// `bias_num / bias_den`.
    ///
    /// # Panics
    ///
    /// Panics if `bias_den` is zero or `bias_num > bias_den`.
    pub fn new(seed: u64, node: NodeId, bias_num: u32, bias_den: u32) -> Self {
        assert!(bias_den > 0, "bias denominator must be positive");
        assert!(bias_num <= bias_den, "bias must be at most one");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(0x8000_0000u64 + node.index() as u64);
        BiasedCoin { rng, bias_num, bias_den }
    }
}

impl CoinScheme for BiasedCoin {
    fn flip(&mut self, _round: u64) -> Value {
        Value::from_bool(self.rng.gen_ratio(self.bias_num, self.bias_den))
    }

    fn name(&self) -> &'static str {
        "biased"
    }
}

/// A wrapper that reports every flip of the inner scheme to an observer.
///
/// The Bracha engine observes its own coin natively; this wrapper is for
/// protocols (or harnesses) that take an opaque [`CoinScheme`] and should
/// still show up in the event stream.
#[derive(Clone, Debug)]
pub struct ObservedCoin<C> {
    inner: C,
    node: NodeId,
    obs: bft_obs::Obs,
}

impl<C: CoinScheme> ObservedCoin<C> {
    /// Wraps `inner`, attributing flips to `node` on the event stream.
    pub fn new(inner: C, node: NodeId, obs: bft_obs::Obs) -> Self {
        ObservedCoin { inner, node, obs }
    }

    /// Consumes the wrapper, returning the inner scheme.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: CoinScheme> CoinScheme for ObservedCoin<C> {
    fn flip(&mut self, round: u64) -> Value {
        let value = self.inner.flip(round);
        let scheme = self.inner.name();
        self.obs.emit(self.node, || bft_obs::Event::CoinFlipped { round, value, scheme });
        value
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_coin_reports_flips() {
        let (obs, sink) = bft_obs::Obs::new(bft_obs::VecSink::new());
        let mut c = ObservedCoin::new(FixedCoin::new(Value::One), NodeId::new(2), obs);
        assert_eq!(c.flip(7), Value::One);
        assert_eq!(c.name(), "fixed");
        let events = sink.lock().take();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].2,
            bft_obs::Event::CoinFlipped { round: 7, value: Value::One, scheme: "fixed" }
        );
    }

    #[test]
    fn local_coins_differ_across_nodes() {
        let mut a = LocalCoin::new(1, NodeId::new(0));
        let mut b = LocalCoin::new(1, NodeId::new(1));
        let fa: Vec<Value> = (0..64).map(|r| a.flip(r)).collect();
        let fb: Vec<Value> = (0..64).map(|r| b.flip(r)).collect();
        assert_ne!(fa, fb, "independent nodes must have independent streams");
    }

    #[test]
    fn local_coin_is_roughly_fair() {
        let mut c = LocalCoin::new(99, NodeId::new(3));
        let ones: usize = (0..10_000).map(|r| c.flip(r).index()).sum();
        assert!((4_000..=6_000).contains(&ones), "got {ones} ones out of 10000");
    }

    #[test]
    fn local_coin_instances_at_one_node_flip_independently() {
        // Regression: LocalCoin used to ignore both its round argument and
        // any instance dimension, so two concurrent agreement instances at
        // one node drew identical streams.
        let mut a = LocalCoin::for_instance(7, NodeId::new(2), 0);
        let mut b = LocalCoin::for_instance(7, NodeId::new(2), 1);
        let fa: Vec<Value> = (0..64).map(|r| a.flip(r)).collect();
        let fb: Vec<Value> = (0..64).map(|r| b.flip(r)).collect();
        assert_ne!(fa, fb, "instances at one node must have independent streams");
    }

    #[test]
    fn local_coin_replays_agree_per_round() {
        // Regression: the flip used to advance a stateful RNG per call, so
        // replays that reached the coin step a different number of times
        // diverged. The flip must be a pure function of the round.
        let mut warm = LocalCoin::new(13, NodeId::new(1));
        for r in 0..100 {
            let _ = warm.flip(r); // burn 100 calls in a different order
        }
        let mut fresh = LocalCoin::new(13, NodeId::new(1));
        for r in (0..50).rev() {
            assert_eq!(warm.flip(r), fresh.flip(r), "round {r} flip is call-order-dependent");
        }
    }

    #[test]
    fn common_coin_agrees_across_nodes_and_rounds() {
        for round in 1..50 {
            let mut a = CommonCoin::new(5, 2);
            let mut b = CommonCoin::new(5, 2);
            assert_eq!(a.flip(round), b.flip(round));
        }
    }

    #[test]
    fn common_coin_varies_with_round_instance_and_seed() {
        let mut c = CommonCoin::new(5, 2);
        let flips: Vec<Value> = (1..200).map(|r| c.flip(r)).collect();
        let ones = flips.iter().filter(|v| **v == Value::One).count();
        assert!((40..160).contains(&ones), "coin should vary: {ones} ones");

        let mut c1 = CommonCoin::new(5, 3);
        let mut c2 = CommonCoin::new(6, 2);
        let alt1: Vec<Value> = (1..200).map(|r| c1.flip(r)).collect();
        let alt2: Vec<Value> = (1..200).map(|r| c2.flip(r)).collect();
        assert_ne!(flips, alt1, "instance must matter");
        assert_ne!(flips, alt2, "seed must matter");
    }

    #[test]
    fn fixed_and_cycling_are_deterministic() {
        let mut f = FixedCoin::new(Value::One);
        assert_eq!(f.flip(1), Value::One);
        assert_eq!(f.flip(2), Value::One);
        let mut cy = CyclingCoin;
        assert_eq!(cy.flip(2), Value::Zero);
        assert_eq!(cy.flip(3), Value::One);
    }

    #[test]
    fn biased_coin_respects_bias() {
        let mut c = BiasedCoin::new(4, NodeId::new(0), 9, 10);
        let ones: usize = (0..10_000).map(|r| c.flip(r).index()).sum();
        assert!(ones > 8_500, "expected ~9000 ones, got {ones}");
        let mut c = BiasedCoin::new(4, NodeId::new(0), 0, 10);
        assert!((0..100).all(|r| c.flip(r) == Value::Zero));
    }

    #[test]
    #[should_panic(expected = "bias must be at most one")]
    fn biased_coin_rejects_bias_above_one() {
        let _ = BiasedCoin::new(0, NodeId::new(0), 11, 10);
    }

    #[test]
    fn boxed_coin_dispatches() {
        let mut c: BoxedCoin = Box::new(FixedCoin::new(Value::Zero));
        assert_eq!(c.flip(9), Value::Zero);
        assert_eq!(c.name(), "fixed");
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            LocalCoin::new(0, NodeId::new(0)).name(),
            CommonCoin::new(0, 0).name(),
            FixedCoin::new(Value::Zero).name(),
            CyclingCoin.name(),
            BiasedCoin::new(0, NodeId::new(0), 1, 2).name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
