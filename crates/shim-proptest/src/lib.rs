//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `boxed`, range and tuple
//! strategies, [`collection::vec`], [`bool::ANY`], `Just`, `prop_oneof!`,
//! the `proptest!` macro with `#![proptest_config(...)]` headers, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a fixed deterministic seed (so test runs are reproducible
//! without regression files), and there is no shrinking — a failing case
//! panics with the drawn values in the assertion message instead.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SeedableRng, Xoshiro256};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The deterministic source of test inputs.
pub struct TestRng(Xoshiro256);

impl TestRng {
    /// Creates the canonical deterministic generator for one test.
    pub fn deterministic(salt: u64) -> Self {
        TestRng(Xoshiro256::seed_from_u64(0x70726f70 ^ salt))
    }

    /// Draws 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Draws one value uniformly from a half-open u64 range.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.0.gen_range(0..bound.max(1))
    }

    /// Draws one f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.0.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy(Rc::new(move |rng| inner.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() % span.max(1)) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Draws `true` and `false` with equal probability.
    pub const ANY: Any = Any;
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: an exact length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// A strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// A uniform choice among boxed alternatives — the engine behind
/// `prop_oneof!`.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "empty prop_oneof");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// Run-count configuration for `proptest!` blocks.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; unused (no persistence here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Outcome of a single generated case: `Continue` keeps iterating,
/// `Reject` (from `prop_assume!`) discards the case without counting it
/// as a failure.
pub enum CaseResult {
    /// The case ran to completion.
    Continue,
    /// The case was rejected by `prop_assume!`.
    Reject,
}

/// The commonly used names, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::CaseResult::Reject;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` random inputs and runs the body
/// on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut salt: u64 = 0;
                for b in stringify!($name).bytes() {
                    salt = salt.wrapping_mul(31).wrapping_add(b as u64);
                }
                let mut rng = $crate::TestRng::deterministic(salt);
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(20).max(1024),
                        "too many prop_assume rejections in {}",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)*
                    // Whether the closure needs `mut` depends on `$body`.
                    #[allow(unused_mut)]
                    let mut case = || -> $crate::CaseResult {
                        $body
                        #[allow(unreachable_code)]
                        $crate::CaseResult::Continue
                    };
                    match case() {
                        $crate::CaseResult::Continue => ran += 1,
                        $crate::CaseResult::Reject => {}
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 1u64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn maps_and_oneof_compose(
            e in arb_even(),
            pick in prop_oneof![Just(1u8), Just(2u8), 5u8..7],
            v in crate::collection::vec((0usize..3, crate::bool::ANY), 0..5),
            b in crate::bool::ANY,
        ) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pick == 1 || pick == 2 || (5..7).contains(&pick));
            prop_assert!(v.len() < 5);
            prop_assume!(usize::from(b) < 2);
        }

        #[test]
        fn exact_size_vec(v in crate::collection::vec(0u8..3, 3)) {
            prop_assert_eq!(v.len(), 3);
        }
    }

    #[test]
    fn assume_rejects_without_failing() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u32..10) {
                prop_assume!(x < 5);
                prop_assert!(x < 5);
            }
        }
        inner();
    }
}
