//! Protocol-level observability for the `async-bft` workspace.
//!
//! Every host (the deterministic simulator, the thread runtime) and every
//! protocol state machine (reliable broadcast, Bracha consensus, the
//! baselines) can carry an [`Obs`] handle and emit structured [`Event`]s
//! through it. The handle is **zero-cost when disabled**: a disabled
//! handle is a `None`, `emit` takes the event as a closure, and the
//! closure is never run — no formatting, no allocation, no locking.
//!
//! Enabled handles deliver events to a [`Sink`]. Ready-made sinks:
//!
//! * [`VecSink`] — records every event in order (tests, debugging).
//! * [`MetricsSink`] — aggregates per-round / per-phase latency and
//!   message-count statistics using `bft-stats`.
//! * [`JsonlSink`] — streams one JSON object per event to any
//!   `io::Write` (the machine-readable trace export).
//! * [`InvariantSink`] — checks agreement / validity / equivocation
//!   online while the run executes.
//!
//! Sinks compose with [`Tee`]. The host stamps event time into the
//! handle's shared clock ([`Obs::set_now`]); protocol code never needs a
//! clock of its own.
//!
//! # Example
//!
//! ```
//! use bft_obs::{Event, Obs, VecSink};
//! use bft_types::{NodeId, Value};
//!
//! let (obs, sink) = Obs::new(VecSink::new());
//! obs.set_now(7);
//! obs.emit(NodeId::new(0), || Event::Decided { round: 1, value: Value::One });
//!
//! let events = sink.lock().take();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].0, 7); // the stamped time
//!
//! // A disabled handle never evaluates the closure:
//! let off = Obs::disabled();
//! off.emit(NodeId::new(0), || unreachable!("disabled handles skip the closure"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod invariant;
pub mod json;
mod jsonl;
mod metrics_sink;
mod sinks;
pub mod trace;

pub use event::{Event, RbcPhase};
pub use invariant::InvariantSink;
pub use jsonl::JsonlSink;
pub use metrics_sink::MetricsSink;
pub use sinks::{Tee, VecSink};
pub use trace::{span_id, SpanRecord, TraceAssembler, TraceCtx, TracePhase, TraceSink};

use bft_types::NodeId;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A consumer of observability events.
///
/// `at` is the host's timestamp (simulated ticks under `bft-sim`,
/// microseconds since run start under `bft-runtime`); `node` is the node
/// at which the event was observed.
pub trait Sink {
    /// Consumes one event.
    fn on_event(&mut self, at: u64, node: NodeId, event: &Event);
}

/// A sink shared between an [`Obs`] handle and the host that wants to
/// read the sink's state after (or during) the run.
pub struct SharedSink<S: ?Sized>(Arc<Mutex<S>>);

impl<S> SharedSink<S> {
    /// Wraps a sink for sharing.
    pub fn new(sink: S) -> Self {
        SharedSink(Arc::new(Mutex::new(sink)))
    }

    /// Locks the sink for inspection.
    ///
    /// Do not hold the guard across calls into observed code — the
    /// emitting side takes the same lock.
    pub fn lock(&self) -> MutexGuard<'_, S> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Recovers the sink, if this is the last handle to it.
    pub fn try_into_inner(self) -> Option<S> {
        Arc::try_unwrap(self.0).ok().map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
    }
}

impl<S: ?Sized> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink(Arc::clone(&self.0))
    }
}

impl<S: ?Sized> fmt::Debug for SharedSink<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SharedSink(..)")
    }
}

struct ObsInner {
    clock: AtomicU64,
    sink: Arc<Mutex<dyn Sink + Send>>,
}

/// A cloneable observer handle carried by hosts and protocol state
/// machines.
///
/// Disabled (the default) it is a single `None` check per emission site;
/// enabled it stamps the shared clock's current time on every event and
/// forwards it to the sink. Clones share the sink and the clock.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
    spans_off: bool,
}

impl Obs {
    /// The disabled handle: every `emit` is a no-op and the event closure
    /// is never evaluated.
    pub fn disabled() -> Self {
        Obs { inner: None, spans_off: false }
    }

    /// Creates an enabled handle feeding `sink`, returning the handle and
    /// a [`SharedSink`] through which the host can read the sink back.
    pub fn new<S: Sink + Send + 'static>(sink: S) -> (Self, SharedSink<S>) {
        let shared = SharedSink::new(sink);
        (Self::to(&shared), shared)
    }

    /// Creates an enabled handle feeding an existing shared sink.
    pub fn to<S: Sink + Send + 'static>(shared: &SharedSink<S>) -> Self {
        let sink: Arc<Mutex<dyn Sink + Send>> = Arc::clone(&shared.0) as _;
        Obs { inner: Some(Arc::new(ObsInner { clock: AtomicU64::new(0), sink })), spans_off: false }
    }

    /// A clone of this handle that forwards events but silently drops
    /// trace spans (`SpanStart` / `SpanEnd`).
    ///
    /// Span ids are pure functions of `(trace, node, phase)`, so a
    /// restarted node's spans would collide with the ones its pre-crash
    /// incarnation already emitted; recovering replacements observe
    /// events only.
    pub fn sans_spans(&self) -> Self {
        Obs { inner: self.inner.clone(), spans_off: true }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether trace spans are being recorded (enabled and not
    /// span-suppressed via [`Obs::sans_spans`]).
    pub fn spans_enabled(&self) -> bool {
        self.inner.is_some() && !self.spans_off
    }

    /// Sets the shared clock (hosts call this as their time advances).
    pub fn set_now(&self, now: u64) {
        if let Some(inner) = &self.inner {
            inner.clock.store(now, Ordering::Relaxed);
        }
    }

    /// The current value of the shared clock (0 when disabled).
    pub fn now(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.clock.load(Ordering::Relaxed))
    }

    /// Emits one event observed at `node`.
    ///
    /// The closure is evaluated only when the handle is enabled, so
    /// emission sites may format labels or clone payloads inside it
    /// without cost on the disabled path.
    pub fn emit(&self, node: NodeId, event: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            let at = inner.clock.load(Ordering::Relaxed);
            let event = event();
            let mut sink = inner.sink.lock().unwrap_or_else(|p| p.into_inner());
            sink.on_event(at, node, &event);
        }
    }

    /// Emits one event observed at `node` with an explicit timestamp,
    /// bypassing the shared clock.
    ///
    /// Two users: hosts whose emission sites run on threads the shared
    /// clock is not refreshed from (the TCP runtime's reader/writer
    /// threads stamp `Clock::now_us()` at emit time), and retroactive
    /// emissions whose logical time predates the current clock (opening
    /// a trace span once its outcome is known).
    pub fn emit_at(&self, at: u64, node: NodeId, event: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            let event = event();
            let mut sink = inner.sink.lock().unwrap_or_else(|p| p.into_inner());
            sink.on_event(at, node, &event);
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Obs({})", if self.enabled() { "enabled" } else { "disabled" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_types::Value;

    #[test]
    fn disabled_handle_skips_closure() {
        let obs = Obs::disabled();
        let mut ran = false;
        obs.emit(NodeId::new(0), || {
            ran = true;
            Event::NodeHalted
        });
        assert!(!ran);
        assert!(!obs.enabled());
        assert_eq!(obs.now(), 0);
    }

    #[test]
    fn enabled_handle_stamps_time_and_records() {
        let (obs, sink) = Obs::new(VecSink::new());
        assert!(obs.enabled());
        obs.set_now(5);
        obs.emit(NodeId::new(1), || Event::RoundStarted { round: 1 });
        obs.set_now(9);
        obs.emit(NodeId::new(2), || Event::Decided { round: 1, value: Value::One });
        let events = sink.lock().take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], (5, NodeId::new(1), Event::RoundStarted { round: 1 }));
        assert_eq!(events[1], (9, NodeId::new(2), Event::Decided { round: 1, value: Value::One }));
    }

    #[test]
    fn emit_at_bypasses_shared_clock() {
        let (obs, sink) = Obs::new(VecSink::new());
        obs.set_now(100);
        obs.emit_at(7, NodeId::new(1), || Event::NodeHalted);
        let events = sink.lock().take();
        assert_eq!(events, vec![(7, NodeId::new(1), Event::NodeHalted)]);
        assert_eq!(obs.now(), 100, "the shared clock is untouched");
    }

    #[test]
    fn clones_share_sink_and_clock() {
        let (obs, sink) = Obs::new(VecSink::new());
        let clone = obs.clone();
        obs.set_now(3);
        clone.emit(NodeId::new(0), || Event::NodeHalted);
        assert_eq!(clone.now(), 3);
        assert_eq!(sink.lock().events().len(), 1);
        assert_eq!(sink.lock().events()[0].0, 3);
    }
}
