//! Per-round / per-phase metrics aggregation.

use crate::json::JsonValue;
use crate::{Event, Sink};
use bft_stats::{Histogram, Samples};
use bft_types::{NodeId, Step};
use std::collections::BTreeMap;

/// Aggregates a run's event stream into per-round and per-phase
/// statistics, built on `bft-stats`.
///
/// Tracked:
///
/// * decision latency ([`Samples`] of `Decided` timestamps) and decision
///   rounds ([`Histogram`]);
/// * per-round latency — for each round number, [`Samples`] of
///   `RoundCompleted − RoundStarted` (or `Decided − RoundStarted`)
///   across nodes;
/// * message counts and bytes by classifier kind, plus delivered /
///   dropped totals;
/// * validated-message counts per step, rejection count, quorum count,
///   coin flips, value locks;
/// * maximum observed queue depth.
#[derive(Debug, Default)]
pub struct MetricsSink {
    decide_times: Samples,
    decide_rounds: Histogram,
    round_latency: BTreeMap<u64, Samples>,
    open_rounds: BTreeMap<(NodeId, u64), u64>,
    msgs_by_kind: BTreeMap<&'static str, (u64, u64)>,
    delivered: u64,
    dropped: u64,
    validated_by_step: [u64; 3],
    rejected: u64,
    quorums: u64,
    coin_flips: u64,
    locks: u64,
    max_queue_depth: u64,
    events_total: u64,
    peer_connects: u64,
    peer_disconnects: u64,
    peer_reconnects: u64,
    backoff_retries: u64,
    frame_decode_errors: u64,
    frame_sequence_gaps: u64,
    payloads_rejected: u64,
    peak_link_log: u64,
    chaos_frames_dropped: u64,
    epochs_started: u64,
    epochs_committed: u64,
    batches_submitted: u64,
    txs_submitted: u64,
    txs_delivered: u64,
    rbc_fragments_ok: u64,
    rbc_fragments_rejected: u64,
    rbc_reconstructions: u64,
    rbc_reconstruct_bytes: u64,
    epoch_commit_latency: Samples,
    open_epochs: BTreeMap<(NodeId, u64), u64>,
    inflight_epochs: BTreeMap<NodeId, u64>,
    occupancy: Samples,
    max_pipeline_occupancy: u64,
    slots_applied: u64,
    applied_bytes: u64,
    checkpoints_proposed: u64,
    checkpoints_certified: u64,
    checkpoint_latency: Samples,
    open_checkpoints: BTreeMap<(NodeId, u64), u64>,
    state_transfers_started: u64,
    state_transfers_completed: u64,
    state_transfer_bytes: u64,
    poison_detections: u64,
    gateway_accepted: u64,
    gateway_nacked: u64,
    gateway_committed: u64,
}

impl MetricsSink {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decision timestamps, one sample per decided node.
    pub fn decide_times(&self) -> &Samples {
        &self.decide_times
    }

    /// Decision rounds across nodes.
    pub fn decide_rounds(&self) -> &Histogram {
        &self.decide_rounds
    }

    /// Per-round latency samples (round number → durations across nodes).
    pub fn round_latency(&self) -> &BTreeMap<u64, Samples> {
        &self.round_latency
    }

    /// Message count and byte totals keyed by classifier kind.
    pub fn msgs_by_kind(&self) -> &BTreeMap<&'static str, (u64, u64)> {
        &self.msgs_by_kind
    }

    /// Messages delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped (halted destinations).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Validated-message counts indexed by [`Step::index`].
    pub fn validated_by_step(&self) -> [u64; 3] {
        self.validated_by_step
    }

    /// Payloads rejected before validation.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Step quorums observed.
    pub fn quorums(&self) -> u64 {
        self.quorums
    }

    /// Coin flips observed.
    pub fn coin_flips(&self) -> u64 {
        self.coin_flips
    }

    /// Value locks observed.
    pub fn locks(&self) -> u64 {
        self.locks
    }

    /// Highest queue-depth sample seen.
    pub fn max_queue_depth(&self) -> u64 {
        self.max_queue_depth
    }

    /// Total events consumed.
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    /// First-time transport connections authenticated (net runtime).
    pub fn peer_connects(&self) -> u64 {
        self.peer_connects
    }

    /// Transport connections lost (closed, write failure, decode drop).
    pub fn peer_disconnects(&self) -> u64 {
        self.peer_disconnects
    }

    /// Links re-established after a disconnect.
    pub fn peer_reconnects(&self) -> u64 {
        self.peer_reconnects
    }

    /// Failed dial attempts that entered a backoff wait.
    pub fn backoff_retries(&self) -> u64 {
        self.backoff_retries
    }

    /// Inbound frames rejected by the strict decoder.
    pub fn frame_decode_errors(&self) -> u64 {
        self.frame_decode_errors
    }

    /// Inbound frames that skipped ahead of the expected sequence number
    /// (transport-ordering faults; the connection is dropped and replayed).
    pub fn frame_sequence_gaps(&self) -> u64 {
        self.frame_sequence_gaps
    }

    /// Outbound bodies rejected at the send boundary for exceeding the
    /// frame cap.
    pub fn payloads_rejected(&self) -> u64 {
        self.payloads_rejected
    }

    /// High-water mark of any directed link's replay log, in frames.
    pub fn peak_link_log(&self) -> u64 {
        self.peak_link_log
    }

    /// Outbound frame transmissions dropped by the chaos layer.
    pub fn chaos_frames_dropped(&self) -> u64 {
        self.chaos_frames_dropped
    }

    /// Ordering epochs opened across nodes.
    pub fn epochs_started(&self) -> u64 {
        self.epochs_started
    }

    /// Ordering epochs whose ACS decided across nodes.
    pub fn epochs_committed(&self) -> u64 {
        self.epochs_committed
    }

    /// Own batches proposed into epochs across nodes.
    pub fn batches_submitted(&self) -> u64 {
        self.batches_submitted
    }

    /// Transactions carried by submitted batches across nodes.
    pub fn txs_submitted(&self) -> u64 {
        self.txs_submitted
    }

    /// Transactions appended to totally-ordered logs across nodes.
    pub fn txs_delivered(&self) -> u64 {
        self.txs_delivered
    }

    /// Erasure-coded fragments that passed commitment verification.
    pub fn rbc_fragments_ok(&self) -> u64 {
        self.rbc_fragments_ok
    }

    /// Erasure-coded fragments rejected (bad proof, wrong index, dup).
    pub fn rbc_fragments_rejected(&self) -> u64 {
        self.rbc_fragments_rejected
    }

    /// Payload reconstructions attempted by the coded broadcast.
    pub fn rbc_reconstructions(&self) -> u64 {
        self.rbc_reconstructions
    }

    /// Bytes recovered by successful reconstructions.
    pub fn rbc_reconstruct_bytes(&self) -> u64 {
        self.rbc_reconstruct_bytes
    }

    /// `EpochCommitted − EpochStarted` durations, one sample per
    /// `(node, epoch)` pair that committed.
    pub fn epoch_commit_latency(&self) -> &Samples {
        &self.epoch_commit_latency
    }

    /// Pipeline occupancy samples (in-flight epochs at each epoch start).
    pub fn pipeline_occupancy(&self) -> &Samples {
        &self.occupancy
    }

    /// Highest number of concurrently in-flight epochs seen at one node.
    pub fn max_pipeline_occupancy(&self) -> u64 {
        self.max_pipeline_occupancy
    }

    /// Log slots applied by replicated state machines across nodes.
    pub fn slots_applied(&self) -> u64 {
        self.slots_applied
    }

    /// Payload bytes of applied slots across nodes.
    pub fn applied_bytes(&self) -> u64 {
        self.applied_bytes
    }

    /// Checkpoint state hashes proposed (RBC-broadcast) across nodes.
    pub fn checkpoints_proposed(&self) -> u64 {
        self.checkpoints_proposed
    }

    /// Checkpoint certificates collected (`2f + 1` matching hashes)
    /// across nodes.
    pub fn checkpoints_certified(&self) -> u64 {
        self.checkpoints_certified
    }

    /// `CheckpointCertified − CheckpointProposed` durations, one sample
    /// per `(node, epoch)` pair that certified.
    pub fn checkpoint_latency(&self) -> &Samples {
        &self.checkpoint_latency
    }

    /// Peer state transfers initiated (catch-up fetches) across nodes.
    pub fn state_transfers_started(&self) -> u64 {
        self.state_transfers_started
    }

    /// Peer state transfers that reconstructed, verified and installed a
    /// snapshot.
    pub fn state_transfers_completed(&self) -> u64 {
        self.state_transfers_completed
    }

    /// Snapshot bytes installed by completed state transfers.
    pub fn state_transfer_bytes(&self) -> u64 {
        self.state_transfer_bytes
    }

    /// Transport worker panics detected by the runtime's supervision
    /// (each also sets `RuntimeReport::poisoned`).
    pub fn poison_detections(&self) -> u64 {
        self.poison_detections
    }

    /// Client submissions the gateway accepted into mempools.
    pub fn gateway_accepted(&self) -> u64 {
        self.gateway_accepted
    }

    /// Client submissions the gateway rejected with a typed NACK.
    pub fn gateway_nacked(&self) -> u64 {
        self.gateway_nacked
    }

    /// Gateway-accepted transactions that committed and were acked.
    pub fn gateway_committed(&self) -> u64 {
        self.gateway_committed
    }

    /// Folds another aggregate into this one.
    ///
    /// This is the deterministic multi-run combiner behind the parallel
    /// experiment driver: each run (seed) feeds its own `MetricsSink`, and
    /// the per-run sinks are merged **in a pinned order** (ascending seed)
    /// so the result is independent of how the runs were scheduled across
    /// worker threads. Sample sequences are appended in merge-call order,
    /// histograms and counters are summed, and gauge-style maxima take the
    /// pointwise max. `other`'s still-open rounds are discarded: a round
    /// that never completed within its own run has no latency sample, and
    /// carrying the start marker across runs would let an unrelated run's
    /// `RoundCompleted` close it against a reset clock.
    pub fn merge(&mut self, other: &MetricsSink) {
        self.decide_times.merge(&other.decide_times);
        self.decide_rounds.merge(&other.decide_rounds);
        for (&round, samples) in &other.round_latency {
            self.round_latency.entry(round).or_default().merge(samples);
        }
        for (&kind, &(count, bytes)) in &other.msgs_by_kind {
            let entry = self.msgs_by_kind.entry(kind).or_insert((0, 0));
            entry.0 += count;
            entry.1 += bytes;
        }
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        for (mine, theirs) in self.validated_by_step.iter_mut().zip(other.validated_by_step) {
            *mine += theirs;
        }
        self.rejected += other.rejected;
        self.quorums += other.quorums;
        self.coin_flips += other.coin_flips;
        self.locks += other.locks;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.events_total += other.events_total;
        self.peer_connects += other.peer_connects;
        self.peer_disconnects += other.peer_disconnects;
        self.peer_reconnects += other.peer_reconnects;
        self.backoff_retries += other.backoff_retries;
        self.frame_decode_errors += other.frame_decode_errors;
        self.frame_sequence_gaps += other.frame_sequence_gaps;
        self.payloads_rejected += other.payloads_rejected;
        self.peak_link_log = self.peak_link_log.max(other.peak_link_log);
        self.chaos_frames_dropped += other.chaos_frames_dropped;
        self.epochs_started += other.epochs_started;
        self.epochs_committed += other.epochs_committed;
        self.batches_submitted += other.batches_submitted;
        self.txs_submitted += other.txs_submitted;
        self.txs_delivered += other.txs_delivered;
        self.rbc_fragments_ok += other.rbc_fragments_ok;
        self.rbc_fragments_rejected += other.rbc_fragments_rejected;
        self.rbc_reconstructions += other.rbc_reconstructions;
        self.rbc_reconstruct_bytes += other.rbc_reconstruct_bytes;
        self.epoch_commit_latency.merge(&other.epoch_commit_latency);
        self.occupancy.merge(&other.occupancy);
        self.max_pipeline_occupancy = self.max_pipeline_occupancy.max(other.max_pipeline_occupancy);
        self.slots_applied += other.slots_applied;
        self.applied_bytes += other.applied_bytes;
        self.checkpoints_proposed += other.checkpoints_proposed;
        self.checkpoints_certified += other.checkpoints_certified;
        self.checkpoint_latency.merge(&other.checkpoint_latency);
        self.state_transfers_started += other.state_transfers_started;
        self.state_transfers_completed += other.state_transfers_completed;
        self.state_transfer_bytes += other.state_transfer_bytes;
        self.poison_detections += other.poison_detections;
        self.gateway_accepted += other.gateway_accepted;
        self.gateway_nacked += other.gateway_nacked;
        self.gateway_committed += other.gateway_committed;
        // `other`'s still-open epochs and checkpoints are discarded for
        // the same reason as its still-open rounds (see above).
    }

    fn close_round(&mut self, at: u64, node: NodeId, round: u64) {
        if let Some(start) = self.open_rounds.remove(&(node, round)) {
            self.round_latency.entry(round).or_default().add(at.saturating_sub(start) as f64);
        }
    }

    /// Serializes the aggregate as a JSON object (the per-config body of
    /// the bench report).
    pub fn to_json(&mut self) -> JsonValue {
        let mut obj = Vec::new();
        obj.push(("events_total".into(), JsonValue::U64(self.events_total)));

        let mut latency = Vec::new();
        if !self.decide_times.is_empty() {
            latency.push(("mean".into(), JsonValue::F64(self.decide_times.mean())));
            latency.push((
                "p50".into(),
                JsonValue::F64(self.decide_times.percentile(50.0).unwrap_or(0.0)),
            ));
            latency.push((
                "p90".into(),
                JsonValue::F64(self.decide_times.percentile(90.0).unwrap_or(0.0)),
            ));
            latency.push(("max".into(), JsonValue::F64(self.decide_times.max().unwrap_or(0.0))));
        }
        obj.push(("decision_latency".into(), JsonValue::Obj(latency)));

        let rounds: Vec<JsonValue> = self
            .decide_rounds
            .iter()
            .map(|(round, count)| {
                JsonValue::Obj(vec![
                    ("round".into(), JsonValue::U64(round)),
                    ("nodes".into(), JsonValue::U64(count)),
                ])
            })
            .collect();
        obj.push(("decision_rounds".into(), JsonValue::Arr(rounds)));

        let mut per_round = Vec::new();
        for (&round, samples) in self.round_latency.iter_mut() {
            per_round.push(JsonValue::Obj(vec![
                ("round".into(), JsonValue::U64(round)),
                ("nodes".into(), JsonValue::U64(samples.len() as u64)),
                ("mean".into(), JsonValue::F64(samples.mean())),
                ("p50".into(), JsonValue::F64(samples.percentile(50.0).unwrap_or(0.0))),
                ("max".into(), JsonValue::F64(samples.max().unwrap_or(0.0))),
            ]));
        }
        obj.push(("round_latency".into(), JsonValue::Arr(per_round)));

        let kinds: Vec<JsonValue> = self
            .msgs_by_kind
            .iter()
            .map(|(kind, (count, bytes))| {
                JsonValue::Obj(vec![
                    ("kind".into(), JsonValue::str(*kind)),
                    ("count".into(), JsonValue::U64(*count)),
                    ("bytes".into(), JsonValue::U64(*bytes)),
                ])
            })
            .collect();
        obj.push(("messages_by_kind".into(), JsonValue::Arr(kinds)));
        obj.push(("delivered".into(), JsonValue::U64(self.delivered)));
        obj.push(("dropped".into(), JsonValue::U64(self.dropped)));

        let validated: Vec<JsonValue> = Step::ALL
            .iter()
            .map(|step| {
                JsonValue::Obj(vec![
                    ("step".into(), JsonValue::str(step.to_string())),
                    ("count".into(), JsonValue::U64(self.validated_by_step[step.index()])),
                ])
            })
            .collect();
        obj.push(("validated_by_step".into(), JsonValue::Arr(validated)));
        obj.push(("rejected".into(), JsonValue::U64(self.rejected)));
        obj.push(("quorums".into(), JsonValue::U64(self.quorums)));
        obj.push(("coin_flips".into(), JsonValue::U64(self.coin_flips)));
        obj.push(("value_locks".into(), JsonValue::U64(self.locks)));
        obj.push(("max_queue_depth".into(), JsonValue::U64(self.max_queue_depth)));
        obj.push((
            "transport".into(),
            JsonValue::Obj(vec![
                ("connects".into(), JsonValue::U64(self.peer_connects)),
                ("disconnects".into(), JsonValue::U64(self.peer_disconnects)),
                ("reconnects".into(), JsonValue::U64(self.peer_reconnects)),
                ("backoff_retries".into(), JsonValue::U64(self.backoff_retries)),
                ("frame_decode_errors".into(), JsonValue::U64(self.frame_decode_errors)),
                ("frame_sequence_gaps".into(), JsonValue::U64(self.frame_sequence_gaps)),
                ("payloads_rejected".into(), JsonValue::U64(self.payloads_rejected)),
                ("peak_link_log".into(), JsonValue::U64(self.peak_link_log)),
                ("chaos_frames_dropped".into(), JsonValue::U64(self.chaos_frames_dropped)),
            ]),
        ));
        let mut commit_latency = Vec::new();
        if !self.epoch_commit_latency.is_empty() {
            commit_latency.push(("mean".into(), JsonValue::F64(self.epoch_commit_latency.mean())));
            commit_latency.push((
                "p50".into(),
                JsonValue::F64(self.epoch_commit_latency.percentile(50.0).unwrap_or(0.0)),
            ));
            commit_latency.push((
                "max".into(),
                JsonValue::F64(self.epoch_commit_latency.max().unwrap_or(0.0)),
            ));
        }
        let mut occupancy = Vec::new();
        if !self.occupancy.is_empty() {
            occupancy.push(("mean".into(), JsonValue::F64(self.occupancy.mean())));
            occupancy.push(("max".into(), JsonValue::U64(self.max_pipeline_occupancy)));
        }
        obj.push((
            "ordering".into(),
            JsonValue::Obj(vec![
                ("epochs_started".into(), JsonValue::U64(self.epochs_started)),
                ("epochs_committed".into(), JsonValue::U64(self.epochs_committed)),
                ("batches_submitted".into(), JsonValue::U64(self.batches_submitted)),
                ("txs_submitted".into(), JsonValue::U64(self.txs_submitted)),
                ("txs_delivered".into(), JsonValue::U64(self.txs_delivered)),
                ("epoch_commit_latency".into(), JsonValue::Obj(commit_latency)),
                ("pipeline_occupancy".into(), JsonValue::Obj(occupancy)),
            ]),
        ));
        let mut ckpt_latency = Vec::new();
        if !self.checkpoint_latency.is_empty() {
            ckpt_latency.push(("mean".into(), JsonValue::F64(self.checkpoint_latency.mean())));
            ckpt_latency.push((
                "p50".into(),
                JsonValue::F64(self.checkpoint_latency.percentile(50.0).unwrap_or(0.0)),
            ));
            ckpt_latency
                .push(("max".into(), JsonValue::F64(self.checkpoint_latency.max().unwrap_or(0.0))));
        }
        obj.push((
            "state_machine".into(),
            JsonValue::Obj(vec![
                ("slots_applied".into(), JsonValue::U64(self.slots_applied)),
                ("applied_bytes".into(), JsonValue::U64(self.applied_bytes)),
                ("checkpoints_proposed".into(), JsonValue::U64(self.checkpoints_proposed)),
                ("checkpoints_certified".into(), JsonValue::U64(self.checkpoints_certified)),
                ("checkpoint_latency".into(), JsonValue::Obj(ckpt_latency)),
                ("state_transfers_started".into(), JsonValue::U64(self.state_transfers_started)),
                (
                    "state_transfers_completed".into(),
                    JsonValue::U64(self.state_transfers_completed),
                ),
                ("state_transfer_bytes".into(), JsonValue::U64(self.state_transfer_bytes)),
            ]),
        ));
        JsonValue::Obj(obj)
    }

    /// Renders the aggregate in the Prometheus text exposition format
    /// (counters, gauges, summaries and one cumulative histogram), so
    /// external tooling can scrape a run snapshot without parsing JSONL.
    ///
    /// Output order is pinned (struct field order; BTreeMap keys sort),
    /// so same-seed runs render byte-identical snapshots.
    pub fn render_prometheus(&mut self) -> String {
        let mut out = String::new();
        prom_counter(&mut out, "bft_events_total", "Events consumed", self.events_total);
        for (kind, (count, bytes)) in &self.msgs_by_kind {
            out.push_str(&format!(
                "bft_messages_total{{kind=\"{}\"}} {count}\n",
                prom_escape(kind)
            ));
            out.push_str(&format!(
                "bft_message_bytes_total{{kind=\"{}\"}} {bytes}\n",
                prom_escape(kind)
            ));
        }
        prom_counter(&mut out, "bft_delivered_total", "Messages delivered", self.delivered);
        prom_counter(&mut out, "bft_dropped_total", "Messages dropped", self.dropped);
        for step in Step::ALL.iter() {
            out.push_str(&format!(
                "bft_validated_total{{step=\"{step}\"}} {}\n",
                self.validated_by_step[step.index()]
            ));
        }
        prom_counter(&mut out, "bft_rejected_total", "Payloads rejected", self.rejected);
        prom_counter(&mut out, "bft_quorums_total", "Step quorums reached", self.quorums);
        prom_counter(&mut out, "bft_coin_flips_total", "Coin flips", self.coin_flips);
        prom_counter(&mut out, "bft_value_locks_total", "Value locks", self.locks);
        prom_gauge(&mut out, "bft_max_queue_depth", "Peak queue depth", self.max_queue_depth);
        prom_counter(&mut out, "bft_peer_connects_total", "Peer connects", self.peer_connects);
        prom_counter(
            &mut out,
            "bft_peer_disconnects_total",
            "Peer disconnects",
            self.peer_disconnects,
        );
        prom_counter(
            &mut out,
            "bft_peer_reconnects_total",
            "Peer reconnects",
            self.peer_reconnects,
        );
        prom_counter(
            &mut out,
            "bft_backoff_retries_total",
            "Reconnect backoff retries",
            self.backoff_retries,
        );
        prom_counter(
            &mut out,
            "bft_frame_decode_errors_total",
            "Inbound frame decode errors",
            self.frame_decode_errors,
        );
        prom_counter(
            &mut out,
            "bft_frame_sequence_gaps_total",
            "Inbound frame sequence gaps",
            self.frame_sequence_gaps,
        );
        prom_counter(
            &mut out,
            "bft_payloads_rejected_total",
            "Oversize outbound bodies rejected",
            self.payloads_rejected,
        );
        prom_gauge(
            &mut out,
            "bft_peak_link_log_frames",
            "Peak frames resident in one link's replay log",
            self.peak_link_log,
        );
        prom_counter(
            &mut out,
            "bft_chaos_frames_dropped_total",
            "Frames dropped by the chaos layer",
            self.chaos_frames_dropped,
        );
        prom_counter(&mut out, "bft_epochs_started_total", "Epochs opened", self.epochs_started);
        prom_counter(
            &mut out,
            "bft_epochs_committed_total",
            "Epochs committed",
            self.epochs_committed,
        );
        prom_counter(
            &mut out,
            "bft_batches_submitted_total",
            "Batches submitted",
            self.batches_submitted,
        );
        prom_counter(&mut out, "bft_txs_submitted_total", "Txs submitted", self.txs_submitted);
        prom_counter(&mut out, "bft_txs_delivered_total", "Txs ordered", self.txs_delivered);
        prom_counter(
            &mut out,
            "bft_rbc_fragments_ok_total",
            "Coded fragments verified",
            self.rbc_fragments_ok,
        );
        prom_counter(
            &mut out,
            "bft_rbc_fragments_rejected_total",
            "Coded fragments rejected",
            self.rbc_fragments_rejected,
        );
        prom_counter(
            &mut out,
            "bft_rbc_reconstructions_total",
            "Coded payload reconstructions",
            self.rbc_reconstructions,
        );
        prom_counter(
            &mut out,
            "bft_rbc_reconstruct_bytes_total",
            "Bytes recovered by reconstruction",
            self.rbc_reconstruct_bytes,
        );
        prom_gauge(
            &mut out,
            "bft_max_pipeline_occupancy",
            "Peak concurrently in-flight epochs",
            self.max_pipeline_occupancy,
        );
        prom_counter(
            &mut out,
            "bft_slots_applied_total",
            "State-machine slots applied",
            self.slots_applied,
        );
        prom_counter(
            &mut out,
            "bft_applied_bytes_total",
            "Payload bytes applied",
            self.applied_bytes,
        );
        prom_counter(
            &mut out,
            "bft_checkpoints_proposed_total",
            "Checkpoint hashes proposed",
            self.checkpoints_proposed,
        );
        prom_counter(
            &mut out,
            "bft_checkpoints_certified_total",
            "Checkpoint certificates collected",
            self.checkpoints_certified,
        );
        prom_counter(
            &mut out,
            "bft_state_transfers_started_total",
            "Peer state transfers started",
            self.state_transfers_started,
        );
        prom_counter(
            &mut out,
            "bft_state_transfers_completed_total",
            "Peer state transfers completed",
            self.state_transfers_completed,
        );
        prom_counter(
            &mut out,
            "bft_state_transfer_bytes_total",
            "Snapshot bytes installed by state transfer",
            self.state_transfer_bytes,
        );

        prom_summary(
            &mut out,
            "bft_decision_latency",
            "Decision timestamps across nodes",
            &mut self.decide_times,
        );
        prom_summary(
            &mut out,
            "bft_epoch_commit_latency",
            "Epoch start-to-commit durations",
            &mut self.epoch_commit_latency,
        );
        prom_summary(
            &mut out,
            "bft_checkpoint_latency",
            "Checkpoint propose-to-certify durations",
            &mut self.checkpoint_latency,
        );
        prom_summary(
            &mut out,
            "bft_pipeline_occupancy",
            "In-flight epochs at each epoch start",
            &mut self.occupancy,
        );
        for (&round, samples) in self.round_latency.iter_mut() {
            for (q, label) in [(50.0, "0.5"), (99.0, "0.99")] {
                out.push_str(&format!(
                    "bft_round_latency{{round=\"{round}\",quantile=\"{label}\"}} {}\n",
                    samples.percentile(q).unwrap_or(0.0)
                ));
            }
            out.push_str(&format!(
                "bft_round_latency_count{{round=\"{round}\"}} {}\n",
                samples.len()
            ));
        }

        prom_int_histogram(
            &mut out,
            "bft_decision_rounds",
            "Rounds to decide across nodes",
            &self.decide_rounds,
        );
        out
    }
}

fn prom_escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn prom_counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
}

fn prom_gauge(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"));
}

fn prom_summary(out: &mut String, name: &str, help: &str, samples: &mut Samples) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
    if !samples.is_empty() {
        for (q, label) in [(50.0, "0.5"), (90.0, "0.9"), (99.0, "0.99")] {
            out.push_str(&format!(
                "{name}{{quantile=\"{label}\"}} {}\n",
                samples.percentile(q).unwrap_or(0.0)
            ));
        }
    }
    let sum: f64 = samples.values().iter().sum();
    out.push_str(&format!("{name}_sum {sum}\n{name}_count {}\n", samples.len()));
}

fn prom_int_histogram(out: &mut String, name: &str, help: &str, hist: &Histogram) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    let mut sum = 0u128;
    for (value, count) in hist.iter() {
        cumulative += count;
        sum += value as u128 * count as u128;
        out.push_str(&format!("{name}_bucket{{le=\"{value}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
    out.push_str(&format!("{name}_sum {sum}\n{name}_count {}\n", hist.count()));
}

impl Sink for MetricsSink {
    fn on_event(&mut self, at: u64, node: NodeId, event: &Event) {
        self.events_total += 1;
        match event {
            Event::MessageSent { kind, bytes, .. } => {
                let entry = self.msgs_by_kind.entry(kind).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += bytes;
            }
            Event::MessageDelivered { .. } => self.delivered += 1,
            Event::MessageDropped { .. } => self.dropped += 1,
            Event::QueueDepth { depth } => {
                self.max_queue_depth = self.max_queue_depth.max(*depth);
            }
            Event::RoundStarted { round } => {
                self.open_rounds.insert((node, *round), at);
            }
            Event::RoundCompleted { round } => self.close_round(at, node, *round),
            Event::QuorumReached { .. } => self.quorums += 1,
            Event::MessageValidated { step, .. } => {
                self.validated_by_step[step.index()] += 1;
            }
            Event::MessageRejected { .. } => self.rejected += 1,
            Event::CoinFlipped { .. } => self.coin_flips += 1,
            Event::ValueLocked { .. } => self.locks += 1,
            Event::Decided { round, .. } => {
                self.decide_times.add(at as f64);
                self.decide_rounds.add(*round);
                self.close_round(at, node, *round);
            }
            Event::PeerConnected { .. } => self.peer_connects += 1,
            Event::PeerDisconnected { .. } => self.peer_disconnects += 1,
            Event::PeerReconnected { .. } => self.peer_reconnects += 1,
            Event::ReconnectBackoff { .. } => self.backoff_retries += 1,
            Event::FrameDecodeError { .. } => self.frame_decode_errors += 1,
            Event::FrameSequenceGap { .. } => self.frame_sequence_gaps += 1,
            Event::PayloadRejected { .. } => self.payloads_rejected += 1,
            Event::LinkLogPeak { frames, .. } => {
                self.peak_link_log = self.peak_link_log.max(*frames)
            }
            Event::FrameDropped { .. } => self.chaos_frames_dropped += 1,
            Event::EpochStarted { epoch } => {
                self.epochs_started += 1;
                self.open_epochs.insert((node, *epoch), at);
                let inflight = self.inflight_epochs.entry(node).or_insert(0);
                *inflight += 1;
                self.occupancy.add(*inflight as f64);
                self.max_pipeline_occupancy = self.max_pipeline_occupancy.max(*inflight);
            }
            Event::EpochCommitted { epoch, .. } => {
                self.epochs_committed += 1;
                if let Some(start) = self.open_epochs.remove(&(node, *epoch)) {
                    self.epoch_commit_latency.add(at.saturating_sub(start) as f64);
                }
                if let Some(inflight) = self.inflight_epochs.get_mut(&node) {
                    *inflight = inflight.saturating_sub(1);
                }
            }
            Event::BatchSubmitted { txs, .. } => {
                self.batches_submitted += 1;
                self.txs_submitted += txs;
            }
            Event::LogDelivered { entries, .. } => self.txs_delivered += entries,
            Event::SlotApplied { bytes, .. } => {
                self.slots_applied += 1;
                self.applied_bytes += bytes;
            }
            Event::CheckpointProposed { epoch, .. } => {
                self.checkpoints_proposed += 1;
                self.open_checkpoints.insert((node, *epoch), at);
            }
            Event::CheckpointCertified { epoch, .. } => {
                self.checkpoints_certified += 1;
                if let Some(start) = self.open_checkpoints.remove(&(node, *epoch)) {
                    self.checkpoint_latency.add(at.saturating_sub(start) as f64);
                }
            }
            Event::StateTransferStarted { .. } => self.state_transfers_started += 1,
            Event::StateTransferCompleted { bytes, .. } => {
                self.state_transfers_completed += 1;
                self.state_transfer_bytes += bytes;
            }
            Event::RbcFragment { verified, .. } => {
                if *verified {
                    self.rbc_fragments_ok += 1;
                } else {
                    self.rbc_fragments_rejected += 1;
                }
            }
            Event::RbcReconstructed { bytes, consistent, .. } => {
                self.rbc_reconstructions += 1;
                if *consistent {
                    self.rbc_reconstruct_bytes += bytes;
                }
            }
            Event::PoisonDetected { .. } => self.poison_detections += 1,
            Event::GatewayAccepted { .. } => self.gateway_accepted += 1,
            Event::GatewayNacked { .. } => self.gateway_nacked += 1,
            Event::GatewayCommitted { .. } => self.gateway_committed += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_types::Value;

    #[test]
    fn aggregates_round_latency_and_decisions() {
        let mut sink = MetricsSink::new();
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        sink.on_event(0, n0, &Event::RoundStarted { round: 1 });
        sink.on_event(0, n1, &Event::RoundStarted { round: 1 });
        sink.on_event(10, n0, &Event::Decided { round: 1, value: Value::One });
        sink.on_event(14, n1, &Event::RoundCompleted { round: 1 });
        assert_eq!(sink.decide_times().len(), 1);
        assert_eq!(sink.decide_rounds().count(), 1);
        let samples = &sink.round_latency()[&1];
        assert_eq!(samples.len(), 2);
        assert!((samples.mean() - 12.0).abs() < 1e-9);
    }

    /// Merging per-run sinks in a pinned order must be indistinguishable
    /// from feeding all the runs' events into one sink run-by-run — the
    /// property the parallel experiment driver's determinism rests on.
    #[test]
    fn merge_equals_sequential_feed() {
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let run_a: Vec<(u64, NodeId, Event)> = vec![
            (0, n0, Event::RoundStarted { round: 1 }),
            (0, n0, Event::MessageSent { to: n1, kind: "send/initial", bytes: 16 }),
            (2, n0, Event::MessageDelivered { from: n1, kind: "send/initial" }),
            (4, n0, Event::QuorumReached { round: 1, step: Step::Initial, support: 3 }),
            (7, n0, Event::Decided { round: 1, value: Value::One }),
        ];
        let run_b: Vec<(u64, NodeId, Event)> = vec![
            (0, n1, Event::RoundStarted { round: 1 }),
            (1, n1, Event::QueueDepth { depth: 9 }),
            (3, n1, Event::MessageRejected { origin: n0, round: 1, reason: "equivocation" }),
            (5, n1, Event::Decided { round: 2, value: Value::Zero }),
        ];

        let mut merged = MetricsSink::new();
        for run in [&run_a, &run_b] {
            let mut per_run = MetricsSink::new();
            for (at, node, ev) in run.iter() {
                per_run.on_event(*at, *node, ev);
            }
            merged.merge(&per_run);
        }

        let mut sequential = MetricsSink::new();
        for (at, node, ev) in run_a.iter().chain(run_b.iter()) {
            sequential.on_event(*at, *node, ev);
        }

        assert_eq!(merged.to_json().to_string(), sequential.to_json().to_string());
        assert_eq!(merged.events_total(), 9);
        assert_eq!(merged.max_queue_depth(), 9);
    }

    /// Merge order is observable (sample order) only up to statistics:
    /// the JSON aggregate sorts/sums everything, but we still pin the
    /// order so raw sample dumps stay reproducible.
    #[test]
    fn merge_appends_samples_in_call_order() {
        let mk = |t: u64| {
            let mut s = MetricsSink::new();
            s.on_event(t, NodeId::new(0), &Event::Decided { round: 1, value: Value::One });
            s
        };
        let mut ab = MetricsSink::new();
        ab.merge(&mk(5));
        ab.merge(&mk(3));
        assert_eq!(ab.decide_times().values(), &[5.0, 3.0]);
    }

    #[test]
    fn prometheus_rendering_is_stable_and_complete() {
        let mut sink = MetricsSink::new();
        let n0 = NodeId::new(0);
        sink.on_event(0, n0, &Event::RoundStarted { round: 1 });
        sink.on_event(0, n0, &Event::MessageSent { to: n0, kind: "send/initial", bytes: 16 });
        sink.on_event(3, n0, &Event::QueueDepth { depth: 4 });
        sink.on_event(7, n0, &Event::Decided { round: 1, value: Value::One });
        let text = sink.render_prometheus();
        assert!(text.contains("# TYPE bft_events_total counter"));
        assert!(text.contains("bft_events_total 4"));
        assert!(text.contains(r#"bft_messages_total{kind="send/initial"} 1"#));
        assert!(text.contains(r#"bft_message_bytes_total{kind="send/initial"} 16"#));
        assert!(text.contains("bft_max_queue_depth 4"));
        assert!(text.contains(r#"bft_decision_latency{quantile="0.5"} 7"#));
        assert!(text.contains("bft_decision_latency_count 1"));
        assert!(text.contains(r#"bft_decision_rounds_bucket{le="1"} 1"#));
        assert!(text.contains(r#"bft_decision_rounds_bucket{le="+Inf"} 1"#));
        assert!(text.contains(r#"bft_round_latency{round="1",quantile="0.5"} 7"#));
        assert_eq!(text, sink.render_prometheus(), "rendering is pure");
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line.split_once(' ').is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn counts_messages_by_kind() {
        let mut sink = MetricsSink::new();
        let n0 = NodeId::new(0);
        sink.on_event(0, n0, &Event::MessageSent { to: n0, kind: "echo/echo", bytes: 16 });
        sink.on_event(0, n0, &Event::MessageSent { to: n0, kind: "echo/echo", bytes: 16 });
        sink.on_event(1, n0, &Event::MessageDelivered { from: n0, kind: "echo/echo" });
        assert_eq!(sink.msgs_by_kind()["echo/echo"], (2, 32));
        assert_eq!(sink.delivered(), 1);
        let json = sink.to_json().to_string();
        assert!(json.contains(r#""messages_by_kind":[{"kind":"echo/echo","count":2,"bytes":32}]"#));
    }
}
