//! The protocol event taxonomy.

use crate::json::JsonValue;
use crate::trace::TracePhase;
use bft_types::{NodeId, Step, Value};
use std::fmt;

/// The reliable-broadcast phase of one instance at one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RbcPhase {
    /// The instance has seen the designated sender's `Send`.
    Send,
    /// The node has broadcast its `Echo`.
    Echo,
    /// The node has broadcast its `Ready` (echo quorum or amplification).
    Ready,
}

impl RbcPhase {
    /// A stable lower-case label.
    pub const fn label(self) -> &'static str {
        match self {
            RbcPhase::Send => "send",
            RbcPhase::Echo => "echo",
            RbcPhase::Ready => "ready",
        }
    }
}

impl fmt::Display for RbcPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One protocol-level event, as observed at a single node.
///
/// Events fall into three layers:
///
/// * **Transport** — emitted by the hosts (`bft-sim::World`,
///   `bft-runtime::Runtime`): message send/delivery/drop, queue depth
///   samples, node halts.
/// * **Reliable broadcast** — emitted by `bft-rbc` instances: phase
///   transitions, echo/ready quorums, RBC delivery. The instance tag is
///   `Debug`-formatted by the generic multiplexer.
/// * **Consensus** — emitted by the protocol state machines (`bracha`
///   engine and baselines): round/step structure, validation verdicts,
///   coin flips, locks and decisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A message was enqueued for delivery to `to`.
    MessageSent {
        /// Destination node.
        to: NodeId,
        /// Classifier kind label (`"msg"` when no classifier is installed).
        kind: &'static str,
        /// Approximate serialized bytes (0 when unclassified).
        bytes: u64,
    },
    /// A message from `from` was delivered to the observing node.
    MessageDelivered {
        /// Sending node.
        from: NodeId,
        /// Classifier kind label (`"msg"` when no classifier is installed).
        kind: &'static str,
    },
    /// A message from `from` was dropped (destination already halted).
    MessageDropped {
        /// Sending node.
        from: NodeId,
    },
    /// A periodic sample of the host's pending-delivery queue depth.
    QueueDepth {
        /// Messages currently in flight.
        depth: u64,
    },
    /// The observing node stopped participating.
    NodeHalted,

    /// A transport connection to `peer` was established and authenticated
    /// for the first time (net runtime).
    PeerConnected {
        /// The authenticated peer.
        peer: NodeId,
    },
    /// A transport connection to or from `peer` failed or closed.
    PeerDisconnected {
        /// The peer on the other end of the link.
        peer: NodeId,
        /// A stable short reason label (`"closed"`, `"write-failed"`, …).
        reason: &'static str,
    },
    /// A reconnect attempt to `peer` failed; the dialer backs off before
    /// the next attempt.
    ReconnectBackoff {
        /// The peer being redialed.
        peer: NodeId,
        /// 1-based attempt number within this reconnect episode.
        attempt: u64,
        /// Backoff delay before the next attempt, in milliseconds.
        delay_ms: u64,
    },
    /// A previously-connected link to `peer` was re-established and
    /// re-authenticated.
    PeerReconnected {
        /// The reconnected peer.
        peer: NodeId,
        /// Failed attempts before this episode succeeded.
        attempts: u64,
    },
    /// An inbound frame failed strict decoding (the connection is dropped
    /// and re-established by the dialer).
    FrameDecodeError {
        /// A stable short reason label (`"checksum"`, `"truncated"`, …).
        reason: &'static str,
    },
    /// The chaos layer dropped an outbound frame transmission attempt
    /// (the writer re-transmits after a timeout).
    FrameDropped {
        /// Destination of the frame.
        to: NodeId,
        /// Per-link sequence number of the frame.
        seq: u64,
    },
    /// An inbound frame from `from` skipped ahead of the expected per-link
    /// sequence number. Frames decoded fine — the *ordering* contract was
    /// violated, so the connection is dropped and the dialer replays.
    FrameSequenceGap {
        /// The peer whose stream jumped.
        from: NodeId,
        /// The sequence number the receiver was waiting for.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// An outbound message body exceeded the transport's frame cap and was
    /// rejected at the send boundary (never assigned a sequence number).
    PayloadRejected {
        /// The encoded body length in bytes.
        len: u64,
    },
    /// High-water mark of one directed link's replay log (frames resident
    /// at once), emitted by the writer thread at link teardown. With
    /// ack-based trimming this stays bounded by the ack cadence instead of
    /// growing with the run length.
    LinkLogPeak {
        /// The link's destination peer.
        peer: NodeId,
        /// Peak number of frames held in the log.
        frames: u64,
    },
    /// A transport worker thread panicked and poisoned shared runtime
    /// state. The runtime rides through the poison to keep the report
    /// usable, but the panic must not be silent: hung-test triage starts
    /// here (and at the matching `RuntimeReport::poisoned` flag).
    PoisonDetected {
        /// Which runtime component the panic surfaced in.
        context: &'static str,
    },

    /// The gateway accepted a client submission into the node's mempool
    /// (per-client sequence check passed, `submit` succeeded).
    GatewayAccepted {
        /// The submitting client's id.
        client: u64,
        /// The client's per-client sequence number.
        seq: u64,
    },
    /// The gateway rejected a client submission with a typed NACK.
    GatewayNacked {
        /// The submitting client's id.
        client: u64,
        /// The client's per-client sequence number.
        seq: u64,
        /// Why: `"backpressure"`, `"sequence_gap"`, or `"oversize"`.
        reason: &'static str,
    },
    /// A gateway-accepted transaction committed in the total order and
    /// the positive ack was queued back to the client.
    GatewayCommitted {
        /// The submitting client's id.
        client: u64,
        /// The client's per-client sequence number.
        seq: u64,
        /// The epoch the transaction committed in.
        epoch: u64,
    },

    /// The observing node started an ordering epoch (proposed its batch
    /// and opened the epoch's ACS instance).
    EpochStarted {
        /// The 0-based epoch number.
        epoch: u64,
    },
    /// The epoch's ACS decided: the observing node knows the epoch's
    /// committed batch set.
    EpochCommitted {
        /// The 0-based epoch number.
        epoch: u64,
        /// Proposer slots accepted into the epoch (ABA decided One).
        slots: u64,
        /// Total transactions across the accepted batches.
        txs: u64,
    },
    /// The observing node submitted its own batch into an epoch.
    BatchSubmitted {
        /// The 0-based epoch number carrying the batch.
        epoch: u64,
        /// Transactions in the batch.
        txs: u64,
        /// Total payload bytes in the batch.
        bytes: u64,
    },
    /// A committed epoch's entries were appended to the totally-ordered
    /// log (epochs append strictly in order).
    LogDelivered {
        /// The 0-based epoch number just appended.
        epoch: u64,
        /// Entries appended by this epoch.
        entries: u64,
        /// Cumulative log length after the append.
        total: u64,
    },

    /// The observing node's state machine applied one committed log slot
    /// (one `(epoch, proposer)` log entry).
    SlotApplied {
        /// The epoch the slot was committed in.
        epoch: u64,
        /// The node that proposed the batch carrying the slot.
        proposer: NodeId,
        /// Payload bytes of the applied transaction.
        bytes: u64,
    },
    /// The observing node reached a checkpoint boundary and RBC-broadcast
    /// its state hash for agreement.
    CheckpointProposed {
        /// The checkpoint epoch (state covers epochs `0..epoch`).
        epoch: u64,
        /// The FNV state hash over the canonical snapshot.
        hash: u64,
    },
    /// The observing node collected a `2f + 1`-matching checkpoint
    /// certificate: that many distinct nodes RBC-delivered the same state
    /// hash for the epoch, so history below it can be truncated.
    CheckpointCertified {
        /// The certified checkpoint epoch.
        epoch: u64,
        /// The agreed state hash.
        hash: u64,
        /// Distinct nodes whose delivered hash matched.
        support: u64,
    },
    /// The observing node fell behind a certified checkpoint and began
    /// fetching the snapshot from its peers in erasure-coded chunks.
    StateTransferStarted {
        /// The checkpoint epoch being fetched.
        epoch: u64,
    },
    /// The observing node reconstructed a peer snapshot, verified it
    /// against the checkpoint certificate, and installed it.
    StateTransferCompleted {
        /// The checkpoint epoch now installed.
        epoch: u64,
        /// Size of the reconstructed snapshot in bytes.
        bytes: u64,
    },

    /// An RBC instance entered a phase at the observing node.
    RbcPhaseEntered {
        /// Designated sender of the instance.
        origin: NodeId,
        /// `Debug`-formatted instance tag.
        tag: String,
        /// The phase entered.
        phase: RbcPhase,
    },
    /// An RBC quorum was reached at the observing node.
    RbcQuorumReached {
        /// Designated sender of the instance.
        origin: NodeId,
        /// `Debug`-formatted instance tag.
        tag: String,
        /// Which quorum: `Echo` (echo threshold) or `Ready`
        /// (`f + 1` amplification).
        phase: RbcPhase,
        /// Number of distinct supporters counted.
        support: u64,
    },
    /// An RBC instance reliably delivered its payload (`2f + 1` Readys).
    RbcDelivered {
        /// Designated sender of the instance.
        origin: NodeId,
        /// `Debug`-formatted instance tag.
        tag: String,
        /// Number of distinct Ready supporters at delivery.
        support: u64,
    },
    /// A coded-RBC fragment was checked against its commitment at the
    /// observing node (`verified` records the outcome).
    RbcFragment {
        /// Designated sender of the instance.
        origin: NodeId,
        /// `Debug`-formatted instance tag.
        tag: String,
        /// The fragment's codeword index.
        index: u64,
        /// Whether the inclusion proof checked out.
        verified: bool,
    },
    /// A coded-RBC instance decoded its payload from `fragments` verified
    /// fragments. `consistent` is false when the re-encode check exposed a
    /// Byzantine sender committing to a non-codeword (all correct nodes
    /// then deliver the canonical empty fallback).
    RbcReconstructed {
        /// Designated sender of the instance.
        origin: NodeId,
        /// `Debug`-formatted instance tag.
        tag: String,
        /// Verified fragments available at reconstruction.
        fragments: u64,
        /// Byte length of the decoded payload.
        bytes: u64,
        /// Whether the decoded payload re-encoded to the commitment.
        consistent: bool,
    },

    /// The observing node started a consensus round.
    RoundStarted {
        /// The 1-based round number.
        round: u64,
    },
    /// The observing node finished a consensus round.
    RoundCompleted {
        /// The 1-based round number.
        round: u64,
    },
    /// The observing node entered a step of the current round.
    StepEntered {
        /// The 1-based round number.
        round: u64,
        /// The step entered.
        step: Step,
    },
    /// The observing node collected its `n − f` quorum for a step.
    QuorumReached {
        /// The 1-based round number.
        round: u64,
        /// The step whose quorum filled.
        step: Step,
        /// Validated messages available when the quorum filled.
        support: u64,
    },
    /// A reliably-delivered payload passed Bracha validation.
    MessageValidated {
        /// The originating node (RBC designated sender).
        origin: NodeId,
        /// The 1-based round number.
        round: u64,
        /// The payload's step.
        step: Step,
        /// The carried value.
        value: Value,
        /// Whether the payload was a D-flagged Ready.
        flagged: bool,
    },
    /// A delivered payload was rejected before validation bookkeeping.
    MessageRejected {
        /// The originating node.
        origin: NodeId,
        /// The 1-based round number.
        round: u64,
        /// Why the payload was rejected.
        reason: &'static str,
    },
    /// The observing node flipped its coin at the end of a round.
    CoinFlipped {
        /// The 1-based round number.
        round: u64,
        /// The flip outcome adopted as the next estimate.
        value: Value,
        /// The coin scheme label (e.g. `"local"`, `"common"`).
        scheme: &'static str,
    },
    /// The observing node locked a value (D-flag in the Echo step, or an
    /// `f + 1` Ready adoption).
    ValueLocked {
        /// The 1-based round number.
        round: u64,
        /// The locked value.
        value: Value,
        /// Supporting message count behind the lock.
        support: u64,
    },
    /// The observing node decided. Emitted at most once per node.
    Decided {
        /// The decision round.
        round: u64,
        /// The decided value.
        value: Value,
    },
    /// A causal-tracing span opened at the observing node: `phase` of
    /// trace `trace` started now. Span ids are derived deterministically
    /// (see `bft_obs::trace`), so same-seed sim runs emit identical ids.
    SpanStart {
        /// The owning trace id.
        trace: u64,
        /// This span's id.
        span: u64,
        /// The enclosing span's id (0 for the trace root).
        parent: u64,
        /// The phase this span measures.
        phase: TracePhase,
    },
    /// The matching close of a [`Event::SpanStart`].
    SpanEnd {
        /// The owning trace id.
        trace: u64,
        /// The span being closed.
        span: u64,
    },
    /// A protocol invariant failed at the observing node — a state the
    /// quorum arguments prove unreachable was reached anyway. The node
    /// degrades gracefully instead of panicking; this event carries the
    /// typed error (`Display`-formatted) to the invariant sink.
    InvariantViolated {
        /// The 1-based round number (0 when no round applies).
        round: u64,
        /// The `Display`-formatted `ProtocolError`.
        detail: String,
    },
}

impl Event {
    /// A stable snake_case name for the event variant (the `ev` field of
    /// the JSONL schema).
    pub const fn name(&self) -> &'static str {
        match self {
            Event::MessageSent { .. } => "message_sent",
            Event::MessageDelivered { .. } => "message_delivered",
            Event::MessageDropped { .. } => "message_dropped",
            Event::QueueDepth { .. } => "queue_depth",
            Event::NodeHalted => "node_halted",
            Event::PeerConnected { .. } => "peer_connected",
            Event::PeerDisconnected { .. } => "peer_disconnected",
            Event::ReconnectBackoff { .. } => "reconnect_backoff",
            Event::PeerReconnected { .. } => "peer_reconnected",
            Event::FrameDecodeError { .. } => "frame_decode_error",
            Event::FrameDropped { .. } => "frame_dropped",
            Event::FrameSequenceGap { .. } => "frame_sequence_gap",
            Event::PayloadRejected { .. } => "payload_rejected",
            Event::LinkLogPeak { .. } => "link_log_peak",
            Event::PoisonDetected { .. } => "poison_detected",
            Event::GatewayAccepted { .. } => "gateway_accepted",
            Event::GatewayNacked { .. } => "gateway_nacked",
            Event::GatewayCommitted { .. } => "gateway_committed",
            Event::EpochStarted { .. } => "epoch_started",
            Event::EpochCommitted { .. } => "epoch_committed",
            Event::BatchSubmitted { .. } => "batch_submitted",
            Event::LogDelivered { .. } => "log_delivered",
            Event::SlotApplied { .. } => "slot_applied",
            Event::CheckpointProposed { .. } => "checkpoint_proposed",
            Event::CheckpointCertified { .. } => "checkpoint_certified",
            Event::StateTransferStarted { .. } => "state_transfer_started",
            Event::StateTransferCompleted { .. } => "state_transfer_completed",
            Event::RbcPhaseEntered { .. } => "rbc_phase_entered",
            Event::RbcQuorumReached { .. } => "rbc_quorum_reached",
            Event::RbcDelivered { .. } => "rbc_delivered",
            Event::RbcFragment { .. } => "rbc_fragment",
            Event::RbcReconstructed { .. } => "rbc_reconstructed",
            Event::RoundStarted { .. } => "round_started",
            Event::RoundCompleted { .. } => "round_completed",
            Event::StepEntered { .. } => "step_entered",
            Event::QuorumReached { .. } => "quorum_reached",
            Event::MessageValidated { .. } => "message_validated",
            Event::MessageRejected { .. } => "message_rejected",
            Event::CoinFlipped { .. } => "coin_flipped",
            Event::ValueLocked { .. } => "value_locked",
            Event::Decided { .. } => "decided",
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
            Event::InvariantViolated { .. } => "invariant_violated",
        }
    }

    /// Serializes the event (with its timestamp and observing node) as one
    /// JSON object — the JSONL exporter's line format.
    pub fn to_json(&self, at: u64, node: NodeId) -> JsonValue {
        let mut obj = vec![
            ("t".to_string(), JsonValue::U64(at)),
            ("node".to_string(), JsonValue::U64(node.index() as u64)),
            ("ev".to_string(), JsonValue::str(self.name())),
        ];
        let mut field = |k: &str, v: JsonValue| obj.push((k.to_string(), v));
        match self {
            Event::MessageSent { to, kind, bytes } => {
                field("to", JsonValue::U64(to.index() as u64));
                field("kind", JsonValue::str(*kind));
                field("bytes", JsonValue::U64(*bytes));
            }
            Event::MessageDelivered { from, kind } => {
                field("from", JsonValue::U64(from.index() as u64));
                field("kind", JsonValue::str(*kind));
            }
            Event::MessageDropped { from } => {
                field("from", JsonValue::U64(from.index() as u64));
            }
            Event::QueueDepth { depth } => field("depth", JsonValue::U64(*depth)),
            Event::NodeHalted => {}
            Event::PeerConnected { peer } => {
                field("peer", JsonValue::U64(peer.index() as u64));
            }
            Event::PeerDisconnected { peer, reason } => {
                field("peer", JsonValue::U64(peer.index() as u64));
                field("reason", JsonValue::str(*reason));
            }
            Event::ReconnectBackoff { peer, attempt, delay_ms } => {
                field("peer", JsonValue::U64(peer.index() as u64));
                field("attempt", JsonValue::U64(*attempt));
                field("delay_ms", JsonValue::U64(*delay_ms));
            }
            Event::PeerReconnected { peer, attempts } => {
                field("peer", JsonValue::U64(peer.index() as u64));
                field("attempts", JsonValue::U64(*attempts));
            }
            Event::FrameDecodeError { reason } => {
                field("reason", JsonValue::str(*reason));
            }
            Event::FrameDropped { to, seq } => {
                field("to", JsonValue::U64(to.index() as u64));
                field("seq", JsonValue::U64(*seq));
            }
            Event::FrameSequenceGap { from, expected, got } => {
                field("from", JsonValue::U64(from.index() as u64));
                field("expected", JsonValue::U64(*expected));
                field("got", JsonValue::U64(*got));
            }
            Event::PayloadRejected { len } => {
                field("len", JsonValue::U64(*len));
            }
            Event::LinkLogPeak { peer, frames } => {
                field("peer", JsonValue::U64(peer.index() as u64));
                field("frames", JsonValue::U64(*frames));
            }
            Event::PoisonDetected { context } => {
                field("context", JsonValue::str(*context));
            }
            Event::GatewayAccepted { client, seq } => {
                field("client", JsonValue::U64(*client));
                field("seq", JsonValue::U64(*seq));
            }
            Event::GatewayNacked { client, seq, reason } => {
                field("client", JsonValue::U64(*client));
                field("seq", JsonValue::U64(*seq));
                field("reason", JsonValue::str(*reason));
            }
            Event::GatewayCommitted { client, seq, epoch } => {
                field("client", JsonValue::U64(*client));
                field("seq", JsonValue::U64(*seq));
                field("epoch", JsonValue::U64(*epoch));
            }
            Event::EpochStarted { epoch } => {
                field("epoch", JsonValue::U64(*epoch));
            }
            Event::EpochCommitted { epoch, slots, txs } => {
                field("epoch", JsonValue::U64(*epoch));
                field("slots", JsonValue::U64(*slots));
                field("txs", JsonValue::U64(*txs));
            }
            Event::BatchSubmitted { epoch, txs, bytes } => {
                field("epoch", JsonValue::U64(*epoch));
                field("txs", JsonValue::U64(*txs));
                field("bytes", JsonValue::U64(*bytes));
            }
            Event::LogDelivered { epoch, entries, total } => {
                field("epoch", JsonValue::U64(*epoch));
                field("entries", JsonValue::U64(*entries));
                field("total", JsonValue::U64(*total));
            }
            Event::SlotApplied { epoch, proposer, bytes } => {
                field("epoch", JsonValue::U64(*epoch));
                field("proposer", JsonValue::U64(proposer.index() as u64));
                field("bytes", JsonValue::U64(*bytes));
            }
            Event::CheckpointProposed { epoch, hash } => {
                field("epoch", JsonValue::U64(*epoch));
                field("hash", JsonValue::U64(*hash));
            }
            Event::CheckpointCertified { epoch, hash, support } => {
                field("epoch", JsonValue::U64(*epoch));
                field("hash", JsonValue::U64(*hash));
                field("support", JsonValue::U64(*support));
            }
            Event::StateTransferStarted { epoch } => {
                field("epoch", JsonValue::U64(*epoch));
            }
            Event::StateTransferCompleted { epoch, bytes } => {
                field("epoch", JsonValue::U64(*epoch));
                field("bytes", JsonValue::U64(*bytes));
            }
            Event::RbcPhaseEntered { origin, tag, phase } => {
                field("origin", JsonValue::U64(origin.index() as u64));
                field("tag", JsonValue::str(tag));
                field("phase", JsonValue::str(phase.label()));
            }
            Event::RbcQuorumReached { origin, tag, phase, support } => {
                field("origin", JsonValue::U64(origin.index() as u64));
                field("tag", JsonValue::str(tag));
                field("phase", JsonValue::str(phase.label()));
                field("support", JsonValue::U64(*support));
            }
            Event::RbcDelivered { origin, tag, support } => {
                field("origin", JsonValue::U64(origin.index() as u64));
                field("tag", JsonValue::str(tag));
                field("support", JsonValue::U64(*support));
            }
            Event::RbcFragment { origin, tag, index, verified } => {
                field("origin", JsonValue::U64(origin.index() as u64));
                field("tag", JsonValue::str(tag));
                field("index", JsonValue::U64(*index));
                field("verified", JsonValue::Bool(*verified));
            }
            Event::RbcReconstructed { origin, tag, fragments, bytes, consistent } => {
                field("origin", JsonValue::U64(origin.index() as u64));
                field("tag", JsonValue::str(tag));
                field("fragments", JsonValue::U64(*fragments));
                field("bytes", JsonValue::U64(*bytes));
                field("consistent", JsonValue::Bool(*consistent));
            }
            Event::RoundStarted { round } | Event::RoundCompleted { round } => {
                field("round", JsonValue::U64(*round));
            }
            Event::StepEntered { round, step } => {
                field("round", JsonValue::U64(*round));
                field("step", JsonValue::str(step.to_string()));
            }
            Event::QuorumReached { round, step, support } => {
                field("round", JsonValue::U64(*round));
                field("step", JsonValue::str(step.to_string()));
                field("support", JsonValue::U64(*support));
            }
            Event::MessageValidated { origin, round, step, value, flagged } => {
                field("origin", JsonValue::U64(origin.index() as u64));
                field("round", JsonValue::U64(*round));
                field("step", JsonValue::str(step.to_string()));
                field("value", JsonValue::U64(value.index() as u64));
                field("flagged", JsonValue::Bool(*flagged));
            }
            Event::MessageRejected { origin, round, reason } => {
                field("origin", JsonValue::U64(origin.index() as u64));
                field("round", JsonValue::U64(*round));
                field("reason", JsonValue::str(*reason));
            }
            Event::CoinFlipped { round, value, scheme } => {
                field("round", JsonValue::U64(*round));
                field("value", JsonValue::U64(value.index() as u64));
                field("scheme", JsonValue::str(*scheme));
            }
            Event::ValueLocked { round, value, support } => {
                field("round", JsonValue::U64(*round));
                field("value", JsonValue::U64(value.index() as u64));
                field("support", JsonValue::U64(*support));
            }
            Event::Decided { round, value } => {
                field("round", JsonValue::U64(*round));
                field("value", JsonValue::U64(value.index() as u64));
            }
            Event::SpanStart { trace, span, parent, phase } => {
                field("trace", JsonValue::U64(*trace));
                field("span", JsonValue::U64(*span));
                field("parent", JsonValue::U64(*parent));
                field("phase", JsonValue::str(phase.name()));
                if phase.round() > 0 {
                    field("round", JsonValue::U64(phase.round()));
                }
            }
            Event::SpanEnd { trace, span } => {
                field("trace", JsonValue::U64(*trace));
                field("span", JsonValue::U64(*span));
            }
            Event::InvariantViolated { round, detail } => {
                field("round", JsonValue::U64(*round));
                field("detail", JsonValue::str(detail));
            }
        }
        JsonValue::Obj(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let events = [
            Event::MessageSent { to: NodeId::new(0), kind: "x", bytes: 1 },
            Event::MessageDelivered { from: NodeId::new(0), kind: "x" },
            Event::MessageDropped { from: NodeId::new(0) },
            Event::QueueDepth { depth: 0 },
            Event::NodeHalted,
            Event::RoundStarted { round: 1 },
            Event::RoundCompleted { round: 1 },
            Event::StepEntered { round: 1, step: Step::Initial },
            Event::QuorumReached { round: 1, step: Step::Initial, support: 3 },
            Event::CoinFlipped { round: 1, value: Value::One, scheme: "local" },
            Event::ValueLocked { round: 1, value: Value::One, support: 3 },
            Event::Decided { round: 1, value: Value::One },
            Event::FrameSequenceGap { from: NodeId::new(0), expected: 1, got: 3 },
            Event::PayloadRejected { len: 9 },
            Event::LinkLogPeak { peer: NodeId::new(0), frames: 17 },
            Event::PoisonDetected { context: "writer" },
            Event::GatewayAccepted { client: 7, seq: 1 },
            Event::GatewayNacked { client: 7, seq: 2, reason: "backpressure" },
            Event::GatewayCommitted { client: 7, seq: 1, epoch: 0 },
            Event::EpochStarted { epoch: 0 },
            Event::EpochCommitted { epoch: 0, slots: 3, txs: 12 },
            Event::BatchSubmitted { epoch: 0, txs: 4, bytes: 64 },
            Event::LogDelivered { epoch: 0, entries: 12, total: 12 },
            Event::SlotApplied { epoch: 0, proposer: NodeId::new(1), bytes: 16 },
            Event::CheckpointProposed { epoch: 4, hash: 7 },
            Event::CheckpointCertified { epoch: 4, hash: 7, support: 3 },
            Event::StateTransferStarted { epoch: 4 },
            Event::StateTransferCompleted { epoch: 4, bytes: 128 },
            Event::RbcFragment {
                origin: NodeId::new(0),
                tag: String::new(),
                index: 1,
                verified: true,
            },
            Event::RbcReconstructed {
                origin: NodeId::new(0),
                tag: String::new(),
                fragments: 2,
                bytes: 64,
                consistent: true,
            },
            Event::SpanStart { trace: 1, span: 2, parent: 0, phase: TracePhase::Submit },
            Event::SpanEnd { trace: 1, span: 2 },
        ];
        let names: std::collections::HashSet<&str> = events.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), events.len());
    }

    #[test]
    fn json_line_shape() {
        let e = Event::Decided { round: 3, value: Value::One };
        let line = e.to_json(42, NodeId::new(2)).to_string();
        assert_eq!(line, r#"{"t":42,"node":2,"ev":"decided","round":3,"value":1}"#);
    }

    #[test]
    fn span_json_shape() {
        let e = Event::SpanStart { trace: 7, span: 9, parent: 0, phase: TracePhase::AbaRound(2) };
        let line = e.to_json(5, NodeId::new(1)).to_string();
        assert_eq!(
            line,
            r#"{"t":5,"node":1,"ev":"span_start","trace":7,"span":9,"parent":0,"phase":"aba_round","round":2}"#
        );
        let e = Event::SpanEnd { trace: 7, span: 9 };
        assert_eq!(
            e.to_json(6, NodeId::new(1)).to_string(),
            r#"{"t":6,"node":1,"ev":"span_end","trace":7,"span":9}"#
        );
    }
}
