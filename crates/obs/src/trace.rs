//! Causal tracing: deterministic trace/span identities, the span phase
//! taxonomy, and the online trace assembler.
//!
//! A **trace** follows one proposer's batch through the whole stack:
//! submission into `bft-order`, reliable broadcast of the batch, the
//! per-slot ABA instance, and the final total-order commit. Every phase
//! of that journey is a **span** — an interval `[start, end]` observed
//! at one node — and all spans of a batch share one trace id.
//!
//! Identities are *derived*, never negotiated: the trace id is a hash of
//! `(proposer, epoch, batch_seq)` and every span id is a hash of
//! `(trace, node, phase)`. Any node (and any offline analyzer) can
//! reconstruct the full causal tree without extra coordination, and two
//! same-seed simulator runs produce byte-identical trees.
//!
//! The phase taxonomy, in causal order:
//!
//! | phase | opens | closes |
//! |-------|-------|--------|
//! | `submit` | payload handed to the proposer | proposer appends the epoch to its log |
//! | `batch_wait` | payload handed to the proposer | batch proposed into an epoch |
//! | `rbc_echo` | node broadcasts its Echo | node broadcasts its Ready |
//! | `rbc_ready` | node broadcasts its Ready | RBC delivery (`2f + 1` Readys) |
//! | `aba_round` | ABA round started | ABA round completed |
//! | `coin_wait` | node entered the Ready step | the shared/local coin flipped |
//! | `commit` | epoch's ACS decided | epoch appended to the ordered log |
//! | `apply` | slot handed to the state machine | slot applied |
//!
//! `submit` is the **root** span: its duration is the transaction's
//! end-to-end latency at the proposer, and the critical-path report
//! attributes every instant of it to the deepest concurrently-open
//! descendant phase (residual time is reported as `other`), so the
//! per-phase breakdown sums exactly to the measured latency.

use crate::json::JsonValue;
use crate::{Event, Obs, Sink};
use bft_stats::{Histogram, Samples};
use bft_types::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// The phase a span measures. `AbaRound` and `CoinWait` carry the
/// 1-based ABA round number; the other phases occur once per
/// `(trace, node)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePhase {
    /// Root span: submission at the proposer → proposer's log append.
    Submit,
    /// Submission at the proposer → inclusion in a proposed batch.
    BatchWait,
    /// Echo broadcast → Ready broadcast, per node, for the batch RBC.
    RbcEcho,
    /// Ready broadcast → reliable delivery, per node, for the batch RBC.
    RbcReady,
    /// Delivery-quorum reached → payload reconstructed, per node, for a
    /// coded batch RBC (fragment-wait plus decode time).
    RbcReconstruct,
    /// One ABA round (started → completed) of the slot's ABA instance.
    AbaRound(u64),
    /// Ready-step entry → coin flip within one ABA round.
    CoinWait(u64),
    /// Epoch ACS decided → epoch appended to the ordered log.
    Commit,
    /// Slot handed to the replicated state machine → slot applied, per
    /// node. Instantaneous today (apply is synchronous with the log
    /// append) but anchors where the slot landed in application state.
    Apply,
}

impl TracePhase {
    /// Every phase kind in causal (and report) order, with round 0 for
    /// the per-round phases.
    pub const ALL: [TracePhase; 9] = [
        TracePhase::Submit,
        TracePhase::BatchWait,
        TracePhase::RbcEcho,
        TracePhase::RbcReady,
        TracePhase::RbcReconstruct,
        TracePhase::AbaRound(0),
        TracePhase::CoinWait(0),
        TracePhase::Commit,
        TracePhase::Apply,
    ];

    /// A stable snake_case label (the `phase` field of the JSONL schema).
    pub const fn name(self) -> &'static str {
        match self {
            TracePhase::Submit => "submit",
            TracePhase::BatchWait => "batch_wait",
            TracePhase::RbcEcho => "rbc_echo",
            TracePhase::RbcReady => "rbc_ready",
            TracePhase::RbcReconstruct => "rbc_reconstruct",
            TracePhase::AbaRound(_) => "aba_round",
            TracePhase::CoinWait(_) => "coin_wait",
            TracePhase::Commit => "commit",
            TracePhase::Apply => "apply",
        }
    }

    /// A stable numeric code, used in span-id derivation and as the
    /// tie-break priority of the critical-path sweep (later phases win).
    pub const fn code(self) -> u64 {
        match self {
            TracePhase::Submit => 0,
            TracePhase::BatchWait => 1,
            TracePhase::RbcEcho => 2,
            TracePhase::RbcReady => 3,
            // Appended after the original seven so existing span-id
            // derivations stay stable; causally it sits between RbcReady
            // and Commit.
            TracePhase::RbcReconstruct => 7,
            TracePhase::AbaRound(_) => 4,
            TracePhase::CoinWait(_) => 5,
            TracePhase::Commit => 6,
            // Appended after RbcReconstruct for the same stability
            // reason; causally it follows Commit.
            TracePhase::Apply => 8,
        }
    }

    /// The ABA round carried by the per-round phases; 0 otherwise.
    pub const fn round(self) -> u64 {
        match self {
            TracePhase::AbaRound(r) | TracePhase::CoinWait(r) => r,
            _ => 0,
        }
    }

    /// Reconstructs a phase from its JSONL `(phase, round)` fields — the
    /// inverse of [`TracePhase::name`] / [`TracePhase::round`].
    pub fn from_parts(name: &str, round: u64) -> Option<TracePhase> {
        match name {
            "submit" => Some(TracePhase::Submit),
            "batch_wait" => Some(TracePhase::BatchWait),
            "rbc_echo" => Some(TracePhase::RbcEcho),
            "rbc_ready" => Some(TracePhase::RbcReady),
            "rbc_reconstruct" => Some(TracePhase::RbcReconstruct),
            "aba_round" => Some(TracePhase::AbaRound(round)),
            "coin_wait" => Some(TracePhase::CoinWait(round)),
            "commit" => Some(TracePhase::Commit),
            "apply" => Some(TracePhase::Apply),
            _ => None,
        }
    }
}

impl fmt::Display for TracePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TracePhase::AbaRound(r) => write!(f, "aba_round[{r}]"),
            TracePhase::CoinWait(r) => write!(f, "coin_wait[{r}]"),
            other => f.write_str(other.name()),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a word sequence — the same hash family the transport's
/// frame trailer uses, applied to little-endian word bytes.
fn fnv_words(words: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// The deterministic span id of `phase` observed at `node` within
/// `trace`.
pub fn span_id(trace: u64, node: NodeId, phase: TracePhase) -> u64 {
    fnv_words(&[trace, node.index() as u64, phase.code(), phase.round()])
}

/// The causal identity stamped on a proposer's batch: the trace id plus
/// the root (`submit`) span id every direct child span points at.
///
/// Both ids are pure functions of `(proposer, epoch, batch_seq)`, so any
/// component — and any offline analyzer — re-derives them locally;
/// nothing about the identity needs to travel for the tree to
/// reconstruct. (The transport still carries the trace id in its frame
/// envelope so captures can be correlated without decoding payloads.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceCtx {
    /// The trace id shared by every span of this batch's journey.
    pub trace: u64,
    /// The root (`submit`) span id, the `parent` of all direct children.
    pub root: u64,
}

impl TraceCtx {
    /// Derives the trace identity of `proposer`'s batch `batch_seq`
    /// proposed into `epoch`. Today each proposer submits exactly one
    /// batch per epoch, so callers pass `batch_seq == epoch`; the extra
    /// parameter keeps the id space ready for multi-batch epochs.
    pub fn derive(proposer: NodeId, epoch: u64, batch_seq: u64) -> TraceCtx {
        let trace = fnv_words(&[proposer.index() as u64, epoch, batch_seq]);
        TraceCtx { trace, root: span_id(trace, proposer, TracePhase::Submit) }
    }

    /// The span id of `phase` at `node` within this trace.
    pub fn span(&self, node: NodeId, phase: TracePhase) -> u64 {
        span_id(self.trace, node, phase)
    }
}

impl Obs {
    /// Emits a `SpanStart` for `phase` at `node` under `ctx`. `parent`
    /// is the enclosing span (the trace root for direct children, 0 for
    /// the root itself).
    pub fn span_start(&self, node: NodeId, ctx: TraceCtx, phase: TracePhase, parent: u64) {
        if !self.spans_enabled() {
            return;
        }
        self.emit(node, || Event::SpanStart {
            trace: ctx.trace,
            span: ctx.span(node, phase),
            parent,
            phase,
        });
    }

    /// [`Obs::span_start`] with an explicit timestamp — used to open a
    /// span retroactively once its outcome is known (e.g. `coin_wait`
    /// opens at Ready-step entry but is only emitted if a flip happens).
    pub fn span_start_at(
        &self,
        at: u64,
        node: NodeId,
        ctx: TraceCtx,
        phase: TracePhase,
        parent: u64,
    ) {
        if !self.spans_enabled() {
            return;
        }
        self.emit_at(at, node, || Event::SpanStart {
            trace: ctx.trace,
            span: ctx.span(node, phase),
            parent,
            phase,
        });
    }

    /// Emits the `SpanEnd` matching [`Obs::span_start`].
    pub fn span_end(&self, node: NodeId, ctx: TraceCtx, phase: TracePhase) {
        if !self.spans_enabled() {
            return;
        }
        self.emit(node, || Event::SpanEnd { trace: ctx.trace, span: ctx.span(node, phase) });
    }
}

/// One assembled span: the interval `phase` occupied at `node`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The owning trace.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// The enclosing span's id (0 for the trace root).
    pub parent: u64,
    /// The observing node.
    pub node: NodeId,
    /// The measured phase.
    pub phase: TracePhase,
    /// Open timestamp.
    pub start: u64,
    /// Close timestamp; `None` while the span is still open.
    pub end: Option<u64>,
}

/// Assembles `SpanStart` / `SpanEnd` events into per-trace span trees
/// and computes the latency-attribution statistics over them.
///
/// Used online (behind [`TraceSink`]) and offline (`abtrace` feeds it
/// from a JSONL export); both paths produce identical trees for the
/// same event stream.
#[derive(Clone, Debug, Default)]
pub struct TraceAssembler {
    // Keyed for replay-stable iteration; span ids are node-scoped by
    // derivation, so (trace, span) is already unique across nodes.
    spans: BTreeMap<(u64, u64), SpanRecord>,
    duplicate_starts: u64,
    unmatched_ends: u64,
}

impl TraceAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one event; non-span events are ignored.
    pub fn on_event(&mut self, at: u64, node: NodeId, event: &Event) {
        match event {
            Event::SpanStart { trace, span, parent, phase } => {
                let key = (*trace, *span);
                if self.spans.contains_key(&key) {
                    self.duplicate_starts += 1;
                    return;
                }
                self.spans.insert(
                    key,
                    SpanRecord {
                        trace: *trace,
                        span: *span,
                        parent: *parent,
                        node,
                        phase: *phase,
                        start: at,
                        end: None,
                    },
                );
            }
            Event::SpanEnd { trace, span } => match self.spans.get_mut(&(*trace, *span)) {
                Some(record) if record.end.is_none() => record.end = Some(at),
                _ => self.unmatched_ends += 1,
            },
            _ => {}
        }
    }

    /// All assembled spans in `(trace, span)` order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.values()
    }

    /// Spans opened but never closed.
    pub fn open_spans(&self) -> usize {
        self.spans.values().filter(|s| s.end.is_none()).count()
    }

    /// `SpanStart`s re-emitted for an existing `(trace, span)`.
    pub fn duplicate_starts(&self) -> u64 {
        self.duplicate_starts
    }

    /// `SpanEnd`s with no matching open span.
    pub fn unmatched_ends(&self) -> u64 {
        self.unmatched_ends
    }

    /// Distinct trace ids observed.
    pub fn trace_count(&self) -> usize {
        let mut count = 0usize;
        let mut last: Option<u64> = None;
        for &(trace, _) in self.spans.keys() {
            if last != Some(trace) {
                count += 1;
                last = Some(trace);
            }
        }
        count
    }

    /// Trace ids in ascending order.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.spans.keys().map(|&(trace, _)| trace).collect();
        ids.dedup();
        ids
    }

    fn trace_spans(&self, trace: u64) -> impl Iterator<Item = &SpanRecord> {
        self.spans.range((trace, 0)..=(trace, u64::MAX)).map(|(_, record)| record)
    }

    /// The root (`submit`) span of `trace`, if observed.
    pub fn root(&self, trace: u64) -> Option<&SpanRecord> {
        self.trace_spans(trace).find(|s| s.phase == TracePhase::Submit)
    }

    /// Completed-span durations grouped by phase name, in taxonomy
    /// order. Per-round phases collapse onto one entry.
    pub fn phase_durations(&self) -> Vec<(&'static str, Samples)> {
        let mut by_phase: BTreeMap<u64, Samples> = BTreeMap::new();
        for record in self.spans.values() {
            if let Some(end) = record.end {
                by_phase
                    .entry(record.phase.code())
                    .or_default()
                    .add(end.saturating_sub(record.start) as f64);
            }
        }
        TracePhase::ALL
            .iter()
            .map(|phase| (phase.name(), by_phase.remove(&phase.code()).unwrap_or_default()))
            .collect()
    }

    /// The critical-path breakdown of `trace` at its proposer: every
    /// instant of the root span attributed to the deepest concurrently
    /// open proposer-local descendant phase (`"other"` when none
    /// covers), so the parts sum exactly to the root duration.
    ///
    /// `None` when the trace has no completed root span.
    pub fn critical_path(&self, trace: u64) -> Option<Vec<(&'static str, u64)>> {
        let root = self.root(trace)?.clone();
        let root_end = root.end?;
        // Proposer-local descendant intervals, clamped to the root span.
        let covers: Vec<(u64, u64, TracePhase)> = self
            .trace_spans(trace)
            .filter(|s| s.node == root.node && s.phase != TracePhase::Submit)
            .filter_map(|s| {
                let end = s.end?.min(root_end);
                let start = s.start.max(root.start);
                (start < end).then_some((start, end, s.phase))
            })
            .collect();
        let mut cuts: Vec<u64> = covers
            .iter()
            .flat_map(|&(start, end, _)| [start, end])
            .chain([root.start, root_end])
            .collect();
        cuts.sort_unstable();
        cuts.dedup();

        let mut by_name: BTreeMap<&'static str, u64> = BTreeMap::new();
        for pair in cuts.windows(2) {
            let (Some(&lo), Some(&hi)) = (pair.first(), pair.last()) else { continue };
            // The deepest open phase: latest start wins, phase code
            // breaking ties (a commit beats the ABA round it overlaps).
            let deepest = covers
                .iter()
                .filter(|&&(start, end, _)| start <= lo && end >= hi)
                .max_by_key(|&&(start, _, phase)| (start, phase.code(), phase.round()));
            let name = deepest.map_or("other", |&(_, _, phase)| phase.name());
            *by_name.entry(name).or_insert(0) += hi - lo;
        }
        let mut breakdown: Vec<(&'static str, u64)> = TracePhase::ALL
            .iter()
            .filter(|phase| **phase != TracePhase::Submit)
            .filter_map(|phase| by_name.remove(phase.name()).map(|ticks| (phase.name(), ticks)))
            .collect();
        if let Some(other) = by_name.remove("other") {
            breakdown.push(("other", other));
        }
        Some(breakdown)
    }

    /// ABA rounds run per `(trace, node)` instance — the distribution
    /// the O(1)-expected-rounds claim is about.
    pub fn aba_round_counts(&self) -> Histogram {
        let mut per_instance: BTreeMap<(u64, NodeId), u64> = BTreeMap::new();
        for record in self.spans.values() {
            if let TracePhase::AbaRound(_) = record.phase {
                *per_instance.entry((record.trace, record.node)).or_insert(0) += 1;
            }
        }
        per_instance.values().copied().collect()
    }

    /// The canonical tree rendering: one sorted line per span, with
    /// timestamps — byte-identical across same-seed simulator runs.
    pub fn canonical_lines(&self) -> Vec<String> {
        self.spans
            .values()
            .map(|s| {
                format!(
                    "trace={:016x} span={:016x} parent={:016x} node={} phase={} start={} end={}",
                    s.trace,
                    s.span,
                    s.parent,
                    s.node.index(),
                    s.phase,
                    s.start,
                    s.end.map_or_else(|| "open".to_string(), |e| e.to_string()),
                )
            })
            .collect()
    }

    /// The timestamp-free tree shape: per trace, the sorted set of
    /// `(node, phase)` pairs — the substrate-independent skeleton used
    /// by the sim/runtime parity test.
    pub fn phase_sets(&self) -> BTreeMap<u64, Vec<(usize, String)>> {
        let mut out: BTreeMap<u64, Vec<(usize, String)>> = BTreeMap::new();
        for s in self.spans.values() {
            out.entry(s.trace).or_default().push((s.node.index(), s.phase.to_string()));
        }
        for set in out.values_mut() {
            set.sort();
            set.dedup();
        }
        out
    }

    /// The deterministic `"tracing"` section of the bench report:
    /// per-phase p50/p99, the summed critical-path breakdown, and the
    /// per-instance ABA round-count distribution.
    pub fn to_json(&self) -> JsonValue {
        let traces = self.trace_ids();
        let mut complete = 0u64;
        let mut path_total = 0u64;
        let mut path_by_phase: BTreeMap<&'static str, u64> = BTreeMap::new();
        for &trace in &traces {
            if let Some(breakdown) = self.critical_path(trace) {
                complete += 1;
                for (name, ticks) in breakdown {
                    path_total += ticks;
                    *path_by_phase.entry(name).or_insert(0) += ticks;
                }
            }
        }
        let phases: Vec<JsonValue> = self
            .phase_durations()
            .into_iter()
            .map(|(name, mut samples)| {
                JsonValue::Obj(vec![
                    ("phase".into(), JsonValue::str(name)),
                    ("count".into(), JsonValue::U64(samples.len() as u64)),
                    ("p50".into(), JsonValue::F64(samples.percentile(50.0).unwrap_or(0.0))),
                    ("p99".into(), JsonValue::F64(samples.percentile(99.0).unwrap_or(0.0))),
                    ("max".into(), JsonValue::F64(samples.max().unwrap_or(0.0))),
                ])
            })
            .collect();
        let path: Vec<JsonValue> = path_by_phase
            .iter()
            .map(|(name, ticks)| {
                JsonValue::Obj(vec![
                    ("phase".into(), JsonValue::str(*name)),
                    ("ticks".into(), JsonValue::U64(*ticks)),
                ])
            })
            .collect();
        let rounds: Vec<JsonValue> = self
            .aba_round_counts()
            .iter()
            .map(|(rounds, instances)| {
                JsonValue::Obj(vec![
                    ("rounds".into(), JsonValue::U64(rounds)),
                    ("instances".into(), JsonValue::U64(instances)),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("traces".into(), JsonValue::U64(traces.len() as u64)),
            ("complete".into(), JsonValue::U64(complete)),
            ("open_spans".into(), JsonValue::U64(self.open_spans() as u64)),
            ("anomalies".into(), JsonValue::U64(self.duplicate_starts + self.unmatched_ends)),
            ("phase_latency".into(), JsonValue::Arr(phases)),
            (
                "critical_path".into(),
                JsonValue::Obj(vec![
                    ("total_ticks".into(), JsonValue::U64(path_total)),
                    ("phases".into(), JsonValue::Arr(path)),
                ]),
            ),
            ("aba_rounds_per_instance".into(), JsonValue::Arr(rounds)),
        ])
    }

    /// The human-readable latency-attribution report printed by
    /// `abtrace`.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let traces = self.trace_ids();
        out.push_str(&format!(
            "traces: {}   open spans: {}   anomalies: {}\n\n",
            traces.len(),
            self.open_spans(),
            self.duplicate_starts + self.unmatched_ends,
        ));
        out.push_str("per-phase latency (ticks/us)\n");
        out.push_str(&format!(
            "{:<12} {:>8} {:>10} {:>10} {:>10}\n",
            "phase", "count", "p50", "p99", "max"
        ));
        for (name, mut samples) in self.phase_durations() {
            out.push_str(&format!(
                "{:<12} {:>8} {:>10.1} {:>10.1} {:>10.1}\n",
                name,
                samples.len(),
                samples.percentile(50.0).unwrap_or(0.0),
                samples.percentile(99.0).unwrap_or(0.0),
                samples.max().unwrap_or(0.0),
            ));
        }

        let mut complete = 0u64;
        let mut path_total = 0u64;
        let mut by_phase: BTreeMap<&'static str, u64> = BTreeMap::new();
        for &trace in &traces {
            if let Some(breakdown) = self.critical_path(trace) {
                complete += 1;
                for (name, ticks) in breakdown {
                    path_total += ticks;
                    *by_phase.entry(name).or_insert(0) += ticks;
                }
            }
        }
        out.push_str(&format!(
            "\ncritical path (submit -> commit), {complete} complete traces, \
             total {path_total}\n"
        ));
        for (name, ticks) in &by_phase {
            let share =
                if path_total > 0 { *ticks as f64 * 100.0 / path_total as f64 } else { 0.0 };
            out.push_str(&format!("{name:<12} {ticks:>10}  {share:>5.1}%\n"));
        }

        let rounds = self.aba_round_counts();
        out.push_str(&format!(
            "\nABA rounds per instance (mean {:.2}, expected O(1))\n",
            rounds.mean()
        ));
        for (value, count) in rounds.iter() {
            out.push_str(&format!("{value:>6} rounds | {count} instances\n"));
        }
        out
    }
}

/// A [`Sink`] that assembles the span stream online. Compose it behind a
/// [`crate::Tee`] to collect metrics and traces from one run.
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    assembler: TraceAssembler,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The assembled trace trees so far.
    pub fn assembler(&self) -> &TraceAssembler {
        &self.assembler
    }

    /// Consumes the sink, returning the assembler.
    pub fn into_assembler(self) -> TraceAssembler {
        self.assembler
    }
}

impl Sink for TraceSink {
    fn on_event(&mut self, at: u64, node: NodeId, event: &Event) {
        self.assembler.on_event(at, node, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn ids_are_deterministic_and_distinct() {
        let a = TraceCtx::derive(node(1), 3, 3);
        let b = TraceCtx::derive(node(1), 3, 3);
        assert_eq!(a, b);
        assert_ne!(a.trace, TraceCtx::derive(node(2), 3, 3).trace);
        assert_ne!(a.trace, TraceCtx::derive(node(1), 4, 4).trace);
        // Span ids separate by node, phase and round.
        assert_ne!(a.span(node(0), TracePhase::RbcEcho), a.span(node(1), TracePhase::RbcEcho));
        assert_ne!(a.span(node(0), TracePhase::RbcEcho), a.span(node(0), TracePhase::RbcReady));
        assert_ne!(
            a.span(node(0), TracePhase::AbaRound(1)),
            a.span(node(0), TracePhase::AbaRound(2))
        );
        assert_eq!(a.root, a.span(node(1), TracePhase::Submit));
    }

    #[test]
    fn phase_parts_round_trip() {
        for phase in [
            TracePhase::Submit,
            TracePhase::BatchWait,
            TracePhase::RbcEcho,
            TracePhase::RbcReady,
            TracePhase::AbaRound(4),
            TracePhase::CoinWait(2),
            TracePhase::Commit,
        ] {
            assert_eq!(TracePhase::from_parts(phase.name(), phase.round()), Some(phase));
        }
        assert_eq!(TracePhase::from_parts("nope", 0), None);
    }

    #[test]
    fn assembler_matches_starts_and_ends() {
        let ctx = TraceCtx::derive(node(0), 0, 0);
        let mut asm = TraceAssembler::new();
        let start = Event::SpanStart {
            trace: ctx.trace,
            span: ctx.span(node(0), TracePhase::RbcEcho),
            parent: ctx.root,
            phase: TracePhase::RbcEcho,
        };
        let end = Event::SpanEnd { trace: ctx.trace, span: ctx.span(node(0), TracePhase::RbcEcho) };
        asm.on_event(3, node(0), &start);
        assert_eq!(asm.open_spans(), 1);
        asm.on_event(7, node(0), &end);
        assert_eq!(asm.open_spans(), 0);
        // Duplicates and orphans are counted, not panicked over.
        asm.on_event(8, node(0), &start);
        asm.on_event(9, node(0), &end);
        assert_eq!(asm.duplicate_starts(), 1);
        assert_eq!(asm.unmatched_ends(), 1);
        let spans: Vec<&SpanRecord> = asm.spans().collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans.first().map(|s| (s.start, s.end)), Some((3, Some(7))));
    }

    /// Builds a small single-node trace: root [0, 100], batch_wait
    /// [0, 10], rbc phases [10, 40], two ABA rounds [40, 80] with a coin
    /// wait, commit [90, 100]; [80, 90] is uncovered.
    fn scripted_trace(asm: &mut TraceAssembler) -> u64 {
        let p = node(0);
        let ctx = TraceCtx::derive(p, 0, 0);
        let mut open = |at: u64, phase: TracePhase, parent: u64| {
            asm.on_event(
                at,
                p,
                &Event::SpanStart { trace: ctx.trace, span: ctx.span(p, phase), parent, phase },
            );
        };
        open(0, TracePhase::Submit, 0);
        open(0, TracePhase::BatchWait, ctx.root);
        open(10, TracePhase::RbcEcho, ctx.root);
        open(25, TracePhase::RbcReady, ctx.root);
        open(40, TracePhase::AbaRound(1), ctx.root);
        open(50, TracePhase::CoinWait(1), ctx.span(p, TracePhase::AbaRound(1)));
        open(60, TracePhase::AbaRound(2), ctx.root);
        open(90, TracePhase::Commit, ctx.root);
        let mut close = |at: u64, phase: TracePhase| {
            asm.on_event(at, p, &Event::SpanEnd { trace: ctx.trace, span: ctx.span(p, phase) });
        };
        close(10, TracePhase::BatchWait);
        close(25, TracePhase::RbcEcho);
        close(40, TracePhase::RbcReady);
        close(60, TracePhase::AbaRound(1));
        close(55, TracePhase::CoinWait(1));
        close(80, TracePhase::AbaRound(2));
        close(100, TracePhase::Commit);
        close(100, TracePhase::Submit);
        ctx.trace
    }

    #[test]
    fn critical_path_sums_to_root_duration() {
        let mut asm = TraceAssembler::new();
        let trace = scripted_trace(&mut asm);
        assert_eq!(asm.open_spans(), 0);
        let breakdown = asm.critical_path(trace).expect("root completed");
        let total: u64 = breakdown.iter().map(|&(_, t)| t).sum();
        assert_eq!(total, 100, "attribution must cover the whole root span: {breakdown:?}");
        let by: BTreeMap<&str, u64> = breakdown.iter().copied().collect();
        assert_eq!(by.get("batch_wait"), Some(&10));
        assert_eq!(by.get("rbc_echo"), Some(&15));
        assert_eq!(by.get("rbc_ready"), Some(&15));
        // Coin wait [50, 55] is deeper than ABA round 1 [40, 60];
        // round 2 [60, 80] is deeper than round 1's tail.
        assert_eq!(by.get("coin_wait"), Some(&5));
        assert_eq!(by.get("aba_round"), Some(&35));
        assert_eq!(by.get("commit"), Some(&10));
        assert_eq!(by.get("other"), Some(&10));
    }

    #[test]
    fn aba_round_histogram_counts_rounds_per_instance() {
        let mut asm = TraceAssembler::new();
        scripted_trace(&mut asm);
        let h = asm.aba_round_counts();
        assert_eq!(h.count(), 1);
        assert_eq!(h.count_at(2), 1);
    }

    #[test]
    fn json_and_report_are_stable() {
        let mut asm = TraceAssembler::new();
        scripted_trace(&mut asm);
        let json = asm.to_json().to_string();
        assert!(json.contains(r#""traces":1"#));
        assert!(json.contains(r#""complete":1"#));
        assert!(json.contains(r#""anomalies":0"#));
        assert!(json.contains(r#""phase":"commit""#));
        let report = asm.render_report();
        assert!(report.contains("critical path"));
        assert!(report.contains("commit"));
        assert_eq!(asm.to_json().to_string(), json, "re-rendering is pure");
    }

    #[test]
    fn canonical_lines_and_phase_sets() {
        let mut a = TraceAssembler::new();
        let mut b = TraceAssembler::new();
        scripted_trace(&mut a);
        scripted_trace(&mut b);
        assert_eq!(a.canonical_lines(), b.canonical_lines());
        let sets = a.phase_sets();
        assert_eq!(sets.len(), 1);
        let Some(set) = sets.values().next() else { panic!("one trace") };
        assert!(set.contains(&(0, "submit".to_string())));
        assert!(set.contains(&(0, "aba_round[2]".to_string())));
    }
}
