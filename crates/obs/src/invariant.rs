//! Online checking of the consensus correctness properties.

use crate::{Event, Sink};
use bft_types::{NodeId, Step, Value};
use std::collections::BTreeMap;

/// Checks agreement, validity and per-node sanity **while the run
/// executes**, from the event stream alone.
///
/// Checked online (each violation is recorded as a human-readable
/// string):
///
/// * **Agreement** — no two `Decided` events carry different values.
/// * **No double decide** — a node emits `Decided` at most once.
/// * **Validity** — when constructed with [`expecting`](Self::expecting)
///   (unanimous-input runs), every decision must equal the expected
///   value.
/// * **Consistent validation** — all observers that validate a payload
///   keyed by `(origin, round, step)` must see the same
///   `(value, flagged)` pair; reliable broadcast guarantees this, so a
///   mismatch means equivocation leaked through.
/// * **Round monotonicity** — each node's `RoundStarted` rounds strictly
///   increase.
///
/// **Totality** needs the run's end: call [`finish`](Self::finish) with
/// the correct nodes once the run stops.
#[derive(Debug, Default)]
pub struct InvariantSink {
    expected: Option<Value>,
    decided: BTreeMap<NodeId, Value>,
    validated: BTreeMap<(NodeId, u64, Step), (Value, bool)>,
    last_round: BTreeMap<NodeId, u64>,
    violations: Vec<String>,
}

impl InvariantSink {
    /// A checker with no validity expectation (mixed-input runs).
    pub fn new() -> Self {
        Self::default()
    }

    /// A checker for a unanimous-input run: every decision must be
    /// `expected`.
    pub fn expecting(expected: Value) -> Self {
        InvariantSink { expected: Some(expected), ..Self::default() }
    }

    /// Whether any invariant has been violated so far.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// The decisions observed so far.
    pub fn decided(&self) -> &BTreeMap<NodeId, Value> {
        &self.decided
    }

    /// Runs the end-of-run totality check: if any of `correct` decided,
    /// all of them must have. Returns the violations accumulated over
    /// the whole run (empty slice = all invariants hold).
    pub fn finish(&mut self, correct: &[NodeId]) -> &[String] {
        let any = correct.iter().any(|n| self.decided.contains_key(n));
        if any {
            for &node in correct {
                if !self.decided.contains_key(&node) {
                    self.violations
                        .push(format!("totality: {node:?} is correct but never decided"));
                }
            }
        }
        &self.violations
    }
}

impl Sink for InvariantSink {
    fn on_event(&mut self, _at: u64, node: NodeId, event: &Event) {
        match event {
            Event::Decided { round, value } => {
                if let Some(expected) = self.expected {
                    if *value != expected {
                        self.violations.push(format!(
                            "validity: {node:?} decided {value:?} in round {round}, expected {expected:?}"
                        ));
                    }
                }
                if let Some((other, prior)) = self.decided.iter().find(|(_, v)| **v != *value) {
                    self.violations.push(format!(
                        "agreement: {node:?} decided {value:?} in round {round} but {other:?} decided {prior:?}"
                    ));
                }
                if self.decided.insert(node, *value).is_some() {
                    self.violations.push(format!("double decide: {node:?} decided twice"));
                }
            }
            Event::MessageValidated { origin, round, step, value, flagged } => {
                let key = (*origin, *round, *step);
                let payload = (*value, *flagged);
                match self.validated.get(&key) {
                    Some(prior) if *prior != payload => {
                        self.violations.push(format!(
                            "equivocation: payload from {origin:?} in round {round} step {step} \
                             validated as {payload:?} at {node:?} but as {prior:?} elsewhere"
                        ));
                    }
                    Some(_) => {}
                    None => {
                        self.validated.insert(key, payload);
                    }
                }
            }
            Event::InvariantViolated { round, detail } => {
                self.violations.push(format!("protocol error: {node:?} round {round}: {detail}"));
            }
            Event::RoundStarted { round } => {
                if let Some(last) = self.last_round.get(&node) {
                    if *round <= *last {
                        self.violations.push(format!(
                            "round order: {node:?} started round {round} after round {last}"
                        ));
                    }
                }
                self.last_round.insert(node, *round);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_is_ok() {
        let mut sink = InvariantSink::expecting(Value::One);
        for i in 0..4 {
            let node = NodeId::new(i);
            sink.on_event(0, node, &Event::RoundStarted { round: 1 });
            sink.on_event(5, node, &Event::Decided { round: 1, value: Value::One });
        }
        let correct: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        assert!(sink.finish(&correct).is_empty());
    }

    #[test]
    fn detects_disagreement() {
        let mut sink = InvariantSink::new();
        sink.on_event(1, NodeId::new(0), &Event::Decided { round: 1, value: Value::Zero });
        sink.on_event(2, NodeId::new(1), &Event::Decided { round: 1, value: Value::One });
        assert!(!sink.is_ok());
        assert!(sink.violations()[0].starts_with("agreement"));
    }

    #[test]
    fn detects_equivocating_validation() {
        let mut sink = InvariantSink::new();
        let seen = Event::MessageValidated {
            origin: NodeId::new(3),
            round: 1,
            step: Step::Echo,
            value: Value::Zero,
            flagged: false,
        };
        let twisted = Event::MessageValidated {
            origin: NodeId::new(3),
            round: 1,
            step: Step::Echo,
            value: Value::One,
            flagged: false,
        };
        sink.on_event(1, NodeId::new(0), &seen);
        sink.on_event(2, NodeId::new(1), &twisted);
        assert!(!sink.is_ok());
        assert!(sink.violations()[0].starts_with("equivocation"));
    }

    #[test]
    fn detects_totality_gap() {
        let mut sink = InvariantSink::new();
        sink.on_event(1, NodeId::new(0), &Event::Decided { round: 1, value: Value::One });
        let correct: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let violations = sink.finish(&correct);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().all(|v| v.starts_with("totality")));
    }

    #[test]
    fn detects_round_regression() {
        let mut sink = InvariantSink::new();
        sink.on_event(1, NodeId::new(0), &Event::RoundStarted { round: 2 });
        sink.on_event(2, NodeId::new(0), &Event::RoundStarted { round: 2 });
        assert!(!sink.is_ok());
    }
}
