//! A minimal JSON value and serializer.
//!
//! The workspace is built fully offline (no serde), so the observability
//! exports hand-roll their JSON. Only serialization is needed — the schema
//! is produced, never parsed, by this workspace.

use std::fmt;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A float (serialized with enough precision to round-trip; non-finite
    /// values serialize as `null` per JSON's grammar).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => out.push_str(&v.to_string()),
            JsonValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let v = JsonValue::Obj(vec![
            ("a".into(), JsonValue::U64(1)),
            ("b".into(), JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Null])),
            ("c".into(), JsonValue::str("x\"y")),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(JsonValue::str("a\nb\u{1}").to_string(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn floats_and_non_finite() {
        assert_eq!(JsonValue::F64(1.5).to_string(), "1.5");
        assert_eq!(JsonValue::F64(f64::NAN).to_string(), "null");
    }
}
