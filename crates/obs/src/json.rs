//! A minimal JSON value, serializer and parser.
//!
//! The workspace is built fully offline (no serde), so the observability
//! exports hand-roll their JSON. Serialization feeds the JSONL export and
//! the bench report; the parser exists for the `abtrace` analyzer, which
//! reads the JSONL schema back to reconstruct trace trees offline.

use std::fmt;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A float (serialized with enough precision to round-trip; non-finite
    /// values serialize as `null` per JSON's grammar).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Parses one JSON document (with optional surrounding whitespace).
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(v) => Some(*v as f64),
            JsonValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => out.push_str(&v.to_string()),
            JsonValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// A parse failure: the byte offset it occurred at and a short reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// 0-based byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> JsonParseError {
        JsonParseError { at: self.pos, reason }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8, reason: &'static str) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes.get(self.pos..).is_some_and(|rest| rest.starts_with(lit.as_bytes())) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of unescaped bytes in one go.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let run = self.bytes.get(start..self.pos).unwrap_or_default();
                out.push_str(
                    std::str::from_utf8(run).map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates would need pairing; the exporter
                            // never writes them, so reject rather than
                            // silently mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("bad number"))?;
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
        }
        text.parse::<f64>().map(JsonValue::F64).map_err(|_| self.err("bad number"))
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let v = JsonValue::Obj(vec![
            ("a".into(), JsonValue::U64(1)),
            ("b".into(), JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Null])),
            ("c".into(), JsonValue::str("x\"y")),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(JsonValue::str("a\nb\u{1}").to_string(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn floats_and_non_finite() {
        assert_eq!(JsonValue::F64(1.5).to_string(), "1.5");
        assert_eq!(JsonValue::F64(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(JsonValue::parse("null"), Ok(JsonValue::Null));
        assert_eq!(JsonValue::parse(" true "), Ok(JsonValue::Bool(true)));
        assert_eq!(JsonValue::parse("42"), Ok(JsonValue::U64(42)));
        assert_eq!(JsonValue::parse("-1.5"), Ok(JsonValue::F64(-1.5)));
        assert_eq!(JsonValue::parse("1e3"), Ok(JsonValue::F64(1000.0)));
        assert_eq!(
            JsonValue::parse(r#"{"a":[1,"x\n",{}],"b":null}"#),
            Ok(JsonValue::Obj(vec![
                (
                    "a".into(),
                    JsonValue::Arr(vec![
                        JsonValue::U64(1),
                        JsonValue::str("x\n"),
                        JsonValue::Obj(vec![]),
                    ])
                ),
                ("b".into(), JsonValue::Null),
            ]))
        );
    }

    #[test]
    fn parse_round_trips_serialized_values() {
        let v = JsonValue::Obj(vec![
            ("t".into(), JsonValue::U64(u64::MAX)),
            ("s".into(), JsonValue::str("a\"b\\c\nd\u{1}")),
            ("arr".into(), JsonValue::Arr(vec![JsonValue::Bool(false), JsonValue::F64(0.25)])),
        ]);
        assert_eq!(JsonValue::parse(&v.to_string()), Ok(v));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", r#"{"a"}"#, "tru", "1x", r#""\q""#, "[1] extra"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"t":3,"ev":"decided","x":1.5}"#).unwrap();
        assert_eq!(v.get("t").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("ev").and_then(JsonValue::as_str), Some("decided"));
        assert_eq!(v.get("x").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("t").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("t"), None);
    }
}
