//! Basic sinks: in-memory recording and composition.

use crate::{Event, Sink};
use bft_types::NodeId;

/// Records every event, in emission order, with its timestamp and
/// observing node. The workhorse of tests and ad-hoc debugging.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    events: Vec<(u64, NodeId, Event)>,
}

impl VecSink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events so far.
    pub fn events(&self) -> &[(u64, NodeId, Event)] {
        &self.events
    }

    /// Takes the recorded events, leaving the recorder empty.
    pub fn take(&mut self) -> Vec<(u64, NodeId, Event)> {
        std::mem::take(&mut self.events)
    }
}

impl Sink for VecSink {
    fn on_event(&mut self, at: u64, node: NodeId, event: &Event) {
        self.events.push((at, node, event.clone()));
    }
}

/// Feeds every event to two sinks in order. Nest for more:
/// `Tee(a, Tee(b, c))`.
#[derive(Clone, Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Sink, B: Sink> Sink for Tee<A, B> {
    fn on_event(&mut self, at: u64, node: NodeId, event: &Event) {
        self.0.on_event(at, node, event);
        self.1.on_event(at, node, event);
    }
}

/// `Some` forwards, `None` discards — lets a composed sink switch one
/// branch on or off at runtime without changing the overall sink type
/// (e.g. `Tee(metrics, jsonl_or_none)` in the CLI binaries).
impl<S: Sink> Sink for Option<S> {
    fn on_event(&mut self, at: u64, node: NodeId, event: &Event) {
        if let Some(sink) = self {
            sink.on_event(at, node, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tee_duplicates_events() {
        let mut tee = Tee(VecSink::new(), VecSink::new());
        tee.on_event(1, NodeId::new(0), &Event::NodeHalted);
        assert_eq!(tee.0.events().len(), 1);
        assert_eq!(tee.1.events().len(), 1);
        assert_eq!(tee.0.events(), tee.1.events());
    }

    #[test]
    fn optional_sink_forwards_only_when_some() {
        let mut off: Option<VecSink> = None;
        off.on_event(1, NodeId::new(0), &Event::NodeHalted);
        assert!(off.is_none());

        let mut on = Some(VecSink::new());
        on.on_event(2, NodeId::new(1), &Event::NodeHalted);
        assert_eq!(on.as_ref().map(|s| s.events().len()), Some(1));
    }
}
