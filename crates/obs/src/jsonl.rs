//! Streaming JSONL export: one JSON object per event.

use crate::{Event, Sink};
use bft_types::NodeId;
use std::io::Write;

/// Writes each event as one JSON object per line (JSON Lines) to any
/// `io::Write`.
///
/// Line schema: `{"t":<u64>,"node":<u64>,"ev":"<name>",...}` — the
/// variant-specific fields follow the three fixed keys; see
/// [`Event::to_json`]. Write errors are counted, not propagated, so a
/// full disk cannot crash an observed run.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    errors: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out, lines: 0, errors: 0 }
    }

    /// Lines successfully written.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Write errors swallowed.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Flushes the underlying writer in place (for buffered writers
    /// held behind a shared sink, where `into_inner` cannot be used).
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn on_event(&mut self, at: u64, node: NodeId, event: &Event) {
        let line = event.to_json(at, node).to_string();
        match writeln!(self.out, "{line}") {
            Ok(()) => self.lines += 1,
            Err(_) => self.errors += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_types::Value;

    #[test]
    fn writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_event(1, NodeId::new(0), &Event::RoundStarted { round: 1 });
        sink.on_event(9, NodeId::new(2), &Event::Decided { round: 1, value: Value::Zero });
        assert_eq!(sink.lines(), 2);
        assert_eq!(sink.errors(), 0);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"t":1,"node":0,"ev":"round_started","round":1}"#);
        assert_eq!(lines[1], r#"{"t":9,"node":2,"ev":"decided","round":1,"value":0}"#);
    }
}
