//! Offline stand-in for the `crossbeam` crate: the `channel` and
//! `thread` module surfaces this workspace uses (`unbounded`, cloneable
//! `Sender` / `Receiver`, scoped threads), implemented over
//! `std::sync::mpsc` and `std::thread::scope`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel. Cloneable: clones share
    /// the underlying queue (each message is received by exactly one
    /// receiver).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
        }

        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv()
        }

        /// Receives a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv()
        }

        /// Blocks until a message arrives, the timeout fires, or all
        /// senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip_channel() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1u32).unwrap();
            tx.send(2u32).unwrap();
            let a = rx.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 3);
        }

        #[test]
        fn disconnect_is_reported() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}

/// Scoped threads (subset of `crossbeam::thread`), backed by
/// `std::thread::scope`.
///
/// Unlike the real crossbeam — which predates `std` scoped threads — a
/// panicking child propagates when the scope closes, so `scope` returns
/// the closure's value directly instead of a `Result`.
pub mod thread {
    /// Re-export of the underlying scope handle; spawn via
    /// [`Scope::spawn`], join via the returned handle or implicitly at
    /// scope exit.
    pub use std::thread::Scope;

    /// Runs `f` inside a thread scope: every thread spawned on the scope
    /// is joined before `scope` returns, so borrows of stack data may
    /// cross into the children.
    ///
    /// # Example
    ///
    /// ```
    /// let mut outputs = vec![0u64; 4];
    /// crossbeam::thread::scope(|s| {
    ///     for (i, slot) in outputs.iter_mut().enumerate() {
    ///         s.spawn(move || *slot = i as u64 * 10);
    ///     }
    /// });
    /// assert_eq!(outputs, vec![0, 10, 20, 30]);
    /// ```
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(f)
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u32, 2, 3, 4];
            let mut partial = vec![0u32; 2];
            super::scope(|s| {
                let (lo, hi) = partial.split_at_mut(1);
                let (a, b) = data.split_at(2);
                s.spawn(|| lo[0] = a.iter().sum());
                s.spawn(|| hi[0] = b.iter().sum());
            });
            assert_eq!(partial, vec![3, 7]);
        }
    }
}
