//! Offline stand-in for the `crossbeam` crate: the `channel` module
//! surface this workspace uses (`unbounded`, cloneable `Sender` /
//! `Receiver`), implemented over `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel. Cloneable: clones share
    /// the underlying queue (each message is received by exactly one
    /// receiver).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
        }

        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv()
        }

        /// Receives a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv()
        }

        /// Blocks until a message arrives, the timeout fires, or all
        /// senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1u32).unwrap();
            tx.send(2u32).unwrap();
            let a = rx.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 3);
        }

        #[test]
        fn disconnect_is_reported() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
