//! End-to-end properties of the epoch-pipelined atomic broadcast:
//! total order agreement, exactly-once delivery of correct nodes'
//! payloads, fault tolerance, and pipeline-depth invariants.

use bft_coin::CommonCoin;
use bft_order::{LogEntry, OrderLog, OrderMessage, OrderOptions, OrderProcess};
use bft_sim::{Report, UniformDelay, World, WorldConfig};
use bft_types::{Config, Effect, NodeId, Process};

fn run(n: usize, f: usize, seed: u64, opts: OrderOptions, faulty: &[usize]) -> Report<OrderLog> {
    let cfg = Config::new(n, f).unwrap();
    let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 10, seed));
    for id in cfg.nodes() {
        if faulty.contains(&id.index()) {
            world.add_faulty_process(Box::new(Silent { id }));
            continue;
        }
        let workload: Vec<Vec<u8>> = (0..opts.epochs * opts.batch_max as u64)
            .map(|i| format!("tx-{}-{}", id.index(), i).into_bytes())
            .collect();
        world.add_process(Box::new(OrderProcess::new(cfg, id, opts, workload, move |inst| {
            CommonCoin::new(seed, inst)
        })));
    }
    world.run()
}

struct Silent {
    id: NodeId,
}

impl Process for Silent {
    type Msg = OrderMessage;
    type Output = OrderLog;
    fn id(&self) -> NodeId {
        self.id
    }
    fn on_start(&mut self) -> Vec<Effect<OrderMessage, OrderLog>> {
        Vec::new()
    }
    fn on_message(&mut self, _f: NodeId, _m: &OrderMessage) -> Vec<Effect<OrderMessage, OrderLog>> {
        Vec::new()
    }
}

#[test]
fn all_nodes_agree_on_the_same_ordered_log() {
    let opts =
        OrderOptions { batch_max: 3, pipeline_depth: 2, epochs: 4, ..OrderOptions::default() };
    let report = run(4, 1, 11, opts, &[]);
    assert!(report.all_correct_decided(), "stopped as {:?}", report.stop);
    assert!(report.agreement_holds());
    let log = report.unanimous_output().unwrap();
    assert!(!log.is_empty());
    // Epochs appear in order, proposers sorted within an epoch.
    for pair in log.windows(2) {
        assert!(
            (pair[0].epoch, pair[0].proposer) <= (pair[1].epoch, pair[1].proposer),
            "log not ordered by (epoch, proposer): {pair:?}"
        );
    }
}

#[test]
fn every_included_payload_appears_exactly_once() {
    let opts =
        OrderOptions { batch_max: 2, pipeline_depth: 3, epochs: 5, ..OrderOptions::default() };
    let report = run(4, 1, 23, opts, &[]);
    assert!(report.all_correct_decided());
    let log = report.unanimous_output().unwrap();
    let mut seen = std::collections::BTreeSet::new();
    for LogEntry { tx, .. } in &log {
        assert!(seen.insert(tx.clone()), "payload ordered twice: {tx:?}");
    }
    // With all nodes correct and synchronized workloads, each committed
    // slot carries batch_max distinct payloads.
    for entry in &log {
        assert!(entry.epoch < opts.epochs);
    }
}

#[test]
fn deeper_pipelines_and_sequential_runs_order_the_same_slots() {
    let shallow =
        OrderOptions { batch_max: 2, pipeline_depth: 1, epochs: 3, ..OrderOptions::default() };
    let deep =
        OrderOptions { batch_max: 2, pipeline_depth: 3, epochs: 3, ..OrderOptions::default() };
    let a = run(4, 1, 31, shallow, &[]);
    let b = run(4, 1, 31, deep, &[]);
    assert!(a.all_correct_decided() && b.all_correct_decided());
    // Same seed, same workloads: both runs order the same payload set
    // (slot boundaries may differ, the *content* universe may not).
    let txs = |r: &Report<OrderLog>| {
        let mut v: Vec<Vec<u8>> = r.unanimous_output().unwrap().into_iter().map(|e| e.tx).collect();
        v.sort();
        v
    };
    assert_eq!(txs(&a), txs(&b));
}

#[test]
fn a_silent_node_does_not_block_the_log() {
    let opts =
        OrderOptions { batch_max: 2, pipeline_depth: 2, epochs: 3, ..OrderOptions::default() };
    let report = run(4, 1, 47, opts, &[3]);
    assert!(report.all_correct_decided(), "stopped as {:?}", report.stop);
    assert!(report.agreement_holds());
    let log = report.unanimous_output().unwrap();
    assert!(!log.is_empty());
    assert!(
        log.iter().all(|e| e.proposer.index() != 3),
        "a silent node's batches cannot be delivered, hence never ordered"
    );
}

#[test]
fn larger_cluster_with_straggler_completes() {
    let opts =
        OrderOptions { batch_max: 1, pipeline_depth: 2, epochs: 3, ..OrderOptions::default() };
    let report = run(7, 2, 5, opts, &[6]);
    assert!(report.all_correct_decided(), "stopped as {:?}", report.stop);
    assert!(report.agreement_holds());
}
