//! The process-side half of the client gateway: per-client sequencing
//! over [`OrderProcess`]'s mempool.
//!
//! `bft_net::gateway` owns the sockets: its reactor decodes `Submit`
//! frames, parks them in a [`GatewayPipe`], and forwards completion
//! notices back to client connections. This module owns the *policy*:
//!
//! * [`GatewayCore`] — a pure state machine enforcing the per-client
//!   contract (contiguous sequence numbers from 1, backpressure never
//!   advances the window, committed submissions re-acknowledge
//!   idempotently). Pure so it can be property-tested without sockets.
//! * [`GatewayProcess`] — wraps an [`OrderProcess`], draining the pipe
//!   from [`Process::on_tick`] / `on_message`, stamping each accepted
//!   payload with its `(client, seq)` identity, and watching the
//!   replicated log for the stamped entries to surface commit acks.
//!
//! The stamp is `0xC3 ‖ client ‖ seq ‖ body` (little-endian words).
//! Stamping happens *before* ordering, so the identity rides through
//! batching, erasure coding, and the log untouched; any node that
//! orders the payload can recognise it, but only the node whose
//! cursor table knows the client answers for it.

use crate::{Backpressure, OrderLog, OrderMessage, OrderProcess};
use bft_coin::CoinScheme;
use bft_net::{ClientSubmit, GatewayNotice, GatewayPipe, NackReason, MAX_PAYLOAD};
use bft_obs::{Event, Obs};
use bft_types::{Effect, NodeId, Process};
use std::collections::BTreeMap;
use std::fmt;

/// Leading byte of a gateway-stamped payload.
const STAMP_TAG: u8 = 0xC3;
/// Bytes the stamp adds in front of the client's payload.
const STAMP_LEN: usize = 17;

/// Prefixes `body` with the `(client, seq)` stamp.
pub fn stamp_tx(client: u64, seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(STAMP_LEN + body.len());
    out.push(STAMP_TAG);
    out.extend_from_slice(&client.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Splits a stamped payload back into `(client, seq, body)`; `None` for
/// payloads that did not come through a gateway (direct workload
/// entries, other nodes' formats).
pub fn parse_stamp(tx: &[u8]) -> Option<(u64, u64, &[u8])> {
    if tx.first() != Some(&STAMP_TAG) || tx.len() < STAMP_LEN {
        return None;
    }
    let client = u64::from_le_bytes(tx.get(1..9)?.try_into().ok()?);
    let seq = u64::from_le_bytes(tx.get(9..17)?.try_into().ok()?);
    Some((client, seq, tx.get(STAMP_LEN..)?))
}

/// Where an offered submission landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OfferOutcome {
    /// In sequence and admitted to the mempool; the window advanced.
    Accepted,
    /// In sequence but the mempool refused it; the window did **not**
    /// advance — the client retries the same seq.
    Backpressured(Backpressure),
    /// At or below the client's committed high-water mark; the caller
    /// should re-acknowledge (commit acks may have been lost).
    DuplicateCommitted,
    /// Already admitted and still in flight; ignore (the commit ack is
    /// coming).
    DuplicateInFlight,
    /// Skipped ahead of the contiguous window.
    Gap {
        /// The seq the gateway will accept next.
        expected: u64,
    },
}

/// Per-client cursor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Cursor {
    /// Highest seq admitted to the mempool (next expected is `+ 1`).
    admitted: u64,
    /// Highest seq seen committed in the log.
    committed: u64,
}

/// The pure per-client sequencing state machine.
///
/// Invariant (pinned by the proptest in `tests/net_reactor.rs`): for
/// every client, the set of admitted seqs is exactly `1..=admitted`,
/// admitted never decreases, and a [`OfferOutcome::Backpressured`]
/// outcome leaves it unchanged.
#[derive(Debug, Default)]
pub struct GatewayCore {
    /// One cursor per client ever seen: two u64 counters per distinct
    /// client id. Clients are external identities that must survive
    /// their TCP connections (reconnecting clients resume their
    /// window), so the table has no safe eviction point short of a
    /// session-expiry policy out of scope here.
    // lint: allow(unbounded-map) — reconnecting clients must resume their window; no safe eviction short of a session-expiry policy
    clients: BTreeMap<u64, Cursor>,
}

impl GatewayCore {
    /// Creates an empty table (every client's next expected seq is 1).
    pub fn new() -> Self {
        GatewayCore::default()
    }

    /// Offers `(client, seq)`; `admit` performs the actual mempool
    /// insertion and is called only when the seq is next in line.
    pub fn offer(
        &mut self,
        client: u64,
        seq: u64,
        admit: impl FnOnce() -> Result<(), Backpressure>,
    ) -> OfferOutcome {
        let cursor = self.clients.entry(client).or_default();
        if seq <= cursor.committed {
            return OfferOutcome::DuplicateCommitted;
        }
        if seq <= cursor.admitted {
            return OfferOutcome::DuplicateInFlight;
        }
        if seq != cursor.admitted + 1 {
            return OfferOutcome::Gap { expected: cursor.admitted + 1 };
        }
        match admit() {
            Ok(()) => {
                cursor.admitted = seq;
                OfferOutcome::Accepted
            }
            Err(bp) => OfferOutcome::Backpressured(bp),
        }
    }

    /// Records that `(client, seq)` reached the log; `true` when the
    /// client is one this table has ever admitted (i.e. ours to
    /// acknowledge).
    pub fn mark_committed(&mut self, client: u64, seq: u64) -> bool {
        match self.clients.get_mut(&client) {
            Some(cursor) => {
                cursor.committed = cursor.committed.max(seq);
                // A log entry can only surface for seqs we admitted, but
                // be defensive: never let committed outrun admitted.
                cursor.admitted = cursor.admitted.max(cursor.committed);
                true
            }
            None => false,
        }
    }

    /// The next seq expected from `client`.
    pub fn expected(&self, client: u64) -> u64 {
        self.clients.get(&client).map_or(1, |c| c.admitted + 1)
    }

    /// Distinct clients tracked.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }
}

/// An [`OrderProcess`] with a client gateway in front of its mempool.
///
/// Runs wherever `OrderProcess` runs; the gateway path only activates
/// on hosts that deliver [`Process::on_tick`] with a connected
/// [`GatewayPipe`] (the `bft-net` reactor driver). Under `bft-sim`,
/// which never ticks, it behaves exactly like the inner process.
pub struct GatewayProcess<C> {
    inner: OrderProcess<C>,
    pipe: GatewayPipe,
    core: GatewayCore,
    /// Log entries scanned for commit acks so far.
    log_seen: usize,
    /// Largest stamped payload accepted (keeps batches under the frame
    /// layer's hard cap with headroom for the batch encoding).
    max_tx: usize,
    obs: Obs,
}

impl<C: CoinScheme> GatewayProcess<C> {
    /// Wraps `inner`, draining client submissions from `pipe`.
    pub fn new(inner: OrderProcess<C>, pipe: GatewayPipe) -> Self {
        let per_slot = MAX_PAYLOAD as usize / inner.batch_max().max(1);
        GatewayProcess {
            inner,
            pipe,
            core: GatewayCore::new(),
            log_seen: 0,
            max_tx: per_slot.saturating_sub(64),
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observer for gateway lifecycle events (accepted /
    /// nacked / committed). The inner process's observer is separate —
    /// attach it via [`OrderProcess::with_obs`] before wrapping.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The wrapped ordering engine.
    pub fn inner(&self) -> &OrderProcess<C> {
        &self.inner
    }

    /// Submissions acknowledged as committed so far.
    pub fn core(&self) -> &GatewayCore {
        &self.core
    }

    /// Drains queued client submissions into the mempool, NACKing what
    /// the sequencing contract or the mempool refuses.
    fn drain_clients(&mut self) {
        // Bounded per pass: whatever is left stays in the pipe for the
        // next tick or message (message traffic is constant while the
        // cluster makes progress, so the intake always drains).
        let capacity = self.inner.batch_max().saturating_mul(self.inner.pipeline_depth()).max(1);
        for ClientSubmit { client, seq, tx } in self.pipe.drain_intake(capacity) {
            if tx.len() > self.max_tx {
                self.pipe.push_notice(GatewayNotice::Rejected {
                    client,
                    seq,
                    reason: NackReason::Oversize { len: tx.len() as u64 },
                });
                self.obs.emit(self.inner.id(), || Event::GatewayNacked {
                    client,
                    seq,
                    reason: "oversize",
                });
                continue;
            }
            let inner = &mut self.inner;
            let outcome = if inner.is_halted() {
                // Wind-down: the engine accepts nothing more; surface it
                // as backpressure so clients retry against a live node.
                OfferOutcome::Backpressured(Backpressure { pending: inner.pending_len(), capacity })
            } else {
                self.core.offer(client, seq, || inner.submit(stamp_tx(client, seq, &tx)))
            };
            match outcome {
                OfferOutcome::Accepted => {
                    self.obs.emit(self.inner.id(), || Event::GatewayAccepted { client, seq });
                }
                OfferOutcome::Backpressured(bp) => {
                    self.pipe.push_notice(GatewayNotice::Rejected {
                        client,
                        seq,
                        reason: NackReason::Backpressure {
                            pending: bp.pending as u64,
                            capacity: bp.capacity as u64,
                        },
                    });
                    self.obs.emit(self.inner.id(), || Event::GatewayNacked {
                        client,
                        seq,
                        reason: "backpressure",
                    });
                }
                OfferOutcome::DuplicateCommitted => {
                    // The commit ack was lost; re-acknowledge.
                    self.pipe.push_notice(GatewayNotice::Committed { client, seq });
                }
                OfferOutcome::DuplicateInFlight => {}
                OfferOutcome::Gap { expected } => {
                    self.pipe.push_notice(GatewayNotice::Rejected {
                        client,
                        seq,
                        reason: NackReason::SequenceGap { expected },
                    });
                    self.obs.emit(self.inner.id(), || Event::GatewayNacked {
                        client,
                        seq,
                        reason: "sequence_gap",
                    });
                }
            }
        }
    }

    /// Scans newly appended log entries for stamped payloads and
    /// acknowledges the ones belonging to this node's clients.
    fn scan_log(&mut self) {
        let log = self.inner.log();
        let fresh: Vec<(u64, u64, u64)> = log
            .get(self.log_seen..)
            .unwrap_or_default()
            .iter()
            .filter_map(|entry| {
                parse_stamp(&entry.tx).map(|(client, seq, _)| (client, seq, entry.epoch))
            })
            .collect();
        self.log_seen = log.len();
        for (client, seq, epoch) in fresh {
            if self.core.mark_committed(client, seq) {
                self.pipe.push_notice(GatewayNotice::Committed { client, seq });
                self.obs.emit(self.inner.id(), || Event::GatewayCommitted { client, seq, epoch });
            }
        }
    }
}

impl<C> fmt::Debug for GatewayProcess<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GatewayProcess")
            .field("inner", &self.inner)
            .field("clients", &self.core.client_count())
            .field("log_seen", &self.log_seen)
            .finish_non_exhaustive()
    }
}

impl<C: CoinScheme> Process for GatewayProcess<C> {
    type Msg = OrderMessage;
    type Output = OrderLog;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn on_start(&mut self) -> Vec<Effect<OrderMessage, OrderLog>> {
        let out = self.inner.on_start();
        self.scan_log();
        out
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: &OrderMessage,
    ) -> Vec<Effect<OrderMessage, OrderLog>> {
        // Piggyback intake draining on protocol traffic: commits free
        // mempool slots, and the freed capacity should admit waiting
        // clients without waiting for the next external tick.
        self.drain_clients();
        let mut out = self.inner.on_message(from, msg);
        out.extend(self.inner.poke());
        self.scan_log();
        out
    }

    fn on_tick(&mut self) -> Vec<Effect<OrderMessage, OrderLog>> {
        self.drain_clients();
        let out = self.inner.poke();
        self.scan_log();
        out
    }

    fn output(&self) -> Option<OrderLog> {
        self.inner.output()
    }

    fn is_halted(&self) -> bool {
        self.inner.is_halted()
    }

    fn round(&self) -> u64 {
        self.inner.round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::CommonCoin;
    use bft_types::Config;

    #[test]
    fn stamp_round_trips_and_rejects_foreign_payloads() {
        let tx = stamp_tx(7, 3, b"body");
        assert_eq!(parse_stamp(&tx), Some((7, 3, &b"body"[..])));
        assert_eq!(parse_stamp(b"plain"), None);
        assert_eq!(parse_stamp(&[STAMP_TAG, 1, 2]), None, "truncated stamp");
        assert_eq!(parse_stamp(&stamp_tx(1, 2, b"")), Some((1, 2, &b""[..])));
    }

    #[test]
    fn core_enforces_the_contiguous_window() {
        let mut core = GatewayCore::new();
        assert_eq!(core.offer(1, 2, || Ok(())), OfferOutcome::Gap { expected: 1 });
        assert_eq!(core.offer(1, 1, || Ok(())), OfferOutcome::Accepted);
        assert_eq!(core.offer(1, 2, || Ok(())), OfferOutcome::Accepted);
        assert_eq!(core.offer(1, 2, || Ok(())), OfferOutcome::DuplicateInFlight);
        assert_eq!(core.expected(1), 3);
        // Another client's window is independent.
        assert_eq!(core.offer(2, 1, || Ok(())), OfferOutcome::Accepted);
    }

    #[test]
    fn backpressure_does_not_advance_and_commit_reacks() {
        let bp = Backpressure { pending: 4, capacity: 4 };
        let mut core = GatewayCore::new();
        assert_eq!(core.offer(9, 1, || Err(bp)), OfferOutcome::Backpressured(bp));
        assert_eq!(core.expected(9), 1, "refused seq stays expected");
        assert_eq!(core.offer(9, 1, || Ok(())), OfferOutcome::Accepted);
        assert!(core.mark_committed(9, 1));
        assert_eq!(core.offer(9, 1, || Ok(())), OfferOutcome::DuplicateCommitted);
        assert!(!core.mark_committed(42, 1), "unknown client is not ours");
    }

    #[test]
    fn gateway_process_admits_stamps_and_acks_through_the_pipe() {
        let Ok(cfg) = Config::new(4, 1) else { return };
        let opts = crate::OrderOptions {
            batch_max: 2,
            pipeline_depth: 2,
            epochs: 4,
            ..crate::OrderOptions::default()
        };
        let pipe = GatewayPipe::new();
        let inner =
            OrderProcess::new(cfg, NodeId::new(0), opts, Vec::new(), |i| CommonCoin::new(1, i));
        let mut gp = GatewayProcess::new(inner, pipe.clone());

        // In-sequence submission is admitted and stamped.
        assert!(pipe.push_intake(ClientSubmit { client: 5, seq: 1, tx: b"tx-a".to_vec() }));
        // Out-of-sequence submission is NACKed with the expected seq.
        assert!(pipe.push_intake(ClientSubmit { client: 5, seq: 3, tx: b"tx-b".to_vec() }));
        let effects = gp.on_tick();
        assert!(!effects.is_empty(), "admission must drive a proposal");
        assert_eq!(gp.inner().pending_len(), 0, "payload drained into epoch 0's batch");
        let notices = pipe.drain_notices();
        assert_eq!(
            notices,
            vec![GatewayNotice::Rejected {
                client: 5,
                seq: 3,
                reason: NackReason::SequenceGap { expected: 2 },
            }]
        );
        assert_eq!(gp.core().expected(5), 2, "seq 1 admitted, seq 3 refused");
    }

    #[test]
    fn oversize_submissions_are_rejected_before_the_mempool() {
        let Ok(cfg) = Config::new(4, 1) else { return };
        let pipe = GatewayPipe::new();
        let inner = OrderProcess::new(
            cfg,
            NodeId::new(0),
            crate::OrderOptions::default(),
            Vec::new(),
            |i| CommonCoin::new(1, i),
        );
        let mut gp = GatewayProcess::new(inner, pipe.clone());
        let huge = vec![0u8; gp.max_tx + 1];
        assert!(pipe.push_intake(ClientSubmit { client: 1, seq: 1, tx: huge }));
        let _ = gp.on_tick();
        assert_eq!(gp.inner().pending_len(), 0);
        assert!(matches!(
            pipe.drain_notices().first(),
            Some(GatewayNotice::Rejected { reason: NackReason::Oversize { .. }, .. })
        ));
    }
}
