//! `bft-order` — epoch-pipelined atomic broadcast over ACS.
//!
//! Bracha's primitives give us binary agreement; ACS composes `n`
//! reliable broadcasts with `n` agreement instances into set agreement.
//! This crate takes the last step to a *replicated log*: an
//! [`OrderProcess`] batches submitted payloads, runs one ACS instance
//! per **epoch**, and appends each epoch's agreed batch set to a totally
//! ordered log — the HoneyBadgerBFT construction, on Bracha's 1984
//! machinery.
//!
//! Pipelining: epoch `e + 1` starts while epoch `e` is still deciding,
//! up to a configured depth. Because each epoch's ACS is independent
//! (its RBC instances are tagged by epoch, its agreement instances are
//! per `(epoch, proposer)`), overlapping epochs costs no safety: the
//! log order is fixed by `(epoch, proposer)` regardless of commit
//! order. The pipeline gate applies **backpressure** at two points:
//! [`OrderProcess::submit`] refuses payloads once the mempool covers
//! every in-flight slot, and a node never *proposes* epoch `e` until
//! fewer than `pipeline_depth` of its own epochs are between proposal
//! and log append.
//!
//! Garbage collection: when an epoch is appended to the log, its RBC
//! instances are dropped via [`RbcMux::retain`], and its agreement
//! state is dropped as soon as every instance has halted. Steady-state
//! memory is therefore bounded by the pipeline depth, not by the length
//! of the run — the property `tests/halting_and_memory.rs` pins.
//!
//! # Example
//!
//! ```
//! use bft_coin::CommonCoin;
//! use bft_order::{OrderOptions, OrderProcess};
//! use bft_sim::{UniformDelay, World, WorldConfig};
//! use bft_types::{Config, NodeId};
//!
//! # fn main() -> Result<(), bft_types::ConfigError> {
//! let cfg = Config::new(4, 1)?;
//! let opts = OrderOptions { batch_max: 2, pipeline_depth: 2, epochs: 3, ..OrderOptions::default() };
//! let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 5, 7));
//! for id in cfg.nodes() {
//!     let workload = (0..6).map(|i| vec![id.index() as u8, i]).collect();
//!     world.add_process(Box::new(OrderProcess::new(cfg, id, opts, workload, |inst| {
//!         CommonCoin::new(9, inst)
//!     })));
//! }
//! let report = world.run();
//! assert!(report.all_correct_decided());
//! assert!(report.agreement_holds());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gateway;

use bft_coin::CoinScheme;
use bft_net::codec::{put_u32, put_u64, Codec, DecodeError, Reader};
use bft_obs::{Event, Obs, TraceCtx, TracePhase};
use bft_rbc::{RbcKind, RbcMux, RbcMuxAction, RbcMuxMessage};
use bft_types::{Config, Effect, NodeId, Process, Value};
use bracha::{BrachaNode, BrachaOptions, Transition, Wire};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Tuning knobs for the ordering engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderOptions {
    /// Maximum number of payloads drained from the mempool into one
    /// epoch's batch. An epoch whose mempool is empty proposes an empty
    /// batch (epochs advance regardless of load).
    pub batch_max: usize,
    /// Number of own epochs allowed between proposal and log append.
    /// Depth 1 is strictly sequential ACS; deeper pipelines overlap the
    /// broadcast of epoch `e + 1` with the agreement of epoch `e`.
    pub pipeline_depth: usize,
    /// Total number of epochs to run; the process outputs its log and
    /// winds down after epoch `epochs − 1` is appended.
    pub epochs: u64,
    /// Which reliable-broadcast implementation disseminates batches:
    /// [`RbcKind::Bracha`] sends every batch `O(n²)` times;
    /// [`RbcKind::Coded`] fragments it for `O(n)` bytes on the wire.
    pub rbc: RbcKind,
}

impl Default for OrderOptions {
    fn default() -> Self {
        OrderOptions { batch_max: 8, pipeline_depth: 2, epochs: 4, rbc: RbcKind::Bracha }
    }
}

/// `submit` refused a payload: every pipeline slot's batch is already
/// covered by the mempool. Retry after the next epoch commits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// Payloads currently queued.
    pub pending: usize,
    /// The mempool bound that was hit (`batch_max × pipeline_depth`).
    pub capacity: usize,
}

impl fmt::Display for Backpressure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mempool full: {} pending payloads at capacity {}", self.pending, self.capacity)
    }
}

impl std::error::Error for Backpressure {}

/// One slot of the totally ordered log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The epoch whose ACS included this payload.
    pub epoch: u64,
    /// The node that proposed the batch carrying this payload.
    pub proposer: NodeId,
    /// The application payload.
    pub tx: Vec<u8>,
}

/// The totally ordered log: identical at every correct node.
pub type OrderLog = Vec<LogEntry>;

/// A wire message of the ordering protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrderMessage {
    /// A reliable-broadcast message carrying an epoch batch; the RBC tag
    /// is the epoch number.
    Batch(RbcMuxMessage<u64, Vec<u8>>),
    /// A message of the agreement instance deciding whether proposer
    /// `index`'s batch joins epoch `epoch`.
    Aba {
        /// The epoch the instance belongs to.
        epoch: u64,
        /// Which proposer's inclusion is being agreed on.
        index: u32,
        /// The inner Bracha-consensus wire message.
        wire: Wire,
    },
}

impl fmt::Display for OrderMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderMessage::Batch(m) => write!(f, "batch[e{}] from {}", m.tag, m.sender),
            OrderMessage::Aba { epoch, index, .. } => write!(f, "aba[e{epoch}#{index}]"),
        }
    }
}

impl Codec for OrderMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OrderMessage::Batch(m) => {
                out.push(0);
                m.encode(out);
            }
            OrderMessage::Aba { epoch, index, wire } => {
                out.push(1);
                put_u64(out, *epoch);
                put_u32(out, *index);
                wire.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(OrderMessage::Batch(RbcMuxMessage::decode(r)?)),
            1 => {
                let epoch = r.u64()?;
                let index = r.u32()?;
                let wire = Wire::decode(r)?;
                Ok(OrderMessage::Aba { epoch, index, wire })
            }
            got => {
                Err(DecodeError::Invalid { what: "order message discriminant", got: got as u64 })
            }
        }
    }

    fn trace_hint(&self) -> u64 {
        match self {
            OrderMessage::Batch(m) => TraceCtx::derive(m.sender, m.tag, m.tag).trace,
            OrderMessage::Aba { epoch, index, .. } => {
                TraceCtx::derive(NodeId::new(*index as usize), *epoch, *epoch).trace
            }
        }
    }
}

/// Encodes a batch of payloads into one RBC proposal body.
pub fn encode_batch(txs: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, txs.len() as u32);
    for tx in txs {
        put_u32(&mut out, tx.len() as u32);
        out.extend_from_slice(tx);
    }
    out
}

/// Decodes a batch body back into payloads.
///
/// Total: a malformed body (a Byzantine proposer controls these bytes,
/// and RBC agreement only guarantees everyone sees the *same* bytes)
/// decodes as a single opaque payload, so all correct nodes still
/// append identical entries.
pub fn decode_batch(bytes: &[u8]) -> Vec<Vec<u8>> {
    fn parse(bytes: &[u8]) -> Option<Vec<Vec<u8>>> {
        let mut r = Reader::new(bytes);
        let count = r.u32().ok()? as usize;
        // Each entry costs at least its 4-byte length prefix, so a count
        // the remaining bytes cannot possibly hold is malformed — reject
        // before looping (a hostile count must not drive the loop).
        if count > r.remaining() / 4 {
            return None;
        }
        let mut txs = Vec::new();
        for _ in 0..count {
            let len = r.u32().ok()? as usize;
            if len > r.remaining() {
                return None;
            }
            txs.push(r.take(len).ok()?.to_vec());
        }
        r.finish().ok()?;
        Some(txs)
    }
    parse(bytes).unwrap_or_else(|| vec![bytes.to_vec()])
}

/// Per-epoch ACS state: `n` agreement instances plus the RBC deliveries.
struct EpochState<C> {
    abas: Vec<BrachaNode<C>>,
    aba_started: Vec<bool>,
    delivered: BTreeMap<NodeId, Vec<u8>>,
    committed: Option<Vec<(NodeId, Vec<u8>)>>,
}

impl<C: CoinScheme> EpochState<C> {
    fn new(config: Config, me: NodeId, epoch: u64, coin_for: &mut dyn FnMut(u64) -> C) -> Self {
        let n = config.n();
        let mut abas = Vec::with_capacity(n);
        for i in 0..n {
            let coin = coin_for(epoch.wrapping_mul(n as u64).wrapping_add(i as u64));
            abas.push(BrachaNode::new(config, me, coin, BrachaOptions::default()));
        }
        EpochState {
            abas,
            aba_started: vec![false; n],
            delivered: BTreeMap::new(),
            committed: None,
        }
    }

    fn all_halted(&self) -> bool {
        self.abas.iter().all(|a| a.is_halted())
    }
}

type OrderEffect = Effect<OrderMessage, OrderLog>;

/// The trace context of every message of epoch-`e` slot `proposer`:
/// derivable from the RBC instance key alone, so all `n` nodes stamp
/// identical span ids without any coordination.
fn batch_trace(proposer: NodeId, epoch: &u64) -> Option<TraceCtx> {
    Some(TraceCtx::derive(proposer, *epoch, *epoch))
}

/// One node of the atomic-broadcast engine, packaged as a [`Process`]
/// so it runs unmodified on all three substrates (`bft-sim`,
/// `bft-runtime`, `bft-net`).
///
/// `coin_for` supplies the coin for agreement instance
/// `epoch × n + proposer_index`; use [`bft_coin::CommonCoin`] keyed by
/// that instance number for constant expected epoch latency.
pub struct OrderProcess<C> {
    config: Config,
    me: NodeId,
    opts: OrderOptions,
    coin_for: Box<dyn FnMut(u64) -> C + Send>,
    pending: VecDeque<Vec<u8>>,
    rbc: RbcMux<u64, Vec<u8>>,
    epochs: BTreeMap<u64, EpochState<C>>,
    /// Next epoch this node will propose.
    next_epoch: u64,
    log: Vec<LogEntry>,
    /// Next epoch to append to the log (everything below is appended).
    log_next: u64,
    output_emitted: bool,
    halted: bool,
    obs: Obs,
    /// Whether causal-trace spans are emitted (observer attached).
    trace_on: bool,
    /// When the mempool head entered the queue — the retroactive start
    /// of the next batch's `submit` / `batch_wait` spans.
    mempool_since: Option<u64>,
    /// Epochs this node proposed whose root `submit` span is still open.
    open_roots: BTreeSet<u64>,
}

impl<C: CoinScheme> OrderProcess<C> {
    /// Creates a participant with an initial mempool of `workload`
    /// payloads (drained `batch_max` at a time into epoch batches).
    ///
    /// # Panics
    ///
    /// Panics if `batch_max` or `pipeline_depth` is zero.
    pub fn new(
        config: Config,
        me: NodeId,
        opts: OrderOptions,
        workload: Vec<Vec<u8>>,
        coin_for: impl FnMut(u64) -> C + Send + 'static,
    ) -> Self {
        assert!(opts.batch_max >= 1, "batch_max must be at least 1");
        assert!(opts.pipeline_depth >= 1, "pipeline_depth must be at least 1");
        let mut rbc = RbcMux::new(config, me);
        rbc.set_kind(opts.rbc);
        OrderProcess {
            config,
            me,
            opts,
            coin_for: Box::new(coin_for),
            pending: workload.into(),
            rbc,
            epochs: BTreeMap::new(),
            next_epoch: 0,
            log: Vec::new(),
            log_next: 0,
            output_emitted: false,
            halted: false,
            obs: Obs::disabled(),
            trace_on: false,
            mempool_since: None,
            open_roots: BTreeSet::new(),
        }
    }

    /// Attaches an observer: epoch lifecycle events are emitted here,
    /// batch dissemination events at the underlying RBC layer. The
    /// per-epoch agreement instances' *metrics* are deliberately not
    /// observed (they share this node's id; see `AcsProcess::with_obs`),
    /// but they do emit `aba_round` / `coin_wait` trace spans, and the
    /// RBC layer emits `rbc_echo` / `rbc_ready` spans under the trace
    /// context derived from each instance's `(proposer, epoch)` key.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.rbc.set_obs(obs.clone());
        self.rbc.set_tracer(batch_trace);
        self.trace_on = obs.enabled();
        if self.trace_on && !self.pending.is_empty() {
            self.mempool_since = Some(obs.now());
        }
        self.obs = obs;
        self
    }

    /// Queues a payload for ordering, refusing once the mempool already
    /// covers every pipeline slot (`batch_max × pipeline_depth`).
    pub fn submit(&mut self, tx: Vec<u8>) -> Result<(), Backpressure> {
        let capacity = self.opts.batch_max.saturating_mul(self.opts.pipeline_depth);
        if self.pending.len() >= capacity {
            return Err(Backpressure { pending: self.pending.len(), capacity });
        }
        if self.trace_on && self.pending.is_empty() {
            self.mempool_since = Some(self.obs.now());
        }
        self.pending.push_back(tx);
        Ok(())
    }

    /// Drives the proposal/commit pipeline outside a message delivery
    /// and returns the resulting effects — the hook host transports use
    /// after out-of-band mempool activity ([`Process::on_tick`]
    /// submissions via [`gateway::GatewayProcess`]). A no-op after the
    /// process halts.
    pub fn poke(&mut self) -> Vec<OrderEffect> {
        let mut out = Vec::new();
        if !self.halted {
            self.progress(&mut out);
        }
        out
    }

    /// The configured per-epoch batch bound.
    pub fn batch_max(&self) -> usize {
        self.opts.batch_max
    }

    /// The configured pipeline depth.
    pub fn pipeline_depth(&self) -> usize {
        self.opts.pipeline_depth
    }

    /// The ordered log as appended so far.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Number of epochs fully appended to the log.
    pub fn committed_epochs(&self) -> u64 {
        self.log_next
    }

    /// Own epochs currently between proposal and log append.
    pub fn in_flight(&self) -> u64 {
        self.next_epoch.saturating_sub(self.log_next)
    }

    /// Payloads waiting in the mempool.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Live RBC instances across all un-collected epochs (bounded by
    /// `n × pipeline_depth` plus stragglers in steady state).
    pub fn rbc_instance_count(&self) -> usize {
        self.rbc.instance_count()
    }

    /// Epochs whose ACS state is still retained.
    pub fn live_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Bytes of erasure-coded fragments buffered across live RBC
    /// instances (always zero under [`RbcKind::Bracha`]). Bounded by the
    /// pipeline depth via the same per-epoch GC that collects instances.
    pub fn rbc_fragment_bytes(&self) -> usize {
        self.rbc.buffered_fragment_bytes()
    }

    /// Retained agreement-instance state across all live epochs.
    pub fn retained_aba_count(&self) -> usize {
        self.epochs.values().map(|s| s.abas.len()).sum()
    }

    /// Forgets log entries below `epoch`, returning how many were
    /// dropped. The append cursor is untouched: epochs below it stay
    /// appended, their *payloads* are simply no longer retained. This is
    /// the checkpoint-truncation hook — once a state machine holds a
    /// certified snapshot at `epoch`, the prefix below it is dead weight
    /// (any peer that needs it catches up by state transfer, not
    /// replay).
    pub fn truncate_below(&mut self, epoch: u64) -> usize {
        let before = self.log.len();
        self.log.retain(|entry| entry.epoch >= epoch);
        before - self.log.len()
    }

    /// Jumps the append cursor forward to `epoch` (clamped to the
    /// configured horizon) without committing the skipped epochs — the
    /// state-transfer hook: a node that installed a certified snapshot
    /// at `epoch` must never replay the prefix, and peers have already
    /// garbage-collected it anyway. Skipped epochs' protocol state (RBC
    /// instances, agreement gadgets, retained log entries) is dropped,
    /// open trace spans for them are closed, and the pipeline resumes
    /// proposing from the cursor. Returns the effects of the resumed
    /// pipeline; a no-op (empty vec) when `epoch` is at or below the
    /// cursor.
    pub fn fast_forward(&mut self, epoch: u64) -> Vec<OrderEffect> {
        let mut out = Vec::new();
        if epoch <= self.log_next {
            return out;
        }
        let target = epoch.min(self.opts.epochs);
        self.log.retain(|entry| entry.epoch >= target);
        self.log_next = target;
        self.next_epoch = self.next_epoch.max(target);
        self.rbc.retain(move |_, tag| *tag >= target);
        let dropped: Vec<u64> = self.epochs.range(..target).map(|(&e, _)| e).collect();
        for e in dropped {
            if self.trace_on {
                if let Some(set) = self.epochs.get(&e).and_then(|s| s.committed.as_ref()) {
                    // Committed-but-unappended epochs hold one open
                    // commit span per accepted slot; close them so the
                    // exported trace stays balanced.
                    for (id, _) in set {
                        let ctx = TraceCtx::derive(*id, e, e);
                        self.obs.span_end(self.me, ctx, TracePhase::Commit);
                    }
                }
            }
            self.epochs.remove(&e);
        }
        if self.trace_on {
            let stale: Vec<u64> = self.open_roots.range(..target).copied().collect();
            for e in stale {
                self.open_roots.remove(&e);
                let ctx = TraceCtx::derive(self.me, e, e);
                self.obs.span_end(self.me, ctx, TracePhase::Submit);
            }
        }
        self.progress(&mut out);
        out
    }

    /// Whether epoch `e` is one this node still accepts messages for:
    /// not yet appended (appended epochs are garbage-collected — RBC
    /// totality and the agreement halting gadget let the others finish
    /// without us) and within the configured run (a Byzantine peer must
    /// not be able to allocate state for epochs that will never run).
    fn accepts(&self, e: u64) -> bool {
        e >= self.log_next && e < self.opts.epochs
    }

    /// Agreement messages additionally flow for *appended* epochs whose
    /// state is still retained: the halting gadget runs past the commit
    /// point, and starving it would keep every node's final epochs
    /// pinned forever. Below-cursor epochs already collected stay
    /// rejected, so this cannot re-allocate state.
    fn accepts_aba(&self, e: u64) -> bool {
        self.accepts(e) || (e < self.opts.epochs && self.epochs.contains_key(&e))
    }

    fn ensure_epoch(&mut self, e: u64) -> &mut EpochState<C> {
        let config = self.config;
        let me = self.me;
        let coin_for = &mut self.coin_for;
        let obs = &self.obs;
        let trace_on = self.trace_on;
        self.epochs.entry(e).or_insert_with(|| {
            let mut state = EpochState::new(config, me, e, coin_for);
            if trace_on {
                for (i, aba) in state.abas.iter_mut().enumerate() {
                    aba.set_trace(obs.clone(), TraceCtx::derive(NodeId::new(i), e, e));
                }
            }
            state
        })
    }

    fn lift_rbc(&mut self, actions: Vec<RbcMuxAction<u64, Vec<u8>>>, out: &mut Vec<OrderEffect>) {
        for a in actions {
            match a {
                RbcMuxAction::Broadcast(m) => {
                    out.push(Effect::Broadcast { msg: OrderMessage::Batch(m) });
                }
                RbcMuxAction::Send { to, msg } => {
                    out.push(Effect::Send { to, msg: OrderMessage::Batch(msg) });
                }
                RbcMuxAction::Deliver { sender, tag, payload } => {
                    if self.accepts(tag) {
                        self.ensure_epoch(tag).delivered.entry(sender).or_insert(payload);
                    }
                }
            }
        }
    }

    fn lift_aba(epoch: u64, index: usize, ts: Vec<Transition>, out: &mut Vec<OrderEffect>) {
        for t in ts {
            if let Transition::Broadcast(wire) = t {
                out.push(Effect::Broadcast {
                    msg: OrderMessage::Aba { epoch, index: index as u32, wire },
                });
            }
            // Decide/Halt are consumed via the node's getters.
        }
    }

    /// Proposes epochs while the pipeline has room.
    fn maybe_propose(&mut self, out: &mut Vec<OrderEffect>) -> bool {
        let mut changed = false;
        while self.next_epoch < self.opts.epochs
            && self.in_flight() < self.opts.pipeline_depth as u64
        {
            let e = self.next_epoch;
            self.next_epoch += 1;
            let submitted = self.mempool_since.unwrap_or_else(|| self.obs.now());
            let take = self.opts.batch_max.min(self.pending.len());
            let batch: Vec<Vec<u8>> = self.pending.drain(..take).collect();
            if self.pending.is_empty() {
                // Leftover payloads keep the original queue-entry stamp;
                // an emptied mempool re-stamps at the next `submit`.
                self.mempool_since = None;
            }
            let body = encode_batch(&batch);
            self.obs.emit(self.me, || Event::BatchSubmitted {
                epoch: e,
                txs: batch.len() as u64,
                bytes: body.len() as u64,
            });
            self.obs.emit(self.me, || Event::EpochStarted { epoch: e });
            if self.trace_on {
                // The trace root opens retroactively at submission time
                // and stays open until this epoch reaches our log; the
                // batch_wait child covers submission → proposal.
                let ctx = TraceCtx::derive(self.me, e, e);
                self.obs.span_start_at(submitted, self.me, ctx, TracePhase::Submit, 0);
                self.obs.span_start_at(submitted, self.me, ctx, TracePhase::BatchWait, ctx.root);
                self.obs.span_end(self.me, ctx, TracePhase::BatchWait);
                self.open_roots.insert(e);
            }
            self.ensure_epoch(e);
            let actions = self.rbc.broadcast(e, body);
            self.lift_rbc(actions, out);
            changed = true;
        }
        changed
    }

    /// Applies the ACS wiring rules to epoch `e`.
    fn epoch_rules(&mut self, e: u64, out: &mut Vec<OrderEffect>) -> bool {
        let quorum = self.config.quorum();
        let n = self.config.n();
        let Some(state) = self.epochs.get_mut(&e) else { return false };
        let mut changed = false;

        // Rule 1: vote 1 for every delivered proposal.
        for i in 0..n {
            if !state.aba_started[i] && state.delivered.contains_key(&NodeId::new(i)) {
                state.aba_started[i] = true;
                let ts = state.abas[i].start(Value::One);
                Self::lift_aba(e, i, ts, out);
                changed = true;
            }
        }

        // Rule 2: once n − f instances decided 1, vote 0 everywhere else.
        let ones = state.abas.iter().filter(|a| a.decided() == Some(Value::One)).count();
        if ones >= quorum {
            for i in 0..n {
                if !state.aba_started[i] {
                    state.aba_started[i] = true;
                    let ts = state.abas[i].start(Value::Zero);
                    Self::lift_aba(e, i, ts, out);
                    changed = true;
                }
            }
        }

        // Rule 3: commit when every instance has decided and every
        // accepted batch has been delivered.
        if state.committed.is_none() && state.abas.iter().all(|a| a.decided().is_some()) {
            let accepted: Vec<NodeId> = (0..n)
                .filter(|&i| state.abas[i].decided() == Some(Value::One))
                .map(NodeId::new)
                .collect();
            if accepted.iter().all(|id| state.delivered.contains_key(id)) {
                let set: Vec<(NodeId, Vec<u8>)> = accepted
                    .into_iter()
                    .filter_map(|id| state.delivered.get(&id).map(|b| (id, b.clone())))
                    .collect();
                let (slots, txs) =
                    (set.len() as u64, set.iter().map(|(_, b)| decode_batch(b).len() as u64).sum());
                let proposers: Vec<NodeId> = set.iter().map(|(id, _)| *id).collect();
                state.committed = Some(set);
                self.obs.emit(self.me, || Event::EpochCommitted { epoch: e, slots, txs });
                if self.trace_on {
                    // One commit span per accepted slot: ACS decided →
                    // appended to this node's log (head-of-line waits on
                    // earlier epochs show up as long commit spans).
                    for id in proposers {
                        let ctx = TraceCtx::derive(id, e, e);
                        self.obs.span_start(self.me, ctx, TracePhase::Commit, ctx.root);
                    }
                }
                changed = true;
            }
        }
        changed
    }

    /// Appends committed epochs to the log in epoch order and
    /// garbage-collects everything below the append cursor.
    fn append_committed(&mut self) -> bool {
        let mut changed = false;
        loop {
            let e = self.log_next;
            let Some(set) = self.epochs.get(&e).and_then(|s| s.committed.clone()) else { break };
            let before = self.log.len();
            let proposers: Vec<NodeId> = set.iter().map(|(id, _)| *id).collect();
            for (proposer, body) in set {
                for tx in decode_batch(&body) {
                    self.log.push(LogEntry { epoch: e, proposer, tx });
                }
            }
            self.log_next = e + 1;
            // An epoch can commit before we ever proposed it (our own
            // pipeline lagged behind the cluster); never re-propose it.
            self.next_epoch = self.next_epoch.max(self.log_next);
            let entries = (self.log.len() - before) as u64;
            let total = self.log.len() as u64;
            self.obs.emit(self.me, || Event::LogDelivered { epoch: e, entries, total });
            if self.trace_on {
                for id in proposers {
                    let ctx = TraceCtx::derive(id, e, e);
                    self.obs.span_end(self.me, ctx, TracePhase::Commit);
                }
                if self.open_roots.remove(&e) {
                    let ctx = TraceCtx::derive(self.me, e, e);
                    self.obs.span_end(self.me, ctx, TracePhase::Submit);
                }
            }
            let keep_from = self.log_next;
            self.rbc.retain(move |_, tag| *tag >= keep_from);
            changed = true;
        }
        // Appended epochs linger only until their agreement instances
        // halt (the halting gadget needs a few more message rounds).
        let log_next = self.log_next;
        let before = self.epochs.len();
        self.epochs.retain(|&e, s| e >= log_next || !s.all_halted());
        changed || self.epochs.len() != before
    }

    /// Drives proposal, per-epoch ACS rules, log append and wind-down to
    /// a fixpoint.
    fn progress(&mut self, out: &mut Vec<OrderEffect>) {
        loop {
            let mut changed = self.maybe_propose(out);
            let live: Vec<u64> = self.epochs.keys().copied().collect();
            for e in live {
                changed |= self.epoch_rules(e, out);
            }
            changed |= self.append_committed();
            if !changed {
                break;
            }
        }
        if !self.output_emitted && self.log_next >= self.opts.epochs {
            self.output_emitted = true;
            out.push(Effect::Output(self.log.clone()));
        }
        if self.output_emitted && !self.halted && self.epochs.is_empty() {
            self.halted = true;
            // Wind-down: close any spans a straggler RBC instance still
            // holds open so every start in the export finds its end.
            self.rbc.finish_spans();
            out.push(Effect::Halt);
        }
    }
}

impl<C> fmt::Debug for OrderProcess<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderProcess")
            .field("me", &self.me)
            .field("next_epoch", &self.next_epoch)
            .field("log_next", &self.log_next)
            .field("log_len", &self.log.len())
            .field("pending", &self.pending.len())
            .field("live_epochs", &self.epochs.len())
            .finish_non_exhaustive()
    }
}

impl<C: CoinScheme> Process for OrderProcess<C> {
    type Msg = OrderMessage;
    type Output = OrderLog;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self) -> Vec<OrderEffect> {
        let mut out = Vec::new();
        self.progress(&mut out);
        out
    }

    fn on_message(&mut self, from: NodeId, msg: &OrderMessage) -> Vec<OrderEffect> {
        if self.halted {
            return Vec::new();
        }
        let mut out = Vec::new();
        match msg {
            OrderMessage::Batch(m) => {
                if self.accepts(m.tag) {
                    let actions = self.rbc.on_message(from, m);
                    self.lift_rbc(actions, &mut out);
                }
            }
            OrderMessage::Aba { epoch, index, wire } => {
                if self.accepts_aba(*epoch) && (*index as usize) < self.config.n() {
                    let i = *index as usize;
                    let ts = self.ensure_epoch(*epoch).abas[i].on_message(from, wire);
                    Self::lift_aba(*epoch, i, ts, &mut out);
                }
            }
        }
        self.progress(&mut out);
        out
    }

    fn output(&self) -> Option<OrderLog> {
        if self.output_emitted {
            Some(self.log.clone())
        } else {
            None
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn round(&self) -> u64 {
        self.epochs.values().flat_map(|s| s.abas.iter().map(|a| a.round().get())).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_codec_round_trips() {
        let txs = vec![b"alpha".to_vec(), Vec::new(), vec![0u8; 300]];
        assert_eq!(decode_batch(&encode_batch(&txs)), txs);
        assert_eq!(decode_batch(&encode_batch(&[])), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn malformed_batch_decodes_as_one_opaque_payload() {
        // A count of 2 with only one short, truncated element.
        let mut bad = Vec::new();
        put_u32(&mut bad, 2);
        put_u32(&mut bad, 100);
        bad.push(7);
        assert_eq!(decode_batch(&bad), vec![bad.clone()]);
        // Trailing garbage after a well-formed batch is also opaque.
        let mut trailing = encode_batch(&[vec![1]]);
        trailing.push(9);
        assert_eq!(decode_batch(&trailing), vec![trailing.clone()]);
    }

    #[test]
    fn submit_applies_backpressure_at_the_pipeline_bound() {
        let Ok(cfg) = Config::new(4, 1) else { return };
        let opts =
            OrderOptions { batch_max: 2, pipeline_depth: 3, epochs: 8, ..OrderOptions::default() };
        let mut p = OrderProcess::new(cfg, NodeId::new(0), opts, Vec::new(), |i| {
            bft_coin::CommonCoin::new(1, i)
        });
        for i in 0..6u8 {
            assert_eq!(p.submit(vec![i]), Ok(()));
        }
        assert_eq!(p.submit(vec![9]), Err(Backpressure { pending: 6, capacity: 6 }));
    }

    #[test]
    fn order_message_codec_round_trips_and_rejects_bad_discriminants() {
        let aba = OrderMessage::Aba {
            epoch: 5,
            index: 2,
            wire: Wire {
                sender: NodeId::new(1),
                tag: bracha::StepTag::new(bft_types::Round::new(3), bft_types::Step::Echo),
                msg: bft_rbc::RbcMessage::Ready(bracha::StepPayload::Initial(Value::One)),
            },
        };
        let bytes = aba.to_bytes();
        assert_eq!(OrderMessage::from_bytes(&bytes), Ok(aba));
        assert!(matches!(
            OrderMessage::from_bytes(&[7]),
            Err(DecodeError::Invalid { what: "order message discriminant", .. })
        ));
    }

    #[test]
    fn traced_sim_run_assembles_complete_balanced_trace_trees() {
        use bft_obs::{Obs, TraceSink};
        use bft_sim::{UniformDelay, World, WorldConfig};
        let Ok(cfg) = Config::new(4, 1) else { return };
        let opts =
            OrderOptions { batch_max: 2, pipeline_depth: 2, epochs: 3, ..OrderOptions::default() };
        let (obs, sink) = Obs::new(TraceSink::new());
        let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 5, 7));
        world.set_observer(obs.clone());
        for id in cfg.nodes() {
            let workload = (0..6).map(|i| vec![id.index() as u8, i]).collect();
            world.add_process(Box::new(
                OrderProcess::new(cfg, id, opts, workload, |inst| {
                    bft_coin::CommonCoin::new(9, inst)
                })
                .with_obs(obs.clone()),
            ));
        }
        let report = world.run();
        assert!(report.all_correct_decided());

        let sink = sink.lock();
        let asm = sink.assembler();
        assert_eq!(asm.duplicate_starts(), 0);
        assert_eq!(asm.unmatched_ends(), 0);
        let open: Vec<_> = asm.spans().filter(|s| s.end.is_none()).collect();
        assert!(open.is_empty(), "all spans must be closed, open: {open:?}");
        // One trace per (epoch, proposer) slot: every slot runs an ABA.
        assert_eq!(asm.trace_count(), 3 * 4);
        // Every proposer's own trace has a closed root with a critical
        // path that accounts for the full submit → commit latency.
        for id in cfg.nodes() {
            for e in 0..3u64 {
                let ctx = TraceCtx::derive(id, e, e);
                let root = asm.root(ctx.trace).expect("root span exists");
                let end = root.end.expect("root span closed");
                let parts = asm.critical_path(ctx.trace).expect("critical path");
                let total: u64 = parts.iter().map(|(_, d)| *d).sum();
                assert_eq!(total, end - root.start, "path must sum to root duration");
            }
        }
    }

    #[test]
    fn fast_forward_jumps_the_cursor_and_resumes_the_pipeline_ahead() {
        let Ok(cfg) = Config::new(4, 1) else { return };
        let opts =
            OrderOptions { batch_max: 2, pipeline_depth: 2, epochs: 6, ..OrderOptions::default() };
        let workload = (0..8u8).map(|i| vec![i]).collect();
        let mut p = OrderProcess::new(cfg, NodeId::new(0), opts, workload, |i| {
            bft_coin::CommonCoin::new(1, i)
        });
        let _ = p.on_start(); // proposes epochs 0 and 1, filling the pipeline
        assert_eq!(p.in_flight(), 2);
        let effects = p.fast_forward(3);
        assert_eq!(p.committed_epochs(), 3);
        // The skipped epochs' RBC state is gone and the pipeline resumed
        // proposing from the new cursor.
        let proposed: Vec<u64> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Broadcast { msg: OrderMessage::Batch(m) } if m.sender == NodeId::new(0) => {
                    Some(m.tag)
                }
                _ => None,
            })
            .collect();
        assert!(proposed.iter().all(|&t| t >= 3), "only post-cursor proposals: {proposed:?}");
        assert!(!proposed.is_empty(), "pipeline must resume after the jump");
        // Re-entrant and backward jumps are no-ops.
        assert!(p.fast_forward(3).is_empty());
        assert!(p.fast_forward(1).is_empty());
    }

    #[test]
    fn fast_forward_past_the_horizon_clamps_and_emits_the_truncated_log() {
        let Ok(cfg) = Config::new(4, 1) else { return };
        let opts =
            OrderOptions { batch_max: 2, pipeline_depth: 2, epochs: 4, ..OrderOptions::default() };
        let mut p = OrderProcess::new(cfg, NodeId::new(0), opts, vec![vec![1]], |i| {
            bft_coin::CommonCoin::new(1, i)
        });
        let _ = p.on_start();
        let effects = p.fast_forward(9);
        assert_eq!(p.committed_epochs(), 4);
        assert!(effects.iter().any(|e| matches!(e, Effect::Output(log) if log.is_empty())));
        assert!(p.is_halted());
        assert_eq!(p.truncate_below(4), 0);
    }

    #[test]
    fn zero_epoch_run_outputs_an_empty_log_immediately() {
        let Ok(cfg) = Config::new(4, 1) else { return };
        let opts = OrderOptions { epochs: 0, ..OrderOptions::default() };
        let mut p = OrderProcess::new(cfg, NodeId::new(0), opts, Vec::new(), |i| {
            bft_coin::CommonCoin::new(1, i)
        });
        let effects = p.on_start();
        assert!(effects.iter().any(|e| matches!(e, Effect::Output(log) if log.is_empty())));
        assert!(p.is_halted());
    }
}
