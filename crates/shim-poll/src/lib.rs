//! Offline stand-in for a readiness-notification crate: the `poll(2)`
//! slice of libc, wrapped in a safe API and implemented without libc.
//!
//! The real dependency this replaces would be `libc::poll` (or a
//! higher-level reactor crate such as `polling`/`mio`). The container
//! this repo builds in is offline, so — following the shim-crate
//! pattern used for `rand`, `proptest`, `crossbeam`, … — this crate
//! provides the one syscall the transport reactor needs:
//!
//! * On `linux` + `x86_64` it issues the raw `poll` syscall (number 7)
//!   through inline assembly. No libc, no allocation, no threads.
//! * On every other target it degrades to a **timed busy-poll**: sleep
//!   a millisecond slice and report every descriptor as ready. Callers
//!   already treat readiness as a hint (all sockets are nonblocking and
//!   handle `WouldBlock`), so the fallback is correct, merely hot.
//!
//! The API is deliberately tiny and entirely safe: `unsafe` is confined
//! to the single asm statement below, so dependent crates can keep
//! `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

use std::io;

/// There is data to read.
pub const POLLIN: i16 = 0x001;
/// Writing is possible without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (output only).
pub const POLLERR: i16 = 0x008;
/// Hang up: the peer closed its end (output only).
pub const POLLHUP: i16 = 0x010;
/// Invalid request: fd not open (output only).
pub const POLLNVAL: i16 = 0x020;

/// One entry in a poll set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollFd {
    /// The file descriptor to watch (as returned by `AsRawFd::as_raw_fd`).
    pub fd: i32,
    /// Requested events (`POLLIN | POLLOUT | …`).
    pub events: i16,
    /// Returned events, filled in by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// Builds an entry watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// True when the last [`poll`] reported the descriptor readable
    /// (data available, or a hangup that a read will surface as EOF).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// True when the last [`poll`] reported the descriptor writable.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }

    /// True when the descriptor is in an error / hangup / invalid state.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// Waits until one of `fds` is ready or `timeout_ms` elapses.
///
/// Returns the number of entries with nonzero `revents`. A return of
/// `Ok(0)` means the timeout expired (interruptions by signals are
/// retried internally). `timeout_ms < 0` is clamped to a 10ms wait so a
/// lost wakeup can never park the caller forever.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let timeout = if timeout_ms < 0 { 10 } else { timeout_ms };
    sys_poll(fds, timeout)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    const SYS_POLL: i64 = 7;
    const EINTR: i64 = 4;
    loop {
        let mut ret: i64 = SYS_POLL;
        // SAFETY: the raw `poll` syscall reads and writes `nfds`
        // `struct pollfd` records starting at `rdi`. `PollFd` is
        // `#[repr(C)]` with the exact pollfd layout, the pointer and
        // length come from a live `&mut [PollFd]`, and the kernel
        // writes only within that slice. rcx/r11 are declared
        // clobbered as the syscall ABI requires.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") ret,
                in("rdi") fds.as_mut_ptr(),
                in("rsi") fds.len(),
                in("rdx") timeout_ms,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if ret >= 0 {
            return Ok(ret as usize);
        }
        if -ret == EINTR {
            continue; // interrupted by a signal: retry with the same timeout
        }
        return Err(io::Error::from_raw_os_error((-ret) as i32));
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // Degraded portable fallback: a bounded sleep, then report every
    // requested event as ready. Callers run nonblocking sockets and
    // treat readiness as a hint, so spurious readiness only costs a
    // `WouldBlock` per descriptor — a busy poll, not a correctness bug.
    let slice = timeout_ms.clamp(0, 1) as u64;
    if slice > 0 {
        // lint: allow(determinism) — host-transport park replacing the kernel poll wait on non-Linux targets; never reached from the sim substrate
        std::thread::sleep(std::time::Duration::from_millis(slice));
    }
    for fd in fds.iter_mut() {
        fd.revents = fd.events;
    }
    Ok(fds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn connected_socket_is_writable() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn becomes_readable_after_peer_write() {
        let (a, mut b) = pair();
        b.write_all(b"ping").expect("write");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        let mut buf = [0u8; 4];
        let mut a = a;
        a.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn timeout_expires_when_idle() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let start = std::time::Instant::now();
        let n = poll(&mut fds, 30).expect("poll");
        assert_eq!(n, 0);
        assert!(start.elapsed().as_millis() >= 25, "returned too early");
        assert!(!fds[0].readable());
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn hangup_reported_readable() {
        let (a, b) = pair();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "EOF must surface as readable");
    }

    #[test]
    fn empty_set_times_out() {
        let mut fds: [PollFd; 0] = [];
        let n = poll(&mut fds, 1).expect("poll");
        assert_eq!(n, 0);
    }
}
