//! An erasure-coded reliable-broadcast instance (AVID-style).
//!
//! Bracha's protocol re-broadcasts the full payload in every Echo, so a
//! B-byte payload costs O(n²·B) on the wire. This variant disseminates
//! Reed–Solomon fragments instead:
//!
//! 1. The sender encodes the payload into `n` fragments (`k = n − 2f` data
//!    shards) committed under a Merkle root, and **unicasts** fragment `i`
//!    to node `i` (`CodedSend`).
//! 2. On a valid own-index fragment from the designated sender, a node
//!    broadcasts it (`CodedEcho`) — O(B/k) bytes instead of O(B).
//! 3. On `n − f` distinct valid echoes for one root, or `f + 1` Readys:
//!    broadcast `CodedReady(root)` (once).
//! 4. On `2f + 1` Readys for a root **and** `n − 2f` verified fragments of
//!    it: reconstruct, re-encode, check the commitment, and deliver.
//!
//! Totals: one O(n·B/k)·k = O(n·B) dissemination plus n fragment
//! broadcasts of O(n·B/k) = O(n²·B/k) ≈ O(n·B) for f = Θ(n), plus O(n²)
//! constant-size Readys — against Bracha's O(n²·B).
//!
//! Safety matches Bracha's: the Merkle commitment pins the sender to one
//! fragment set per root, two roots can never both reach the `n − f` echo
//! quorum (correct nodes echo once), and the re-encode check in
//! [`bft_ec::reconstruct`] fails uniformly across fragment subsets when a
//! Byzantine sender commits to a non-codeword — in that case every correct
//! node delivers the canonical empty fallback instead, keeping agreement
//! and totality intact.

use crate::{RbcAction, RbcMessage};
use bft_ec::{self as ec, Fragment};
use bft_obs::{Event as ObsEvent, Obs, RbcPhase, TraceCtx, TracePhase};
use bft_types::{Config, NodeBitset, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// A payload type that can cross the erasure-coding boundary: coded
/// instances fragment the byte form and rebuild the payload from decoded
/// bytes at delivery.
///
/// The two functions must round-trip (`from_coded_bytes(to_coded_bytes(p))
/// == p`); `from_coded_bytes` must be total, since a Byzantine sender
/// controls the bytes a receiver decodes.
pub trait CodedPayload: Sized {
    /// The byte form that gets erasure-coded.
    fn to_coded_bytes(&self) -> Vec<u8>;
    /// Rebuilds a payload from decoded bytes (total — never fails).
    fn from_coded_bytes(bytes: Vec<u8>) -> Self;
}

impl CodedPayload for Vec<u8> {
    fn to_coded_bytes(&self) -> Vec<u8> {
        self.clone()
    }
    fn from_coded_bytes(bytes: Vec<u8>) -> Self {
        bytes
    }
}

impl CodedPayload for String {
    fn to_coded_bytes(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
    fn from_coded_bytes(bytes: Vec<u8>) -> Self {
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

/// The state machine of one erasure-coded reliable-broadcast instance at
/// one node. Mirrors [`RbcInstance`](crate::RbcInstance) — same action
/// surface, same observer/trace hooks — but speaks the coded message
/// variants and buffers fragments instead of full payload copies.
///
/// Byzantine-resistance notes:
///
/// * A `CodedSend` is honoured only from the designated sender, only for
///   this node's own fragment index, and only when the commitment proof
///   verifies; the first valid one wins.
/// * An echo from peer `p` must carry fragment index `p` and verify
///   against its root. At most one echo and one ready per peer are
///   counted (first-wins, like Bracha), so `f` Byzantine peers can buffer
///   at most `f` junk fragments here — state stays O(n) fragments.
#[derive(Clone, Debug)]
pub struct CodedInstance<P> {
    config: Config,
    me: NodeId,
    sender: NodeId,
    started: bool,
    sent_echo: bool,
    sent_ready: bool,
    /// Verified echo fragments, grouped by commitment root then keyed by
    /// fragment index (≡ echoing peer). BTree for replay-stable order.
    // lint: allow(unbounded-map) — one echo per peer (≤ n roots of ≤ n fragments); RbcMux::retain drops the instance at the GC horizon
    echoes: BTreeMap<u64, BTreeMap<u16, Fragment>>,
    /// Peers whose (first) echo has been counted, any root.
    echoed_peers: NodeBitset,
    /// Peers whose (first) ready has been counted, any root.
    readied_peers: NodeBitset,
    /// Distinct Ready roots and how many peers support each.
    readies: Vec<(u64, usize)>,
    /// Root that reached the delivery quorum; delivery then waits only on
    /// the `n − 2f`-th verified fragment.
    deliver_root: Option<u64>,
    delivered: Option<P>,
    obs: Obs,
    tag_label: String,
    trace: Option<TraceCtx>,
    echo_span_open: bool,
    ready_span_open: bool,
    reconstruct_span_open: bool,
}

impl<P> CodedInstance<P>
where
    P: CodedPayload + Clone + Eq + fmt::Debug,
{
    /// Creates the instance state for node `me` with designated `sender`.
    pub fn new(config: Config, me: NodeId, sender: NodeId) -> Self {
        CodedInstance {
            config,
            me,
            sender,
            started: false,
            sent_echo: false,
            sent_ready: false,
            echoes: BTreeMap::new(),
            echoed_peers: NodeBitset::new(config.n()),
            readied_peers: NodeBitset::new(config.n()),
            readies: Vec::new(),
            deliver_root: None,
            delivered: None,
            obs: Obs::disabled(),
            tag_label: String::new(),
            trace: None,
            echo_span_open: false,
            ready_span_open: false,
            reconstruct_span_open: false,
        }
    }

    /// Attaches an observer; `tag_label` identifies this instance on the
    /// emitted events (the multiplexer passes the `Debug`-rendered tag).
    pub fn set_obs(&mut self, obs: Obs, tag_label: String) {
        self.obs = obs;
        self.tag_label = tag_label;
    }

    /// Attaches the causal-trace identity of this instance's payload (see
    /// [`RbcInstance::set_trace`](crate::RbcInstance::set_trace)); the
    /// coded instance additionally spans `rbc_reconstruct` from the
    /// delivery quorum to reconstruction.
    pub fn set_trace(&mut self, ctx: TraceCtx) {
        self.trace = Some(ctx);
    }

    /// Closes any still-open trace spans at the current observer time.
    pub fn finish_spans(&mut self) {
        if let Some(ctx) = self.trace {
            if self.echo_span_open {
                self.echo_span_open = false;
                self.obs.span_end(self.me, ctx, TracePhase::RbcEcho);
            }
            if self.ready_span_open {
                self.ready_span_open = false;
                self.obs.span_end(self.me, ctx, TracePhase::RbcReady);
            }
            if self.reconstruct_span_open {
                self.reconstruct_span_open = false;
                self.obs.span_end(self.me, ctx, TracePhase::RbcReconstruct);
            }
        }
    }

    /// The designated sender of this instance.
    pub fn sender(&self) -> NodeId {
        self.sender
    }

    /// The delivered payload, if delivery has occurred.
    pub fn delivered(&self) -> Option<&P> {
        self.delivered.as_ref()
    }

    /// Fragment bytes currently buffered — the coded instance's analogue
    /// of Bracha's per-payload Echo copies, used by memory-bound tests.
    pub fn buffered_fragment_bytes(&self) -> usize {
        self.echoes.values().flat_map(|frags| frags.values()).map(Fragment::weight).sum()
    }

    fn k(&self) -> usize {
        self.config.reconstruct_threshold()
    }

    /// Starts the broadcast: encodes the payload and unicasts fragment
    /// `i` to node `i` (processing our own fragment locally, so hosts
    /// whose transports have no self-unicast path still work).
    ///
    /// Only meaningful at the designated sender; elsewhere (or on a
    /// repeat call, or if the geometry is unusable) it returns no actions.
    pub fn start(&mut self, payload: P) -> Vec<RbcAction<P>> {
        if self.me != self.sender || self.started {
            return Vec::new();
        }
        self.started = true;
        let bytes = payload.to_coded_bytes();
        let Ok(coded) = ec::encode(&bytes, self.config.n(), self.k()) else {
            // Unusable geometry (n > 255) or oversize payload: nothing to
            // disseminate. The instance stays silent, which is safe — no
            // correct node will ever deliver it.
            return Vec::new();
        };
        let root = coded.root;
        let mut actions = Vec::with_capacity(self.config.n());
        for (i, fragment) in coded.fragments.into_iter().enumerate() {
            let to = NodeId::new(i);
            let msg = RbcMessage::CodedSend { root, fragment };
            if to == self.me {
                // Local self-delivery: triggers our own echo immediately.
                actions.extend(self.on_message(self.me, &msg));
            } else {
                actions.push(RbcAction::Send { to, msg });
            }
        }
        actions
    }

    /// Processes one instance message from (authenticated) peer `from`.
    /// Bracha-variant messages belong to an
    /// [`RbcInstance`](crate::RbcInstance) and are ignored here.
    pub fn on_message(&mut self, from: NodeId, msg: &RbcMessage<P>) -> Vec<RbcAction<P>> {
        if !self.config.contains(from) {
            return Vec::new();
        }
        let mut actions = Vec::new();
        match msg {
            RbcMessage::CodedSend { root, fragment } => {
                self.on_send(from, *root, fragment, &mut actions);
            }
            RbcMessage::CodedEcho { root, fragment } => {
                self.on_echo(from, *root, fragment, &mut actions);
            }
            RbcMessage::CodedReady { root } => {
                self.on_ready(from, *root, &mut actions);
            }
            RbcMessage::Send(_) | RbcMessage::Echo(_) | RbcMessage::Ready(_) => {}
        }
        actions
    }

    fn on_send(&mut self, from: NodeId, root: u64, frag: &Fragment, out: &mut Vec<RbcAction<P>>) {
        if from != self.sender || self.sent_echo {
            return;
        }
        if frag.index as usize != self.me.index() || !self.verify(root, frag) {
            self.emit_fragment(frag.index, false);
            return;
        }
        self.sent_echo = true;
        self.emit_phase(RbcPhase::Send);
        self.emit_phase(RbcPhase::Echo);
        if let Some(ctx) = self.trace {
            self.echo_span_open = true;
            self.obs.span_start(self.me, ctx, TracePhase::RbcEcho, ctx.root);
        }
        out.push(RbcAction::Broadcast(RbcMessage::CodedEcho { root, fragment: frag.clone() }));
    }

    fn on_echo(&mut self, from: NodeId, root: u64, frag: &Fragment, out: &mut Vec<RbcAction<P>>) {
        // An echo must carry the echoing peer's own fragment and verify
        // against its commitment. Verification precedes the first-wins
        // peer dedup, so junk cannot burn a correct peer's slot.
        if frag.index as usize != from.index() || !self.verify(root, frag) {
            self.emit_fragment(frag.index, false);
            return;
        }
        if !self.echoed_peers.insert(from) {
            return;
        }
        self.emit_fragment(frag.index, true);
        let frags = self.echoes.entry(root).or_default();
        frags.entry(frag.index).or_insert_with(|| frag.clone());
        let support = frags.len();
        if support >= self.config.quorum() {
            self.maybe_send_ready(root, RbcPhase::Echo, support, out);
        }
        self.maybe_deliver(out);
    }

    fn on_ready(&mut self, from: NodeId, root: u64, out: &mut Vec<RbcAction<P>>) {
        if !self.readied_peers.insert(from) {
            return;
        }
        let count = Self::bump(&mut self.readies, root);
        if count >= self.config.ready_threshold() {
            self.maybe_send_ready(root, RbcPhase::Ready, count, out);
        }
        if count >= self.config.decide_threshold() && self.deliver_root.is_none() {
            self.deliver_root = Some(root);
            if let Some(ctx) = self.trace {
                if self.delivered.is_none() {
                    self.reconstruct_span_open = true;
                    self.obs.span_start(self.me, ctx, TracePhase::RbcReconstruct, ctx.root);
                }
            }
            self.maybe_deliver(out);
        }
    }

    /// Delivers once both conditions hold: a root reached `2f + 1` Readys
    /// and `n − 2f` verified fragments of it are buffered.
    fn maybe_deliver(&mut self, out: &mut Vec<RbcAction<P>>) {
        if self.delivered.is_some() {
            return;
        }
        let Some(root) = self.deliver_root else { return };
        let Some(frags) = self.echoes.get(&root) else { return };
        if frags.len() < self.k() {
            return;
        }
        let fragments: Vec<Fragment> = frags.values().cloned().collect();
        let n = self.config.n();
        let k = self.k();
        let (bytes, consistent) = match ec::reconstruct(root, n, k, &fragments) {
            Ok(bytes) => (bytes, true),
            // The sender committed to a non-codeword (or inconsistent
            // geometry): uniform across subsets, so every correct node
            // takes this branch — deliver the canonical empty fallback to
            // preserve totality.
            Err(_) => (Vec::new(), false),
        };
        self.obs.emit(self.me, || ObsEvent::RbcReconstructed {
            origin: self.sender,
            tag: self.tag_label.clone(),
            fragments: fragments.len() as u64,
            bytes: bytes.len() as u64,
            consistent,
        });
        let support =
            self.readies.iter().find(|(r, _)| *r == root).map(|(_, c)| *c).unwrap_or_default();
        let payload = P::from_coded_bytes(bytes);
        self.delivered = Some(payload.clone());
        self.obs.emit(self.me, || ObsEvent::RbcDelivered {
            origin: self.sender,
            tag: self.tag_label.clone(),
            support: support as u64,
        });
        if let Some(ctx) = self.trace {
            if self.ready_span_open {
                self.ready_span_open = false;
                self.obs.span_end(self.me, ctx, TracePhase::RbcReady);
            }
            if self.reconstruct_span_open {
                self.reconstruct_span_open = false;
                self.obs.span_end(self.me, ctx, TracePhase::RbcReconstruct);
            }
        }
        out.push(RbcAction::Deliver(payload));
    }

    fn verify(&self, root: u64, frag: &Fragment) -> bool {
        ec::verify(root, self.config.n(), self.k(), frag)
    }

    fn bump(counts: &mut Vec<(u64, usize)>, root: u64) -> usize {
        if let Some(entry) = counts.iter_mut().find(|(r, _)| *r == root) {
            entry.1 += 1;
            return entry.1;
        }
        counts.push((root, 1));
        1
    }

    fn emit_phase(&self, phase: RbcPhase) {
        self.obs.emit(self.me, || ObsEvent::RbcPhaseEntered {
            origin: self.sender,
            tag: self.tag_label.clone(),
            phase,
        });
    }

    fn emit_fragment(&self, index: u16, verified: bool) {
        self.obs.emit(self.me, || ObsEvent::RbcFragment {
            origin: self.sender,
            tag: self.tag_label.clone(),
            index: u64::from(index),
            verified,
        });
    }

    fn maybe_send_ready(
        &mut self,
        root: u64,
        via: RbcPhase,
        support: usize,
        actions: &mut Vec<RbcAction<P>>,
    ) {
        if !self.sent_ready {
            self.sent_ready = true;
            self.obs.emit(self.me, || ObsEvent::RbcQuorumReached {
                origin: self.sender,
                tag: self.tag_label.clone(),
                phase: via,
                support: support as u64,
            });
            self.emit_phase(RbcPhase::Ready);
            if let Some(ctx) = self.trace {
                if self.echo_span_open {
                    self.echo_span_open = false;
                    self.obs.span_end(self.me, ctx, TracePhase::RbcEcho);
                }
                self.ready_span_open = true;
                self.obs.span_start(self.me, ctx, TracePhase::RbcReady, ctx.root);
            }
            actions.push(RbcAction::Broadcast(RbcMessage::CodedReady { root }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::new(4, 1).unwrap()
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    type Inst = CodedInstance<Vec<u8>>;

    fn payload() -> Vec<u8> {
        (0..100u8).collect()
    }

    /// Encodes `payload()` as the designated sender n(0) would.
    fn coded() -> ec::Coded {
        ec::encode(&payload(), 4, 2).unwrap()
    }

    fn echo(root: u64, frag: &Fragment) -> RbcMessage<Vec<u8>> {
        RbcMessage::CodedEcho { root, fragment: frag.clone() }
    }

    #[test]
    fn sender_unicasts_fragments_and_echoes_its_own() {
        let mut inst = Inst::new(cfg(), n(0), n(0));
        let actions = inst.start(payload());
        let sends: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                RbcAction::Send { to, msg: RbcMessage::CodedSend { fragment, .. } } => {
                    Some((to.index(), fragment.index))
                }
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![(1, 1), (2, 2), (3, 3)], "fragment i goes to node i");
        assert!(
            actions.iter().any(
                |a| matches!(a, RbcAction::Broadcast(RbcMessage::CodedEcho { fragment, .. }) if fragment.index == 0)
            ),
            "the sender echoes its own fragment without a self-unicast: {actions:?}"
        );
        assert!(inst.start(payload()).is_empty(), "second start ignored");
    }

    #[test]
    fn non_sender_cannot_start() {
        let mut inst = Inst::new(cfg(), n(1), n(0));
        assert!(inst.start(payload()).is_empty());
    }

    #[test]
    fn valid_send_triggers_echo_of_own_fragment() {
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        let msg = RbcMessage::CodedSend { root: c.root, fragment: c.fragments[1].clone() };
        let a = inst.on_message(n(0), &msg);
        assert_eq!(
            a,
            vec![RbcAction::Broadcast(RbcMessage::CodedEcho {
                root: c.root,
                fragment: c.fragments[1].clone()
            })]
        );
        // A second send (even valid) is ignored.
        assert!(inst.on_message(n(0), &msg).is_empty());
    }

    #[test]
    fn send_with_wrong_index_or_bad_proof_is_rejected() {
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        let wrong_index = RbcMessage::CodedSend { root: c.root, fragment: c.fragments[2].clone() };
        assert!(inst.on_message(n(0), &wrong_index).is_empty());
        let mut corrupted = c.fragments[1].clone();
        corrupted.shard[0] ^= 1;
        let bad = RbcMessage::CodedSend { root: c.root, fragment: corrupted };
        assert!(inst.on_message(n(0), &bad).is_empty());
        let not_sender = RbcMessage::CodedSend { root: c.root, fragment: c.fragments[1].clone() };
        assert!(inst.on_message(n(2), &not_sender).is_empty());
    }

    #[test]
    fn echo_quorum_triggers_ready() {
        // n=4, f=1: echo quorum is n−f = 3 distinct valid fragments.
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(0), &echo(c.root, &c.fragments[0])).is_empty());
        assert!(inst.on_message(n(2), &echo(c.root, &c.fragments[2])).is_empty());
        let a = inst.on_message(n(3), &echo(c.root, &c.fragments[3]));
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::CodedReady { root: c.root })]);
    }

    #[test]
    fn echo_must_match_peer_index() {
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        // Peer 2 echoing fragment 3 is a forgery regardless of validity.
        assert!(inst.on_message(n(2), &echo(c.root, &c.fragments[3])).is_empty());
        assert_eq!(inst.buffered_fragment_bytes(), 0);
    }

    #[test]
    fn invalid_echo_does_not_burn_the_peers_slot() {
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        let mut corrupted = c.fragments[2].clone();
        corrupted.shard[0] ^= 1;
        assert!(inst.on_message(n(2), &echo(c.root, &corrupted)).is_empty());
        // The same peer's valid echo still counts afterwards.
        let _ = inst.on_message(n(0), &echo(c.root, &c.fragments[0]));
        let _ = inst.on_message(n(2), &echo(c.root, &c.fragments[2]));
        let a = inst.on_message(n(3), &echo(c.root, &c.fragments[3]));
        assert_eq!(a.len(), 1, "quorum reached with the re-sent valid echo");
    }

    #[test]
    fn duplicate_echoes_from_same_peer_ignored() {
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(2), &echo(c.root, &c.fragments[2])).is_empty());
        assert!(inst.on_message(n(2), &echo(c.root, &c.fragments[2])).is_empty());
        assert!(inst.on_message(n(0), &echo(c.root, &c.fragments[0])).is_empty());
        // Still only two distinct echoers.
        let a = inst.on_message(n(3), &echo(c.root, &c.fragments[3]));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn ready_amplification_at_f_plus_one() {
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        let ready = RbcMessage::CodedReady { root: c.root };
        assert!(inst.on_message(n(2), &ready).is_empty());
        let a = inst.on_message(n(3), &ready);
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::CodedReady { root: c.root })]);
    }

    #[test]
    fn delivery_needs_readys_and_fragments() {
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        let ready = RbcMessage::CodedReady { root: c.root };
        // 2f+1 = 3 readys, but no fragments yet: no delivery.
        assert_eq!(inst.on_message(n(0), &ready).len(), 0);
        assert_eq!(inst.on_message(n(2), &ready).len(), 1, "amplified own ready");
        assert_eq!(inst.on_message(n(3), &ready).len(), 0);
        assert_eq!(inst.delivered(), None);
        // k = n−2f = 2 verified fragments complete the delivery.
        assert!(inst.on_message(n(0), &echo(c.root, &c.fragments[0])).is_empty());
        let a = inst.on_message(n(2), &echo(c.root, &c.fragments[2]));
        assert_eq!(a, vec![RbcAction::Deliver(payload())]);
        assert_eq!(inst.delivered(), Some(&payload()));
    }

    #[test]
    fn delivery_happens_once() {
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        let ready = RbcMessage::CodedReady { root: c.root };
        for i in [0usize, 2, 3] {
            let _ = inst.on_message(n(i), &ready);
        }
        let _ = inst.on_message(n(0), &echo(c.root, &c.fragments[0]));
        let _ = inst.on_message(n(2), &echo(c.root, &c.fragments[2]));
        assert_eq!(inst.delivered(), Some(&payload()));
        assert!(inst.on_message(n(3), &echo(c.root, &c.fragments[3])).is_empty());
    }

    #[test]
    fn readies_for_conflicting_roots_cannot_both_win() {
        let mut inst = Inst::new(cfg(), n(1), n(0));
        let _ = inst.on_message(n(0), &RbcMessage::CodedReady { root: 1 });
        let _ = inst.on_message(n(2), &RbcMessage::CodedReady { root: 2 });
        let _ = inst.on_message(n(3), &RbcMessage::CodedReady { root: 1 });
        let _ = inst.on_message(n(1), &RbcMessage::CodedReady { root: 2 });
        assert_eq!(inst.delivered(), None);
        assert_eq!(inst.deliver_root, None);
    }

    #[test]
    fn full_four_node_run_delivers_everywhere() {
        let mut insts: Vec<Inst> = (0..4).map(|i| Inst::new(cfg(), n(i), n(0))).collect();
        let mut unicasts: Vec<(NodeId, NodeId, RbcMessage<Vec<u8>>)> = Vec::new();
        let mut broadcasts: Vec<(NodeId, RbcMessage<Vec<u8>>)> = Vec::new();
        let sink = |from: NodeId,
                    actions: Vec<RbcAction<Vec<u8>>>,
                    unicasts: &mut Vec<(NodeId, NodeId, RbcMessage<Vec<u8>>)>,
                    broadcasts: &mut Vec<(NodeId, RbcMessage<Vec<u8>>)>| {
            for a in actions {
                match a {
                    RbcAction::Send { to, msg } => unicasts.push((from, to, msg)),
                    RbcAction::Broadcast(msg) => broadcasts.push((from, msg)),
                    RbcAction::Deliver(_) => {}
                }
            }
        };
        let start = insts[0].start(payload());
        sink(n(0), start, &mut unicasts, &mut broadcasts);
        // Synchronous pump until quiescent.
        while !unicasts.is_empty() || !broadcasts.is_empty() {
            for (from, to, msg) in std::mem::take(&mut unicasts) {
                let acts = insts[to.index()].on_message(from, &msg);
                sink(to, acts, &mut unicasts, &mut broadcasts);
            }
            for (from, msg) in std::mem::take(&mut broadcasts) {
                for (i, inst) in insts.iter_mut().enumerate() {
                    let acts = inst.on_message(from, &msg);
                    sink(n(i), acts, &mut unicasts, &mut broadcasts);
                }
            }
        }
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(inst.delivered(), Some(&payload()), "node {i}");
        }
    }

    #[test]
    fn byzantine_non_codeword_commitment_delivers_empty_fallback() {
        // Forge a commitment over mixed shards of two payloads (as in the
        // bft-ec test) and run the instance to delivery: the re-encode
        // check fails and the canonical empty payload is delivered.
        let a = ec::encode(&payload(), 4, 2).unwrap();
        let b = ec::encode(&[9u8; 100], 4, 2).unwrap();
        let mixed: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                if i % 2 == 0 {
                    a.fragments[i].shard.clone()
                } else {
                    b.fragments[i].shard.clone()
                }
            })
            .collect();
        let leaves: Vec<u64> =
            mixed.iter().enumerate().map(|(i, s)| ec::merkle::leaf_hash(i as u16, s)).collect();
        let frags: Vec<Fragment> = mixed
            .iter()
            .enumerate()
            .map(|(i, shard)| Fragment {
                index: i as u16,
                total_len: 100,
                shard: shard.clone(),
                proof: ec::merkle::proof(&leaves, i),
            })
            .collect();
        // Rebind the forged Merkle root exactly as the encoder does — via
        // a fragment's successful verification against it. There is no
        // public constructor for a forged commitment, so recover it by
        // encoding a payload whose fragments we then swap out… simpler:
        // search the 64-bit space is impossible, so recompute through the
        // crate's own building blocks.
        let root = {
            // ec::encode commits as commitment(merkle_root, total_len, n, k);
            // replicate via a probe: encode any payload, then reuse the
            // same binding by checking verify() against candidate roots is
            // not possible — instead use the internal layout, pinned by
            // the cross-check below.
            let mut h = ec::hash::Fnv64::new();
            h.update(b"ec-commit")
                .update_u64(ec::merkle::root(&leaves))
                .update_u64(100)
                .update(&[4u8, 2u8]);
            h.finish()
        };
        for f in &frags {
            assert!(ec::verify(root, 4, 2, f), "forged commitment layout drifted");
        }

        let mut inst = Inst::new(cfg(), n(1), n(0));
        let ready = RbcMessage::CodedReady { root };
        for i in [0usize, 2, 3] {
            let _ = inst.on_message(n(i), &ready);
        }
        let _ = inst.on_message(n(0), &echo(root, &frags[0]));
        let acts = inst.on_message(n(2), &echo(root, &frags[2]));
        assert_eq!(acts, vec![RbcAction::Deliver(Vec::new())], "canonical fallback");
    }

    #[test]
    fn buffered_bytes_track_fragments() {
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        assert_eq!(inst.buffered_fragment_bytes(), 0);
        let _ = inst.on_message(n(2), &echo(c.root, &c.fragments[2]));
        assert_eq!(inst.buffered_fragment_bytes(), c.fragments[2].weight());
    }

    #[test]
    fn traced_instance_balances_all_spans() {
        use bft_obs::VecSink;
        let (obs, sink) = Obs::new(VecSink::new());
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        inst.set_obs(obs.clone(), "t".into());
        let ctx = TraceCtx::derive(n(0), 0, 0);
        inst.set_trace(ctx);
        let _ = inst.on_message(
            n(0),
            &RbcMessage::CodedSend { root: c.root, fragment: c.fragments[1].clone() },
        );
        for i in [0usize, 2, 3] {
            let _ = inst.on_message(n(i), &echo(c.root, &c.fragments[i].clone()));
        }
        for i in [0usize, 2, 3] {
            let _ = inst.on_message(n(i), &RbcMessage::CodedReady { root: c.root });
        }
        assert!(inst.delivered().is_some());
        let events = sink.lock().take();
        let mut open = 0i64;
        let mut starts = 0;
        for (_, _, e) in &events {
            match e {
                ObsEvent::SpanStart { .. } => {
                    open += 1;
                    starts += 1;
                }
                ObsEvent::SpanEnd { .. } => open -= 1,
                _ => {}
            }
        }
        assert_eq!(open, 0, "all spans closed");
        assert_eq!(starts, 3, "echo + ready + reconstruct spans");
    }

    #[test]
    fn finish_spans_closes_reconstruct_span() {
        use bft_obs::VecSink;
        let (obs, sink) = Obs::new(VecSink::new());
        let c = coded();
        let mut inst = Inst::new(cfg(), n(1), n(0));
        inst.set_obs(obs.clone(), "t".into());
        inst.set_trace(TraceCtx::derive(n(0), 0, 0));
        // Reach the ready quorum without fragments: reconstruct span opens.
        for i in [0usize, 2, 3] {
            let _ = inst.on_message(n(i), &RbcMessage::CodedReady { root: c.root });
        }
        inst.finish_spans();
        inst.finish_spans();
        let events = sink.lock().take();
        let starts =
            events.iter().filter(|(_, _, e)| matches!(e, ObsEvent::SpanStart { .. })).count();
        let ends = events.iter().filter(|(_, _, e)| matches!(e, ObsEvent::SpanEnd { .. })).count();
        assert_eq!(starts, ends, "balanced after GC: {events:?}");
    }
}
