//! A single reliable-broadcast instance.

use crate::RbcMessage;
use bft_obs::{Event as ObsEvent, Obs, RbcPhase};
use bft_types::{Config, NodeBitset, NodeId};
use std::fmt;

/// An instruction produced by an [`RbcInstance`] for its host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RbcAction<P> {
    /// Send this message to every node (including ourselves).
    Broadcast(RbcMessage<P>),
    /// The payload has been reliably delivered — at most once per
    /// instance, and (for correct hosts) with the agreement and totality
    /// guarantees of the protocol.
    Deliver(P),
}

/// The state machine of one Bracha reliable-broadcast instance at one node.
///
/// An instance is identified by its designated sender (plus, when
/// multiplexed by [`RbcMux`](crate::RbcMux), an application tag). The host
/// feeds every incoming instance message to [`RbcInstance::on_message`] and
/// executes the returned actions; if this node is the designated sender it
/// kicks the instance off with [`RbcInstance::start`].
///
/// Byzantine-resistance notes:
///
/// * A `Send` is honoured only if it arrives from the designated sender
///   (channels are authenticated), and only the first one counts.
/// * At most one `Echo` and one `Ready` per peer are counted; later
///   (possibly conflicting) ones from the same peer are ignored.
///
/// Hot-path layout: per-peer dedup happens *before* payload counting
/// (the `*_peers` bitsets), so the per-payload supporter sets collapse to
/// plain counts — honest runs keep exactly one `(payload, count)` entry
/// and the adversarial worst case stays at one entry per distinct
/// payload, probed by linear scan without hashing.
#[derive(Clone, Debug)]
pub struct RbcInstance<P> {
    config: Config,
    me: NodeId,
    sender: NodeId,
    /// Distinct Echo payloads and how many peers support each.
    echoes: Vec<(P, usize)>,
    /// Distinct Ready payloads and how many peers support each.
    readies: Vec<(P, usize)>,
    /// Nodes we've already counted an Echo from (any payload).
    echoed_peers: NodeBitset,
    /// Nodes we've already counted a Ready from (any payload).
    readied_peers: NodeBitset,
    sent_echo: bool,
    sent_ready: bool,
    started: bool,
    delivered: Option<P>,
    obs: Obs,
    /// `Debug`-rendered multiplexer tag carried on emitted events (empty
    /// for untagged instances).
    tag_label: String,
}

impl<P> RbcInstance<P>
where
    P: Clone + Eq + fmt::Debug,
{
    /// Creates the instance state for node `me` with designated `sender`.
    pub fn new(config: Config, me: NodeId, sender: NodeId) -> Self {
        RbcInstance {
            config,
            me,
            sender,
            echoes: Vec::new(),
            readies: Vec::new(),
            echoed_peers: NodeBitset::new(config.n()),
            readied_peers: NodeBitset::new(config.n()),
            sent_echo: false,
            sent_ready: false,
            started: false,
            delivered: None,
            obs: Obs::disabled(),
            tag_label: String::new(),
        }
    }

    /// Attaches an observer; `tag_label` identifies this instance on the
    /// emitted events (the multiplexer passes the `Debug`-rendered tag).
    pub fn set_obs(&mut self, obs: Obs, tag_label: String) {
        self.obs = obs;
        self.tag_label = tag_label;
    }

    /// The designated sender of this instance.
    pub fn sender(&self) -> NodeId {
        self.sender
    }

    /// The delivered payload, if delivery has occurred.
    pub fn delivered(&self) -> Option<&P> {
        self.delivered.as_ref()
    }

    /// Starts the broadcast. Only meaningful at the designated sender.
    ///
    /// Returns the initial `Send` broadcast. Calling it again (or at a
    /// non-sender node) returns no actions — the instance ignores the
    /// attempt rather than equivocating.
    pub fn start(&mut self, payload: P) -> Vec<RbcAction<P>> {
        if self.me != self.sender || self.started {
            return Vec::new();
        }
        self.started = true;
        vec![RbcAction::Broadcast(RbcMessage::Send(payload))]
    }

    /// Processes one instance message from (authenticated) peer `from`.
    ///
    /// The message arrives by reference (the transport may share one
    /// allocation across recipients); the payload is cloned only when it
    /// is stored or re-broadcast.
    pub fn on_message(&mut self, from: NodeId, msg: &RbcMessage<P>) -> Vec<RbcAction<P>> {
        if !self.config.contains(from) {
            return Vec::new();
        }
        let mut actions = Vec::new();
        match msg {
            RbcMessage::Send(payload) => {
                // Only the designated sender's first Send triggers an Echo.
                if from == self.sender && !self.sent_echo {
                    self.sent_echo = true;
                    self.emit_phase(RbcPhase::Send);
                    self.emit_phase(RbcPhase::Echo);
                    actions.push(RbcAction::Broadcast(RbcMessage::Echo(payload.clone())));
                }
            }
            RbcMessage::Echo(payload) => {
                if self.echoed_peers.insert(from) {
                    let count = Self::bump(&mut self.echoes, payload);
                    if count >= self.config.echo_threshold() {
                        self.maybe_send_ready(payload, RbcPhase::Echo, count, &mut actions);
                    }
                }
            }
            RbcMessage::Ready(payload) => {
                if self.readied_peers.insert(from) {
                    let count = Self::bump(&mut self.readies, payload);
                    if count >= self.config.ready_threshold() {
                        self.maybe_send_ready(payload, RbcPhase::Ready, count, &mut actions);
                    }
                    if count >= self.config.decide_threshold() && self.delivered.is_none() {
                        self.delivered = Some(payload.clone());
                        self.obs.emit(self.me, || ObsEvent::RbcDelivered {
                            origin: self.sender,
                            tag: self.tag_label.clone(),
                            support: count as u64,
                        });
                        actions.push(RbcAction::Deliver(payload.clone()));
                    }
                }
            }
        }
        actions
    }

    /// Increments `payload`'s supporter count, returning the new count.
    /// Linear probe: honest executions have exactly one distinct payload.
    fn bump(counts: &mut Vec<(P, usize)>, payload: &P) -> usize {
        if let Some(entry) = counts.iter_mut().find(|(p, _)| p == payload) {
            entry.1 += 1;
            return entry.1;
        }
        counts.push((payload.clone(), 1));
        1
    }

    fn emit_phase(&self, phase: RbcPhase) {
        self.obs.emit(self.me, || ObsEvent::RbcPhaseEntered {
            origin: self.sender,
            tag: self.tag_label.clone(),
            phase,
        });
    }

    /// Broadcasts our Ready once, on the first quorum that justifies it:
    /// `via` records which quorum (echo threshold or `f + 1` Ready
    /// amplification) and `support` its size.
    fn maybe_send_ready(
        &mut self,
        payload: &P,
        via: RbcPhase,
        support: usize,
        actions: &mut Vec<RbcAction<P>>,
    ) {
        if !self.sent_ready {
            self.sent_ready = true;
            self.obs.emit(self.me, || ObsEvent::RbcQuorumReached {
                origin: self.sender,
                tag: self.tag_label.clone(),
                phase: via,
                support: support as u64,
            });
            self.emit_phase(RbcPhase::Ready);
            actions.push(RbcAction::Broadcast(RbcMessage::Ready(payload.clone())));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::new(4, 1).unwrap()
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sender_starts_once() {
        let mut inst = RbcInstance::new(cfg(), n(0), n(0));
        let a = inst.start("m");
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::Send("m"))]);
        assert!(inst.start("m2").is_empty(), "second start must be ignored");
    }

    #[test]
    fn non_sender_cannot_start() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.start("m").is_empty());
    }

    #[test]
    fn echo_only_for_designated_sender() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(2), &RbcMessage::Send("evil")).is_empty());
        let a = inst.on_message(n(0), &RbcMessage::Send("m"));
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::Echo("m"))]);
    }

    #[test]
    fn first_send_wins() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        let a = inst.on_message(n(0), &RbcMessage::Send("m1"));
        assert_eq!(a.len(), 1);
        assert!(inst.on_message(n(0), &RbcMessage::Send("m2")).is_empty());
    }

    #[test]
    fn echo_quorum_triggers_ready() {
        // n=4, f=1: echo threshold = ⌈6/2⌉ = 3.
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(0), &RbcMessage::Echo("m")).is_empty());
        assert!(inst.on_message(n(2), &RbcMessage::Echo("m")).is_empty());
        let a = inst.on_message(n(3), &RbcMessage::Echo("m"));
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::Ready("m"))]);
    }

    #[test]
    fn duplicate_echoes_from_same_peer_ignored() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(2), &RbcMessage::Echo("m")).is_empty());
        assert!(inst.on_message(n(2), &RbcMessage::Echo("m")).is_empty());
        assert!(inst.on_message(n(2), &RbcMessage::Echo("other")).is_empty());
        // Only one distinct echoer so far; two more are needed.
        assert!(inst.on_message(n(3), &RbcMessage::Echo("m")).is_empty());
        let a = inst.on_message(n(0), &RbcMessage::Echo("m"));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn ready_amplification_at_f_plus_one() {
        // f+1 = 2 Readys make us Ready without any Echo quorum.
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(2), &RbcMessage::Ready("m")).is_empty());
        let a = inst.on_message(n(3), &RbcMessage::Ready("m"));
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::Ready("m"))]);
    }

    #[test]
    fn delivery_at_two_f_plus_one_readys() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(0), &RbcMessage::Ready("m")).is_empty());
        let a = inst.on_message(n(2), &RbcMessage::Ready("m"));
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::Ready("m"))]);
        let a = inst.on_message(n(3), &RbcMessage::Ready("m"));
        assert_eq!(a, vec![RbcAction::Deliver("m")]);
        assert_eq!(inst.delivered(), Some(&"m"));
    }

    #[test]
    fn delivery_happens_once() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        for i in [0usize, 2, 3] {
            let _ = inst.on_message(n(i), &RbcMessage::Ready("m"));
        }
        assert_eq!(inst.delivered(), Some(&"m"));
        // A fourth Ready must not deliver again.
        assert!(inst.on_message(n(1), &RbcMessage::Ready("m")).is_empty());
    }

    #[test]
    fn conflicting_readies_cannot_both_deliver() {
        // Readys are counted once per peer, so even a fully Byzantine set
        // of senders cannot push two payloads to 2f+1 distinct supporters
        // with only n = 4 peers.
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        let _ = inst.on_message(n(0), &RbcMessage::Ready("a"));
        let _ = inst.on_message(n(2), &RbcMessage::Ready("b"));
        let _ = inst.on_message(n(3), &RbcMessage::Ready("a"));
        let _ = inst.on_message(n(1), &RbcMessage::Ready("b"));
        assert_eq!(inst.delivered(), None);
    }

    #[test]
    fn messages_from_unknown_nodes_are_dropped() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(7), &RbcMessage::Ready("m")).is_empty());
        assert!(inst.readied_peers.is_empty());
    }
}
