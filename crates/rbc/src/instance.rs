//! A single reliable-broadcast instance.

use crate::RbcMessage;
use bft_obs::{Event as ObsEvent, Obs, RbcPhase, TraceCtx, TracePhase};
use bft_types::{Config, NodeBitset, NodeId};
use std::fmt;

/// An instruction produced by an [`RbcInstance`] for its host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RbcAction<P> {
    /// Send this message to every node (including ourselves).
    Broadcast(RbcMessage<P>),
    /// Send this message to exactly one node — the coded variant's
    /// per-recipient fragment dissemination.
    Send {
        /// The recipient.
        to: NodeId,
        /// The message to deliver to `to` alone.
        msg: RbcMessage<P>,
    },
    /// The payload has been reliably delivered — at most once per
    /// instance, and (for correct hosts) with the agreement and totality
    /// guarantees of the protocol.
    Deliver(P),
}

/// The state machine of one Bracha reliable-broadcast instance at one node.
///
/// An instance is identified by its designated sender (plus, when
/// multiplexed by [`RbcMux`](crate::RbcMux), an application tag). The host
/// feeds every incoming instance message to [`RbcInstance::on_message`] and
/// executes the returned actions; if this node is the designated sender it
/// kicks the instance off with [`RbcInstance::start`].
///
/// Byzantine-resistance notes:
///
/// * A `Send` is honoured only if it arrives from the designated sender
///   (channels are authenticated), and only the first one counts.
/// * At most one `Echo` and one `Ready` per peer are counted; later
///   (possibly conflicting) ones from the same peer are ignored.
///
/// Hot-path layout: per-peer dedup happens *before* payload counting
/// (the `*_peers` bitsets), so the per-payload supporter sets collapse to
/// plain counts — honest runs keep exactly one `(payload, count)` entry
/// and the adversarial worst case stays at one entry per distinct
/// payload, probed by linear scan without hashing.
#[derive(Clone, Debug)]
pub struct RbcInstance<P> {
    config: Config,
    me: NodeId,
    sender: NodeId,
    /// Distinct Echo payloads and how many peers support each.
    echoes: Vec<(P, usize)>,
    /// Distinct Ready payloads and how many peers support each.
    readies: Vec<(P, usize)>,
    /// Nodes we've already counted an Echo from (any payload).
    echoed_peers: NodeBitset,
    /// Nodes we've already counted a Ready from (any payload).
    readied_peers: NodeBitset,
    sent_echo: bool,
    sent_ready: bool,
    started: bool,
    delivered: Option<P>,
    obs: Obs,
    /// `Debug`-rendered multiplexer tag carried on emitted events (empty
    /// for untagged instances).
    tag_label: String,
    /// Causal-trace identity of the carried payload, when the host
    /// protocol traces this instance (the ordering layer's batch RBCs).
    trace: Option<TraceCtx>,
    /// Whether this node's `rbc_echo` trace span is currently open.
    echo_span_open: bool,
    /// Whether this node's `rbc_ready` trace span is currently open.
    ready_span_open: bool,
}

impl<P> RbcInstance<P>
where
    P: Clone + Eq + fmt::Debug,
{
    /// Creates the instance state for node `me` with designated `sender`.
    pub fn new(config: Config, me: NodeId, sender: NodeId) -> Self {
        RbcInstance {
            config,
            me,
            sender,
            echoes: Vec::new(),
            readies: Vec::new(),
            echoed_peers: NodeBitset::new(config.n()),
            readied_peers: NodeBitset::new(config.n()),
            sent_echo: false,
            sent_ready: false,
            started: false,
            delivered: None,
            obs: Obs::disabled(),
            tag_label: String::new(),
            trace: None,
            echo_span_open: false,
            ready_span_open: false,
        }
    }

    /// Attaches an observer; `tag_label` identifies this instance on the
    /// emitted events (the multiplexer passes the `Debug`-rendered tag).
    pub fn set_obs(&mut self, obs: Obs, tag_label: String) {
        self.obs = obs;
        self.tag_label = tag_label;
    }

    /// Attaches the causal-trace identity of this instance's payload.
    /// From here on the instance opens an `rbc_echo` span when it echoes,
    /// hands over to an `rbc_ready` span when it turns Ready, and closes
    /// that at delivery. Requires an observer (see [`RbcInstance::set_obs`])
    /// for the spans to go anywhere.
    pub fn set_trace(&mut self, ctx: TraceCtx) {
        self.trace = Some(ctx);
    }

    /// Closes any still-open trace spans at the current observer time —
    /// called when the host garbage-collects the instance, so span
    /// conservation (`SpanStart` ⇔ `SpanEnd`) survives instances that
    /// never reached delivery.
    pub fn finish_spans(&mut self) {
        if let Some(ctx) = self.trace {
            if self.echo_span_open {
                self.echo_span_open = false;
                self.obs.span_end(self.me, ctx, TracePhase::RbcEcho);
            }
            if self.ready_span_open {
                self.ready_span_open = false;
                self.obs.span_end(self.me, ctx, TracePhase::RbcReady);
            }
        }
    }

    /// The designated sender of this instance.
    pub fn sender(&self) -> NodeId {
        self.sender
    }

    /// The delivered payload, if delivery has occurred.
    pub fn delivered(&self) -> Option<&P> {
        self.delivered.as_ref()
    }

    /// Starts the broadcast. Only meaningful at the designated sender.
    ///
    /// Returns the initial `Send` broadcast. Calling it again (or at a
    /// non-sender node) returns no actions — the instance ignores the
    /// attempt rather than equivocating.
    pub fn start(&mut self, payload: P) -> Vec<RbcAction<P>> {
        if self.me != self.sender || self.started {
            return Vec::new();
        }
        self.started = true;
        vec![RbcAction::Broadcast(RbcMessage::Send(payload))]
    }

    /// Processes one instance message from (authenticated) peer `from`.
    ///
    /// The message arrives by reference (the transport may share one
    /// allocation across recipients); the payload is cloned only when it
    /// is stored or re-broadcast.
    pub fn on_message(&mut self, from: NodeId, msg: &RbcMessage<P>) -> Vec<RbcAction<P>> {
        if !self.config.contains(from) {
            return Vec::new();
        }
        let mut actions = Vec::new();
        match msg {
            RbcMessage::Send(payload) => {
                // Only the designated sender's first Send triggers an Echo.
                if from == self.sender && !self.sent_echo {
                    self.sent_echo = true;
                    self.emit_phase(RbcPhase::Send);
                    self.emit_phase(RbcPhase::Echo);
                    if let Some(ctx) = self.trace {
                        self.echo_span_open = true;
                        self.obs.span_start(self.me, ctx, TracePhase::RbcEcho, ctx.root);
                    }
                    actions.push(RbcAction::Broadcast(RbcMessage::Echo(payload.clone())));
                }
            }
            RbcMessage::Echo(payload) => {
                if self.echoed_peers.insert(from) {
                    let count = Self::bump(&mut self.echoes, payload);
                    if count >= self.config.echo_threshold() {
                        self.maybe_send_ready(payload, RbcPhase::Echo, count, &mut actions);
                    }
                }
            }
            RbcMessage::Ready(payload) => {
                if self.readied_peers.insert(from) {
                    let count = Self::bump(&mut self.readies, payload);
                    if count >= self.config.ready_threshold() {
                        self.maybe_send_ready(payload, RbcPhase::Ready, count, &mut actions);
                    }
                    if count >= self.config.decide_threshold() && self.delivered.is_none() {
                        self.delivered = Some(payload.clone());
                        self.obs.emit(self.me, || ObsEvent::RbcDelivered {
                            origin: self.sender,
                            tag: self.tag_label.clone(),
                            support: count as u64,
                        });
                        if let Some(ctx) = self.trace {
                            if self.ready_span_open {
                                self.ready_span_open = false;
                                self.obs.span_end(self.me, ctx, TracePhase::RbcReady);
                            }
                        }
                        actions.push(RbcAction::Deliver(payload.clone()));
                    }
                }
            }
            // Coded-variant traffic belongs to a `CodedInstance`; a Bracha
            // instance ignores it rather than guessing at semantics.
            RbcMessage::CodedSend { .. }
            | RbcMessage::CodedEcho { .. }
            | RbcMessage::CodedReady { .. } => {}
        }
        actions
    }

    /// Increments `payload`'s supporter count, returning the new count.
    /// Linear probe: honest executions have exactly one distinct payload.
    fn bump(counts: &mut Vec<(P, usize)>, payload: &P) -> usize {
        if let Some(entry) = counts.iter_mut().find(|(p, _)| p == payload) {
            entry.1 += 1;
            return entry.1;
        }
        counts.push((payload.clone(), 1));
        1
    }

    fn emit_phase(&self, phase: RbcPhase) {
        self.obs.emit(self.me, || ObsEvent::RbcPhaseEntered {
            origin: self.sender,
            tag: self.tag_label.clone(),
            phase,
        });
    }

    /// Broadcasts our Ready once, on the first quorum that justifies it:
    /// `via` records which quorum (echo threshold or `f + 1` Ready
    /// amplification) and `support` its size.
    fn maybe_send_ready(
        &mut self,
        payload: &P,
        via: RbcPhase,
        support: usize,
        actions: &mut Vec<RbcAction<P>>,
    ) {
        if !self.sent_ready {
            self.sent_ready = true;
            self.obs.emit(self.me, || ObsEvent::RbcQuorumReached {
                origin: self.sender,
                tag: self.tag_label.clone(),
                phase: via,
                support: support as u64,
            });
            self.emit_phase(RbcPhase::Ready);
            if let Some(ctx) = self.trace {
                if self.echo_span_open {
                    self.echo_span_open = false;
                    self.obs.span_end(self.me, ctx, TracePhase::RbcEcho);
                }
                self.ready_span_open = true;
                self.obs.span_start(self.me, ctx, TracePhase::RbcReady, ctx.root);
            }
            actions.push(RbcAction::Broadcast(RbcMessage::Ready(payload.clone())));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::new(4, 1).unwrap()
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sender_starts_once() {
        let mut inst = RbcInstance::new(cfg(), n(0), n(0));
        let a = inst.start("m");
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::Send("m"))]);
        assert!(inst.start("m2").is_empty(), "second start must be ignored");
    }

    #[test]
    fn non_sender_cannot_start() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.start("m").is_empty());
    }

    #[test]
    fn echo_only_for_designated_sender() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(2), &RbcMessage::Send("evil")).is_empty());
        let a = inst.on_message(n(0), &RbcMessage::Send("m"));
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::Echo("m"))]);
    }

    #[test]
    fn first_send_wins() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        let a = inst.on_message(n(0), &RbcMessage::Send("m1"));
        assert_eq!(a.len(), 1);
        assert!(inst.on_message(n(0), &RbcMessage::Send("m2")).is_empty());
    }

    #[test]
    fn echo_quorum_triggers_ready() {
        // n=4, f=1: echo threshold = ⌈6/2⌉ = 3.
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(0), &RbcMessage::Echo("m")).is_empty());
        assert!(inst.on_message(n(2), &RbcMessage::Echo("m")).is_empty());
        let a = inst.on_message(n(3), &RbcMessage::Echo("m"));
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::Ready("m"))]);
    }

    #[test]
    fn duplicate_echoes_from_same_peer_ignored() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(2), &RbcMessage::Echo("m")).is_empty());
        assert!(inst.on_message(n(2), &RbcMessage::Echo("m")).is_empty());
        assert!(inst.on_message(n(2), &RbcMessage::Echo("other")).is_empty());
        // Only one distinct echoer so far; two more are needed.
        assert!(inst.on_message(n(3), &RbcMessage::Echo("m")).is_empty());
        let a = inst.on_message(n(0), &RbcMessage::Echo("m"));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn ready_amplification_at_f_plus_one() {
        // f+1 = 2 Readys make us Ready without any Echo quorum.
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(2), &RbcMessage::Ready("m")).is_empty());
        let a = inst.on_message(n(3), &RbcMessage::Ready("m"));
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::Ready("m"))]);
    }

    #[test]
    fn delivery_at_two_f_plus_one_readys() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(0), &RbcMessage::Ready("m")).is_empty());
        let a = inst.on_message(n(2), &RbcMessage::Ready("m"));
        assert_eq!(a, vec![RbcAction::Broadcast(RbcMessage::Ready("m"))]);
        let a = inst.on_message(n(3), &RbcMessage::Ready("m"));
        assert_eq!(a, vec![RbcAction::Deliver("m")]);
        assert_eq!(inst.delivered(), Some(&"m"));
    }

    #[test]
    fn delivery_happens_once() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        for i in [0usize, 2, 3] {
            let _ = inst.on_message(n(i), &RbcMessage::Ready("m"));
        }
        assert_eq!(inst.delivered(), Some(&"m"));
        // A fourth Ready must not deliver again.
        assert!(inst.on_message(n(1), &RbcMessage::Ready("m")).is_empty());
    }

    #[test]
    fn conflicting_readies_cannot_both_deliver() {
        // Readys are counted once per peer, so even a fully Byzantine set
        // of senders cannot push two payloads to 2f+1 distinct supporters
        // with only n = 4 peers.
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        let _ = inst.on_message(n(0), &RbcMessage::Ready("a"));
        let _ = inst.on_message(n(2), &RbcMessage::Ready("b"));
        let _ = inst.on_message(n(3), &RbcMessage::Ready("a"));
        let _ = inst.on_message(n(1), &RbcMessage::Ready("b"));
        assert_eq!(inst.delivered(), None);
    }

    #[test]
    fn messages_from_unknown_nodes_are_dropped() {
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        assert!(inst.on_message(n(7), &RbcMessage::Ready("m")).is_empty());
        assert!(inst.readied_peers.is_empty());
    }

    fn span_events(events: &[(u64, NodeId, ObsEvent)]) -> Vec<(u64, ObsEvent)> {
        events
            .iter()
            .filter(|(_, _, e)| matches!(e, ObsEvent::SpanStart { .. } | ObsEvent::SpanEnd { .. }))
            .map(|(at, _, e)| (*at, e.clone()))
            .collect()
    }

    #[test]
    fn traced_instance_emits_balanced_echo_and_ready_spans() {
        let (obs, sink) = bft_obs::Obs::new(bft_obs::VecSink::new());
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        inst.set_obs(obs.clone(), "t".into());
        let ctx = TraceCtx::derive(n(0), 0, 0);
        inst.set_trace(ctx);
        obs.set_now(1);
        let _ = inst.on_message(n(0), &RbcMessage::Send("m"));
        obs.set_now(2);
        for i in [0usize, 2, 3] {
            let _ = inst.on_message(n(i), &RbcMessage::Echo("m"));
        }
        obs.set_now(5);
        for i in [0usize, 2, 3] {
            let _ = inst.on_message(n(i), &RbcMessage::Ready("m"));
        }
        let events = sink.lock().take();
        let echo = ctx.span(n(1), TracePhase::RbcEcho);
        let ready = ctx.span(n(1), TracePhase::RbcReady);
        let expected = vec![
            (
                1,
                ObsEvent::SpanStart {
                    trace: ctx.trace,
                    span: echo,
                    parent: ctx.root,
                    phase: TracePhase::RbcEcho,
                },
            ),
            (2, ObsEvent::SpanEnd { trace: ctx.trace, span: echo }),
            (
                2,
                ObsEvent::SpanStart {
                    trace: ctx.trace,
                    span: ready,
                    parent: ctx.root,
                    phase: TracePhase::RbcReady,
                },
            ),
            (5, ObsEvent::SpanEnd { trace: ctx.trace, span: ready }),
        ];
        assert_eq!(span_events(&events), expected);
    }

    #[test]
    fn finish_spans_closes_open_spans_exactly_once() {
        let (obs, sink) = bft_obs::Obs::new(bft_obs::VecSink::new());
        let mut inst = RbcInstance::new(cfg(), n(1), n(0));
        inst.set_obs(obs.clone(), "t".into());
        inst.set_trace(TraceCtx::derive(n(0), 0, 0));
        let _ = inst.on_message(n(0), &RbcMessage::Send("m"));
        obs.set_now(9);
        inst.finish_spans();
        inst.finish_spans();
        let events = sink.lock().take();
        let spans = span_events(&events);
        assert_eq!(spans.len(), 2, "one start, one GC close: {spans:?}");
        assert!(matches!(spans.last(), Some((9, ObsEvent::SpanEnd { .. }))));
    }
}
