//! Multiplexing many reliable-broadcast instances over one channel.
//!
//! Higher-level protocols run one RBC instance per (designated sender,
//! application tag). In Bracha's consensus, for example, the tag is the
//! (round, step) pair, so each node reliably broadcasts exactly one payload
//! per protocol step and equivocation is structurally impossible.

use crate::{CodedInstance, CodedPayload, RbcAction, RbcInstance, RbcMessage};
use bft_obs::{Obs, TraceCtx};
use bft_types::{Config, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// Which reliable-broadcast implementation a mux runs for its instances.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RbcKind {
    /// Bracha's original full-payload Send/Echo/Ready protocol.
    #[default]
    Bracha,
    /// The erasure-coded variant: fragment unicast plus fragment echoes,
    /// O(n·B) bytes on the wire instead of O(n²·B).
    Coded,
}

impl RbcKind {
    /// Stable lowercase label (CLI flags, bench reports).
    pub const fn label(self) -> &'static str {
        match self {
            RbcKind::Bracha => "bracha",
            RbcKind::Coded => "coded",
        }
    }

    /// Parses the [`RbcKind::label`] form.
    pub fn parse(s: &str) -> Option<RbcKind> {
        match s {
            "bracha" => Some(RbcKind::Bracha),
            "coded" => Some(RbcKind::Coded),
            _ => None,
        }
    }
}

impl fmt::Display for RbcKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One instance of either implementation, behind a uniform surface.
#[derive(Clone, Debug)]
enum Inst<P> {
    Bracha(RbcInstance<P>),
    Coded(CodedInstance<P>),
}

impl<P> Inst<P>
where
    P: CodedPayload + Clone + Eq + fmt::Debug,
{
    fn on_message(&mut self, from: NodeId, msg: &RbcMessage<P>) -> Vec<RbcAction<P>> {
        match self {
            Inst::Bracha(i) => i.on_message(from, msg),
            Inst::Coded(i) => i.on_message(from, msg),
        }
    }

    fn start(&mut self, payload: P) -> Vec<RbcAction<P>> {
        match self {
            Inst::Bracha(i) => i.start(payload),
            Inst::Coded(i) => i.start(payload),
        }
    }

    fn delivered(&self) -> Option<&P> {
        match self {
            Inst::Bracha(i) => i.delivered(),
            Inst::Coded(i) => i.delivered(),
        }
    }

    fn finish_spans(&mut self) {
        match self {
            Inst::Bracha(i) => i.finish_spans(),
            Inst::Coded(i) => i.finish_spans(),
        }
    }

    fn buffered_fragment_bytes(&self) -> usize {
        match self {
            Inst::Bracha(_) => 0,
            Inst::Coded(i) => i.buffered_fragment_bytes(),
        }
    }
}

/// A multiplexed instance message: the inner RBC message plus the instance
/// coordinates (designated sender and application tag).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RbcMuxMessage<T, P> {
    /// The designated sender of the instance this message belongs to.
    pub sender: NodeId,
    /// The application tag of the instance.
    pub tag: T,
    /// The inner protocol message.
    pub msg: RbcMessage<P>,
}

impl<T: fmt::Display, P: fmt::Display> fmt::Display for RbcMuxMessage<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}#{}] {}", self.sender, self.tag, self.msg)
    }
}

/// An instruction produced by the [`RbcMux`] for its host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RbcMuxAction<T, P> {
    /// Send this multiplexed message to every node (including ourselves).
    Broadcast(RbcMuxMessage<T, P>),
    /// Send this multiplexed message to exactly one node — coded-variant
    /// fragment dissemination.
    Send {
        /// The recipient.
        to: NodeId,
        /// The message to deliver to `to` alone.
        msg: RbcMuxMessage<T, P>,
    },
    /// Instance `(sender, tag)` reliably delivered `payload`.
    Deliver {
        /// The designated sender of the delivering instance.
        sender: NodeId,
        /// The application tag of the delivering instance.
        tag: T,
        /// The delivered payload.
        payload: P,
    },
}

/// A collection of reliable-broadcast instances keyed by
/// `(designated sender, tag)`, sharing one node identity.
///
/// # Example
///
/// ```
/// use bft_rbc::{RbcMux, RbcMuxAction};
/// use bft_types::{Config, NodeId};
///
/// # fn main() -> Result<(), bft_types::ConfigError> {
/// let cfg = Config::new(4, 1)?;
/// let me = NodeId::new(2);
/// let mut mux: RbcMux<u64, String> = RbcMux::new(cfg, me);
///
/// // Reliably broadcast our round-1 payload.
/// let actions = mux.broadcast(1, "proposal".to_string());
/// assert_eq!(actions.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RbcMux<T, P> {
    config: Config,
    me: NodeId,
    /// Which implementation newly-created instances run (existing
    /// instances keep theirs).
    kind: RbcKind,
    // Ordered (not hashed) so that `deliveries()` and `retain` visit
    // instances in a replay-stable order.
    instances: BTreeMap<(NodeId, T), Inst<P>>,
    obs: Obs,
    // A plain fn pointer (not a boxed closure) so the mux keeps its
    // derived `Clone`/`Debug`; hosts that need state derive the trace
    // context from the instance coordinates alone.
    tracer: Option<fn(NodeId, &T) -> Option<TraceCtx>>,
}

impl<T, P> RbcMux<T, P>
where
    T: Clone + Ord + fmt::Debug,
    P: CodedPayload + Clone + Eq + fmt::Debug,
{
    /// Creates an empty multiplexer for node `me`, running Bracha
    /// instances (see [`RbcMux::set_kind`]).
    pub fn new(config: Config, me: NodeId) -> Self {
        RbcMux {
            config,
            me,
            kind: RbcKind::Bracha,
            instances: BTreeMap::new(),
            obs: Obs::disabled(),
            tracer: None,
        }
    }

    /// Selects the implementation for instances created from here on —
    /// set it before the first message flows so the whole mux agrees.
    /// All nodes of a system must configure the same kind.
    pub fn set_kind(&mut self, kind: RbcKind) {
        self.kind = kind;
    }

    /// The implementation newly-created instances run.
    pub fn kind(&self) -> RbcKind {
        self.kind
    }

    /// Attaches an observer. Instances created from here on emit RBC
    /// events tagged with their `Debug`-rendered tag; attach before the
    /// first message flows (existing instances are not retrofitted).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Registers a trace-context derivation: instances created from here
    /// on (while an observer is attached) emit `rbc_echo` / `rbc_ready`
    /// spans under the context the tracer derives from the instance's
    /// `(designated sender, tag)` coordinates. Returning `None` leaves an
    /// instance untraced.
    pub fn set_tracer(&mut self, tracer: fn(NodeId, &T) -> Option<TraceCtx>) {
        self.tracer = Some(tracer);
    }

    /// This node's identifier.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of instances with any state.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    fn instance(&mut self, sender: NodeId, tag: T) -> &mut Inst<P> {
        let config = self.config;
        let me = self.me;
        let kind = self.kind;
        let obs = &self.obs;
        let tracer = self.tracer;
        self.instances.entry((sender, tag)).or_insert_with_key(|(sender, tag)| {
            let label_ctx =
                obs.enabled().then(|| (format!("{tag:?}"), tracer.and_then(|t| t(*sender, tag))));
            match kind {
                RbcKind::Bracha => {
                    let mut inst = RbcInstance::new(config, me, *sender);
                    if let Some((label, ctx)) = label_ctx {
                        inst.set_obs(obs.clone(), label);
                        if let Some(ctx) = ctx {
                            inst.set_trace(ctx);
                        }
                    }
                    Inst::Bracha(inst)
                }
                RbcKind::Coded => {
                    let mut inst = CodedInstance::new(config, me, *sender);
                    if let Some((label, ctx)) = label_ctx {
                        inst.set_obs(obs.clone(), label);
                        if let Some(ctx) = ctx {
                            inst.set_trace(ctx);
                        }
                    }
                    Inst::Coded(inst)
                }
            }
        })
    }

    /// Fragment bytes buffered across all coded instances — what
    /// [`RbcMux::retain`] reclaims; memory-bound tests watch the peak.
    pub fn buffered_fragment_bytes(&self) -> usize {
        self.instances.values().map(Inst::buffered_fragment_bytes).sum()
    }

    /// Starts reliably broadcasting `payload` under `tag`, with this node
    /// as the designated sender.
    pub fn broadcast(&mut self, tag: T, payload: P) -> Vec<RbcMuxAction<T, P>> {
        let me = self.me;
        let actions = self.instance(me, tag.clone()).start(payload);
        Self::lift(me, tag, actions)
    }

    /// Processes one multiplexed message from (authenticated) peer `from`.
    ///
    /// The message arrives by reference (transports share one allocation
    /// across all recipients of a broadcast); the mux clones only the tag
    /// and whatever payload pieces the instance stores.
    pub fn on_message(
        &mut self,
        from: NodeId,
        msg: &RbcMuxMessage<T, P>,
    ) -> Vec<RbcMuxAction<T, P>> {
        let sender = msg.sender;
        if !self.config.contains(sender) {
            return Vec::new();
        }
        let actions = self.instance(sender, msg.tag.clone()).on_message(from, &msg.msg);
        Self::lift(sender, msg.tag.clone(), actions)
    }

    /// The payload delivered by instance `(sender, tag)`, if any.
    pub fn delivered(&self, sender: NodeId, tag: &T) -> Option<&P> {
        self.instances.get(&(sender, tag.clone())).and_then(|i| i.delivered())
    }

    /// Iterates over all delivered `(sender, tag, payload)` triples.
    pub fn deliveries(&self) -> impl Iterator<Item = (NodeId, &T, &P)> {
        self.instances
            .iter()
            .filter_map(|((sender, tag), inst)| inst.delivered().map(|p| (*sender, tag, p)))
    }

    /// Drops all instance state for instances matching `predicate` —
    /// garbage collection for long-lived protocols (e.g. consensus rounds
    /// that have completed).
    pub fn retain(&mut self, mut predicate: impl FnMut(NodeId, &T) -> bool) {
        self.instances.retain(|(sender, tag), inst| {
            let keep = predicate(*sender, tag);
            if !keep {
                // Close any trace spans the instance still has open so a
                // garbage-collected (e.g. never-delivered) instance does
                // not leak dangling `SpanStart`s into the trace export.
                inst.finish_spans();
            }
            keep
        });
    }

    /// Closes any trace spans still open across all instances — call when
    /// the host shuts the protocol down while instances are mid-flight.
    pub fn finish_spans(&mut self) {
        for inst in self.instances.values_mut() {
            inst.finish_spans();
        }
    }

    fn lift(sender: NodeId, tag: T, actions: Vec<RbcAction<P>>) -> Vec<RbcMuxAction<T, P>> {
        actions
            .into_iter()
            .map(|a| match a {
                RbcAction::Broadcast(msg) => {
                    RbcMuxAction::Broadcast(RbcMuxMessage { sender, tag: tag.clone(), msg })
                }
                RbcAction::Send { to, msg } => {
                    RbcMuxAction::Send { to, msg: RbcMuxMessage { sender, tag: tag.clone(), msg } }
                }
                RbcAction::Deliver(payload) => {
                    RbcMuxAction::Deliver { sender, tag: tag.clone(), payload }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::new(4, 1).unwrap()
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Runs a full 4-node broadcast "by hand" through four muxes, with a
    /// simple synchronous message pump, and checks everyone delivers.
    #[test]
    fn four_muxes_deliver_the_senders_payload() {
        let mut muxes: Vec<RbcMux<u8, String>> = (0..4).map(|i| RbcMux::new(cfg(), n(i))).collect();
        let mut inbox: Vec<(NodeId, RbcMuxMessage<u8, String>)> = Vec::new();

        fn dispatch(
            from: NodeId,
            actions: Vec<RbcMuxAction<u8, String>>,
            inbox: &mut Vec<(NodeId, RbcMuxMessage<u8, String>)>,
            delivered: &mut Vec<(NodeId, String)>,
        ) {
            for a in actions {
                match a {
                    RbcMuxAction::Broadcast(m) => {
                        for _ in 0..4 {
                            inbox.push((from, m.clone()));
                        }
                    }
                    RbcMuxAction::Deliver { payload, .. } => delivered.push((from, payload)),
                    RbcMuxAction::Send { .. } => panic!("bracha never unicasts"),
                }
            }
        }

        let mut delivered = Vec::new();
        let start = muxes[0].broadcast(9, "m".to_string());
        dispatch(n(0), start, &mut inbox, &mut delivered);

        // Pump: each broadcast fans out to all four muxes (the `to` target
        // rotates through 0..4 in push order).
        let mut target = 0usize;
        while let Some((from, msg)) = inbox.pop() {
            let acts = muxes[target % 4].on_message(from, &msg);
            let at = n(target % 4);
            target += 1;
            dispatch(at, acts, &mut inbox, &mut delivered);
        }

        let mut nodes: Vec<usize> = delivered.iter().map(|(id, _)| id.index()).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes, vec![0, 1, 2, 3], "every node must deliver");
        assert!(delivered.iter().all(|(_, p)| p == "m"));
    }

    /// The same pump, but over coded muxes: unicasts go to their target,
    /// broadcasts fan out to everyone, and delivery + GC are checked.
    #[test]
    fn four_coded_muxes_deliver_and_retain_reclaims_fragments() {
        let payload: String = "x".repeat(500);
        let mut muxes: Vec<RbcMux<u8, String>> = (0..4)
            .map(|i| {
                let mut m = RbcMux::new(cfg(), n(i));
                m.set_kind(RbcKind::Coded);
                m
            })
            .collect();
        let mut inbox: Vec<(NodeId, NodeId, RbcMuxMessage<u8, String>)> = Vec::new();
        let mut delivered: Vec<(NodeId, String)> = Vec::new();

        fn dispatch(
            from: NodeId,
            actions: Vec<RbcMuxAction<u8, String>>,
            inbox: &mut Vec<(NodeId, NodeId, RbcMuxMessage<u8, String>)>,
            delivered: &mut Vec<(NodeId, String)>,
        ) {
            for a in actions {
                match a {
                    RbcMuxAction::Broadcast(m) => {
                        for t in 0..4 {
                            inbox.push((from, n(t), m.clone()));
                        }
                    }
                    RbcMuxAction::Send { to, msg } => inbox.push((from, to, msg)),
                    RbcMuxAction::Deliver { payload, .. } => delivered.push((from, payload)),
                }
            }
        }

        let start = muxes[0].broadcast(9, payload.clone());
        dispatch(n(0), start, &mut inbox, &mut delivered);
        let mut head = 0;
        while head < inbox.len() {
            let (from, to, msg) = inbox[head].clone();
            head += 1;
            let acts = muxes[to.index()].on_message(from, &msg);
            dispatch(to, acts, &mut inbox, &mut delivered);
        }

        assert_eq!(delivered.len(), 4, "every node delivers: {delivered:?}");
        assert!(delivered.iter().all(|(_, p)| *p == payload));
        // Fragments stay buffered until the host garbage-collects.
        for mux in &mut muxes {
            assert!(mux.buffered_fragment_bytes() > 0);
            mux.retain(|_, _| false);
            assert_eq!(mux.buffered_fragment_bytes(), 0, "retain reclaims fragment buffers");
            assert_eq!(mux.instance_count(), 0);
        }
    }

    #[test]
    fn kinds_ignore_each_others_messages() {
        let c = bft_ec::encode(b"payload", 4, 2).unwrap();
        // A coded mux ignores Bracha traffic…
        let mut mux: RbcMux<u8, String> = RbcMux::new(cfg(), n(1));
        mux.set_kind(RbcKind::Coded);
        for i in [0usize, 2, 3] {
            let acts = mux.on_message(
                n(i),
                &RbcMuxMessage { sender: n(0), tag: 1, msg: RbcMessage::Ready("m".to_string()) },
            );
            assert!(acts.is_empty());
        }
        assert_eq!(mux.delivered(n(0), &1), None);
        // …and a Bracha mux ignores coded traffic.
        let mut mux: RbcMux<u8, String> = RbcMux::new(cfg(), n(1));
        for i in [0usize, 2, 3] {
            let acts = mux.on_message(
                n(i),
                &RbcMuxMessage {
                    sender: n(0),
                    tag: 1,
                    msg: RbcMessage::CodedReady { root: c.root },
                },
            );
            assert!(acts.is_empty());
        }
        assert_eq!(mux.delivered(n(0), &1), None);
    }

    #[test]
    fn instances_are_isolated_by_tag() {
        let mut mux: RbcMux<u8, String> = RbcMux::new(cfg(), n(1));
        // Echoes for tag 1 must not count toward tag 2.
        for i in [0usize, 2, 3] {
            let _ = mux.on_message(
                n(i),
                &RbcMuxMessage { sender: n(0), tag: 1, msg: RbcMessage::Ready("m".to_string()) },
            );
        }
        assert_eq!(mux.delivered(n(0), &1), Some(&"m".to_string()));
        assert_eq!(mux.delivered(n(0), &2), None);
        assert_eq!(mux.instance_count(), 1);
    }

    #[test]
    fn instances_are_isolated_by_sender() {
        let mut mux: RbcMux<u8, String> = RbcMux::new(cfg(), n(1));
        let _ = mux.on_message(
            n(2),
            &RbcMuxMessage { sender: n(2), tag: 1, msg: RbcMessage::Ready("a".to_string()) },
        );
        let _ = mux.on_message(
            n(3),
            &RbcMuxMessage { sender: n(3), tag: 1, msg: RbcMessage::Ready("a".to_string()) },
        );
        // Two Readys but for *different* instances: no amplification.
        assert_eq!(mux.delivered(n(2), &1), None);
        assert_eq!(mux.delivered(n(3), &1), None);
        assert_eq!(mux.instance_count(), 2);
    }

    #[test]
    fn messages_for_out_of_range_senders_are_dropped() {
        let mut mux: RbcMux<u8, String> = RbcMux::new(cfg(), n(1));
        let acts = mux.on_message(
            n(2),
            &RbcMuxMessage { sender: n(9), tag: 1, msg: RbcMessage::Ready("a".to_string()) },
        );
        assert!(acts.is_empty());
        assert_eq!(mux.instance_count(), 0);
    }

    #[test]
    fn retain_garbage_collects() {
        let mut mux: RbcMux<u8, String> = RbcMux::new(cfg(), n(0));
        let _ = mux.broadcast(1, "a".to_string());
        let _ = mux.broadcast(2, "b".to_string());
        assert_eq!(mux.instance_count(), 2);
        mux.retain(|_, tag| *tag >= 2);
        assert_eq!(mux.instance_count(), 1);
    }

    #[test]
    fn tracer_attaches_contexts_and_retain_closes_open_spans() {
        use bft_obs::{Event as ObsEvent, Obs, TracePhase, VecSink};

        fn tracer(sender: NodeId, tag: &u8) -> Option<TraceCtx> {
            Some(TraceCtx::derive(sender, u64::from(*tag), u64::from(*tag)))
        }

        let (obs, sink) = Obs::new(VecSink::new());
        let mut mux: RbcMux<u8, String> = RbcMux::new(cfg(), n(1));
        mux.set_obs(obs.clone());
        mux.set_tracer(tracer);

        // A Send opens the echo span; GC before delivery must close it.
        let _ = mux.on_message(
            n(0),
            &RbcMuxMessage { sender: n(0), tag: 3, msg: RbcMessage::Send("m".to_string()) },
        );
        obs.set_now(4);
        mux.retain(|_, _| false);
        assert_eq!(mux.instance_count(), 0);

        let ctx = TraceCtx::derive(n(0), 3, 3);
        let echo = ctx.span(n(1), TracePhase::RbcEcho);
        let events = sink.lock().take();
        let spans: Vec<_> = events
            .iter()
            .filter(|(_, _, e)| matches!(e, ObsEvent::SpanStart { .. } | ObsEvent::SpanEnd { .. }))
            .collect();
        assert_eq!(spans.len(), 2, "start + GC close: {spans:?}");
        assert!(
            matches!(spans[0].2, ObsEvent::SpanStart { span, .. } if span == echo),
            "the tracer-derived context names the span"
        );
        assert_eq!(spans[1], &(4, n(1), ObsEvent::SpanEnd { trace: ctx.trace, span: echo }));
    }

    #[test]
    fn deliveries_iterates_completed_instances() {
        let mut mux: RbcMux<u8, String> = RbcMux::new(cfg(), n(1));
        for i in [0usize, 2, 3] {
            let _ = mux.on_message(
                n(i),
                &RbcMuxMessage { sender: n(0), tag: 5, msg: RbcMessage::Ready("m".to_string()) },
            );
        }
        let all: Vec<_> = mux.deliveries().collect();
        assert_eq!(all, vec![(n(0), &5, &"m".to_string())]);
    }
}
