//! Running a single reliable-broadcast instance as a transport-driven
//! [`Process`].

use crate::{CodedInstance, CodedPayload, RbcAction, RbcInstance, RbcMessage};
use bft_types::{Config, Effect, NodeId, Process};
use std::fmt;
use std::hash::Hash;

fn lift<P>(actions: Vec<RbcAction<P>>) -> Vec<Effect<RbcMessage<P>, P>> {
    actions
        .into_iter()
        .map(|a| match a {
            RbcAction::Broadcast(msg) => Effect::Broadcast { msg },
            RbcAction::Send { to, msg } => Effect::Send { to, msg },
            RbcAction::Deliver(p) => Effect::Output(p),
        })
        .collect()
}

/// One node participating in one reliable-broadcast instance, packaged as
/// a [`Process`] so it can run under `bft-sim` or `bft-runtime`.
///
/// The designated sender is constructed with the payload it will
/// broadcast; other nodes are constructed without one. The process output
/// is the delivered payload.
///
/// # Example
///
/// ```
/// use bft_rbc::RbcProcess;
/// use bft_sim::{FixedDelay, World, WorldConfig};
/// use bft_types::{Config, NodeId};
///
/// # fn main() -> Result<(), bft_types::ConfigError> {
/// let cfg = Config::new(4, 1)?;
/// let sender = NodeId::new(0);
/// let mut world = World::new(WorldConfig::new(4), FixedDelay::new(1));
/// for id in cfg.nodes() {
///     let payload = (id == sender).then(|| "hello".to_string());
///     world.add_process(Box::new(RbcProcess::new(cfg, id, sender, payload)));
/// }
/// let report = world.run();
/// assert_eq!(report.unanimous_output(), Some("hello".to_string()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RbcProcess<P> {
    id: NodeId,
    instance: RbcInstance<P>,
    payload: Option<P>,
}

impl<P> RbcProcess<P>
where
    P: Clone + Eq + Hash + fmt::Debug,
{
    /// Creates a participant. `payload` must be `Some` exactly at the
    /// designated sender (it is ignored elsewhere).
    pub fn new(config: Config, id: NodeId, sender: NodeId, payload: Option<P>) -> Self {
        RbcProcess { id, instance: RbcInstance::new(config, id, sender), payload }
    }
}

impl<P> Process for RbcProcess<P>
where
    P: Clone + Eq + Hash + fmt::Debug,
{
    type Msg = RbcMessage<P>;
    type Output = P;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_start(&mut self) -> Vec<Effect<Self::Msg, Self::Output>> {
        match self.payload.take() {
            Some(p) => lift(self.instance.start(p)),
            None => Vec::new(),
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: &Self::Msg,
    ) -> Vec<Effect<Self::Msg, Self::Output>> {
        lift(self.instance.on_message(from, msg))
    }

    fn output(&self) -> Option<P> {
        self.instance.delivered().cloned()
    }
}

/// One node participating in one **erasure-coded** reliable-broadcast
/// instance, packaged as a [`Process`] — the coded counterpart of
/// [`RbcProcess`], runnable under `bft-sim`, `bft-runtime`, or `bft-net`
/// unchanged.
#[derive(Clone, Debug)]
pub struct CodedProcess<P> {
    id: NodeId,
    instance: CodedInstance<P>,
    payload: Option<P>,
}

impl<P> CodedProcess<P>
where
    P: CodedPayload + Clone + Eq + fmt::Debug,
{
    /// Creates a participant. `payload` must be `Some` exactly at the
    /// designated sender (it is ignored elsewhere).
    pub fn new(config: Config, id: NodeId, sender: NodeId, payload: Option<P>) -> Self {
        CodedProcess { id, instance: CodedInstance::new(config, id, sender), payload }
    }
}

impl<P> Process for CodedProcess<P>
where
    P: CodedPayload + Clone + Eq + fmt::Debug,
{
    type Msg = RbcMessage<P>;
    type Output = P;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_start(&mut self) -> Vec<Effect<Self::Msg, Self::Output>> {
        match self.payload.take() {
            Some(p) => lift(self.instance.start(p)),
            None => Vec::new(),
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: &Self::Msg,
    ) -> Vec<Effect<Self::Msg, Self::Output>> {
        lift(self.instance.on_message(from, msg))
    }

    fn output(&self) -> Option<P> {
        self.instance.delivered().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim::{FixedDelay, UniformDelay, World, WorldConfig};

    fn run_broadcast(n: usize, f: usize, seed: u64) -> bft_sim::Report<String> {
        let cfg = Config::new(n, f).unwrap();
        let sender = NodeId::new(0);
        let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, seed));
        for id in cfg.nodes() {
            let payload = (id == sender).then(|| "payload".to_string());
            world.add_process(Box::new(RbcProcess::new(cfg, id, sender, payload)));
        }
        world.run()
    }

    #[test]
    fn validity_with_correct_sender() {
        for seed in 0..10 {
            let report = run_broadcast(4, 1, seed);
            assert!(report.all_correct_decided(), "seed {seed}");
            assert_eq!(report.unanimous_output(), Some("payload".to_string()));
        }
    }

    #[test]
    fn scales_to_larger_systems() {
        let report = run_broadcast(13, 4, 3);
        assert!(report.all_correct_decided());
        assert!(report.agreement_holds());
        // Message complexity: 1 send-broadcast + ≤ n echo-broadcasts +
        // ≤ n ready-broadcasts, each n messages → O(n²).
        let n = 13u64;
        assert!(report.metrics.sent <= (1 + 2 * n) * n);
    }

    #[test]
    fn delivery_even_when_sender_crashes_after_send() {
        // The sender broadcasts Send then halts before echoing: the other
        // nodes still deliver (totality via echo quorum n−1 ≥ ⌈(n+f+1)/2⌉).
        struct SendThenCrash {
            id: NodeId,
        }
        impl Process for SendThenCrash {
            type Msg = RbcMessage<String>;
            type Output = String;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<Self::Msg, String>> {
                vec![Effect::Broadcast { msg: RbcMessage::Send("m".to_string()) }, Effect::Halt]
            }
            fn on_message(&mut self, _f: NodeId, _m: &Self::Msg) -> Vec<Effect<Self::Msg, String>> {
                Vec::new()
            }
        }

        let cfg = Config::new(4, 1).unwrap();
        let sender = NodeId::new(0);
        let mut world = World::new(WorldConfig::new(4), FixedDelay::new(1));
        world.add_faulty_process(Box::new(SendThenCrash { id: sender }));
        for id in cfg.nodes().skip(1) {
            world.add_process(Box::new(RbcProcess::<String>::new(cfg, id, sender, None)));
        }
        let report = world.run();
        assert!(report.all_correct_decided());
        assert_eq!(report.unanimous_output(), Some("m".to_string()));
    }

    #[test]
    fn no_delivery_when_sender_is_silent() {
        let cfg = Config::new(4, 1).unwrap();
        let sender = NodeId::new(0);
        struct Silent {
            id: NodeId,
        }
        impl Process for Silent {
            type Msg = RbcMessage<String>;
            type Output = String;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<Self::Msg, String>> {
                Vec::new()
            }
            fn on_message(&mut self, _f: NodeId, _m: &Self::Msg) -> Vec<Effect<Self::Msg, String>> {
                Vec::new()
            }
        }
        let mut world = World::new(WorldConfig::new(4), FixedDelay::new(1));
        world.add_faulty_process(Box::new(Silent { id: sender }));
        for id in cfg.nodes().skip(1) {
            world.add_process(Box::new(RbcProcess::<String>::new(cfg, id, sender, None)));
        }
        let report = world.run();
        // A silent sender stalls the instance — that's allowed: validity
        // only binds when the sender is correct. But *nobody* may deliver.
        assert_eq!(report.stop, bft_sim::StopReason::QueueDrained);
        assert!(report.outputs.is_empty());
    }
}
