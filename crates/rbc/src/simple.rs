//! Ablation: "echo broadcast" — Bracha broadcast *without* the Ready
//! phase.
//!
//! A two-phase Send/Echo protocol (deliver on an Echo quorum) already
//! prevents equivocation: two different payloads can never both gather
//! `⌈(n+f+1)/2⌉` echoes. What it loses is **totality**: delivery needs a
//! full echo quorum *at each receiver*, and with a faulty sender that
//! sends to only a subset (or a scheduler that starves one node until the
//! others are done) some correct nodes can deliver while others never do.
//! Bracha's `f + 1 → 2f + 1` Ready amplification is precisely the repair.
//!
//! This module exists for the T4 ablation and the test below, which
//! exhibits a concrete totality violation that [`RbcInstance`] is immune
//! to.
//!
//! [`RbcInstance`]: crate::RbcInstance

use crate::RbcMessage;
use bft_types::{Config, Effect, NodeId, Process};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One node of the echo-only broadcast (the ablated protocol).
///
/// Reuses [`RbcMessage`] on the wire but never sends `Ready`.
#[derive(Clone, Debug)]
pub struct EchoBroadcast<P> {
    config: Config,
    id: NodeId,
    sender: NodeId,
    payload: Option<P>,
    echoed: bool,
    // lint: allow(unbounded-map) — one echo per peer (≤ n keys) and the instance is dropped on delivery
    echoes: BTreeMap<P, BTreeSet<NodeId>>,
    echoed_peers: BTreeSet<NodeId>,
    delivered: Option<P>,
}

impl<P> EchoBroadcast<P>
where
    P: Clone + Ord + fmt::Debug,
{
    /// Creates a participant; `payload` must be `Some` exactly at the
    /// designated sender.
    pub fn new(config: Config, id: NodeId, sender: NodeId, payload: Option<P>) -> Self {
        EchoBroadcast {
            config,
            id,
            sender,
            payload,
            echoed: false,
            echoes: BTreeMap::new(),
            echoed_peers: BTreeSet::new(),
            delivered: None,
        }
    }

    /// The delivered payload, if any.
    pub fn delivered(&self) -> Option<&P> {
        self.delivered.as_ref()
    }
}

impl<P> Process for EchoBroadcast<P>
where
    P: Clone + Ord + fmt::Debug,
{
    type Msg = RbcMessage<P>;
    type Output = P;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_start(&mut self) -> Vec<Effect<RbcMessage<P>, P>> {
        match self.payload.take() {
            Some(p) if self.id == self.sender => {
                vec![Effect::Broadcast { msg: RbcMessage::Send(p) }]
            }
            _ => Vec::new(),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: &RbcMessage<P>) -> Vec<Effect<RbcMessage<P>, P>> {
        match msg {
            RbcMessage::Send(p) => {
                if from == self.sender && !self.echoed {
                    self.echoed = true;
                    return vec![Effect::Broadcast { msg: RbcMessage::Echo(p.clone()) }];
                }
            }
            RbcMessage::Echo(p) => {
                if self.echoed_peers.insert(from) {
                    let supporters = self.echoes.entry(p.clone()).or_default();
                    supporters.insert(from);
                    if supporters.len() >= self.config.echo_threshold() && self.delivered.is_none()
                    {
                        self.delivered = Some(p.clone());
                        return vec![Effect::Output(p.clone())];
                    }
                }
            }
            // The ablated protocol has no Ready phase (and no coded
            // variant); ignore strays.
            RbcMessage::Ready(_)
            | RbcMessage::CodedSend { .. }
            | RbcMessage::CodedEcho { .. }
            | RbcMessage::CodedReady { .. } => {}
        }
        Vec::new()
    }

    fn output(&self) -> Option<P> {
        self.delivered.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RbcProcess;
    use bft_sim::{FixedDelay, World, WorldConfig};

    /// With a correct sender both protocols deliver everywhere.
    #[test]
    fn echo_broadcast_works_with_correct_sender() {
        let n = 4;
        let cfg = Config::new(n, 1).unwrap();
        let sender = NodeId::new(0);
        let mut world = World::new(WorldConfig::new(n), FixedDelay::new(1));
        for id in cfg.nodes() {
            let payload = (id == sender).then(|| "m".to_string());
            world.add_process(Box::new(EchoBroadcast::new(cfg, id, sender, payload)));
        }
        let report = world.run();
        assert!(report.all_correct_decided());
        assert_eq!(report.unanimous_output(), Some("m".to_string()));
    }

    /// A Byzantine sender engineering a totality split: it sends the
    /// payload to nodes 1 and 2 (both echo), and a *fake targeted echo*
    /// to node 1 only. Node 1 then counts three echoes (1, 2, sender) and
    /// delivers; node 2 counts two and never can; node 3 saw nothing.
    struct SplittingSender {
        id: NodeId,
    }

    impl Process for SplittingSender {
        type Msg = RbcMessage<String>;
        type Output = String;
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_start(&mut self) -> Vec<Effect<Self::Msg, String>> {
            vec![
                Effect::Send { to: NodeId::new(1), msg: RbcMessage::Send("m".to_string()) },
                Effect::Send { to: NodeId::new(2), msg: RbcMessage::Send("m".to_string()) },
                Effect::Send { to: NodeId::new(1), msg: RbcMessage::Echo("m".to_string()) },
            ]
        }
        fn on_message(&mut self, _f: NodeId, _m: &Self::Msg) -> Vec<Effect<Self::Msg, String>> {
            Vec::new()
        }
    }

    #[test]
    fn echo_only_violates_totality_where_full_rbc_does_not() {
        let n = 4; // f = 1, echo threshold = 3
        let cfg = Config::new(n, 1).unwrap();
        let sender = NodeId::new(0);

        // --- ablated protocol: totality breaks ---
        let mut world = World::new(
            WorldConfig::new(n).stop_policy(bft_sim::StopPolicy::QueueDrain),
            FixedDelay::new(1),
        );
        world.add_faulty_process(Box::new(SplittingSender { id: sender }));
        for id in cfg.nodes().skip(1) {
            world.add_process(Box::new(EchoBroadcast::<String>::new(cfg, id, sender, None)));
        }
        let report = world.run();
        let deciders = report.correct.iter().filter(|id| report.outputs.contains_key(id)).count();
        assert!(
            deciders > 0 && deciders < report.correct.len(),
            "expected a partial delivery (totality violation), got {deciders} of {}",
            report.correct.len()
        );

        // --- full Bracha RBC under the *same* adversary: all-or-none ---
        let mut world = World::new(
            WorldConfig::new(n).stop_policy(bft_sim::StopPolicy::QueueDrain),
            FixedDelay::new(1),
        );
        world.add_faulty_process(Box::new(SplittingSender { id: sender }));
        for id in cfg.nodes().skip(1) {
            world.add_process(Box::new(RbcProcess::<String>::new(cfg, id, sender, None)));
        }
        let report = world.run();
        let deciders = report.correct.iter().filter(|id| report.outputs.contains_key(id)).count();
        assert!(
            deciders == 0 || deciders == report.correct.len(),
            "full RBC must be all-or-none, got {deciders} of {}",
            report.correct.len()
        );
    }
}
