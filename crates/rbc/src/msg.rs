//! Wire messages of one reliable-broadcast instance.

use std::fmt;

/// A message of Bracha's reliable broadcast protocol.
///
/// The payload type `P` is generic; the consensus layer instantiates it
/// with its own (round, step, value) records, the examples with byte
/// strings.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RbcMessage<P> {
    /// The designated sender's initial dissemination of the payload.
    Send(P),
    /// "I have seen the sender's payload `m`." Sent at most once per node.
    Echo(P),
    /// "I am convinced the payload is `m`." Sent at most once per node,
    /// triggered by an Echo quorum or by `f + 1` Readys.
    Ready(P),
}

impl<P> RbcMessage<P> {
    /// The payload carried by this message.
    pub fn payload(&self) -> &P {
        match self {
            RbcMessage::Send(p) | RbcMessage::Echo(p) | RbcMessage::Ready(p) => p,
        }
    }

    /// Short label of the message kind, for metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            RbcMessage::Send(_) => "rbc-send",
            RbcMessage::Echo(_) => "rbc-echo",
            RbcMessage::Ready(_) => "rbc-ready",
        }
    }
}

impl<P: fmt::Display> fmt::Display for RbcMessage<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbcMessage::Send(p) => write!(f, "send({p})"),
            RbcMessage::Echo(p) => write!(f, "echo({p})"),
            RbcMessage::Ready(p) => write!(f, "ready({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_and_kind() {
        assert_eq!(RbcMessage::Send(5).payload(), &5);
        assert_eq!(RbcMessage::Echo(5).payload(), &5);
        assert_eq!(RbcMessage::Ready(5).payload(), &5);
        assert_eq!(RbcMessage::Send(5).kind(), "rbc-send");
        assert_eq!(RbcMessage::Echo(5).kind(), "rbc-echo");
        assert_eq!(RbcMessage::Ready(5).kind(), "rbc-ready");
    }

    #[test]
    fn display_formats() {
        assert_eq!(RbcMessage::Send("m").to_string(), "send(m)");
        assert_eq!(RbcMessage::Ready("m").to_string(), "ready(m)");
    }
}
