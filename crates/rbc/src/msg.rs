//! Wire messages of one reliable-broadcast instance.

use bft_ec::Fragment;
use std::fmt;

/// A message of a reliable-broadcast instance — either of Bracha's
/// original full-payload protocol or of the erasure-coded variant.
///
/// The payload type `P` is generic; the consensus layer instantiates it
/// with its own (round, step, value) records, the examples with byte
/// strings. The coded variants carry [`Fragment`]s instead of `P` — the
/// payload only rematerialises at reconstruction time.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RbcMessage<P> {
    /// The designated sender's initial dissemination of the payload.
    Send(P),
    /// "I have seen the sender's payload `m`." Sent at most once per node.
    Echo(P),
    /// "I am convinced the payload is `m`." Sent at most once per node,
    /// triggered by an Echo quorum or by `f + 1` Readys.
    Ready(P),
    /// Coded dissemination: the designated sender unicasts node `i`'s
    /// fragment, committed under `root`.
    CodedSend {
        /// The sender's fragment-set commitment.
        root: u64,
        /// The recipient's own fragment of the codeword.
        fragment: Fragment,
    },
    /// "Here is my verified fragment of commitment `root`." Broadcast at
    /// most once per node; the fragment index equals the echoing node.
    CodedEcho {
        /// The sender's fragment-set commitment.
        root: u64,
        /// The echoing node's own fragment.
        fragment: Fragment,
    },
    /// "I am convinced of commitment `root`." Sent at most once per node,
    /// triggered by an `n − f` Echo quorum or by `f + 1` Readys.
    CodedReady {
        /// The sender's fragment-set commitment.
        root: u64,
    },
}

impl<P> RbcMessage<P> {
    /// The full payload carried by this message — `None` for the coded
    /// variants, which carry fragments of a payload rather than one.
    pub fn payload(&self) -> Option<&P> {
        match self {
            RbcMessage::Send(p) | RbcMessage::Echo(p) | RbcMessage::Ready(p) => Some(p),
            RbcMessage::CodedSend { .. }
            | RbcMessage::CodedEcho { .. }
            | RbcMessage::CodedReady { .. } => None,
        }
    }

    /// Short label of the message kind, for metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            RbcMessage::Send(_) => "rbc-send",
            RbcMessage::Echo(_) => "rbc-echo",
            RbcMessage::Ready(_) => "rbc-ready",
            RbcMessage::CodedSend { .. } => "rbc-csend",
            RbcMessage::CodedEcho { .. } => "rbc-cecho",
            RbcMessage::CodedReady { .. } => "rbc-cready",
        }
    }
}

impl<P: fmt::Display> fmt::Display for RbcMessage<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbcMessage::Send(p) => write!(f, "send({p})"),
            RbcMessage::Echo(p) => write!(f, "echo({p})"),
            RbcMessage::Ready(p) => write!(f, "ready({p})"),
            RbcMessage::CodedSend { root, fragment } => {
                write!(f, "csend({root:016x}, {fragment})")
            }
            RbcMessage::CodedEcho { root, fragment } => {
                write!(f, "cecho({root:016x}, {fragment})")
            }
            RbcMessage::CodedReady { root } => write!(f, "cready({root:016x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag() -> Fragment {
        Fragment { index: 1, total_len: 3, shard: vec![7, 8], proof: vec![9] }
    }

    #[test]
    fn payload_and_kind() {
        assert_eq!(RbcMessage::Send(5).payload(), Some(&5));
        assert_eq!(RbcMessage::Echo(5).payload(), Some(&5));
        assert_eq!(RbcMessage::Ready(5).payload(), Some(&5));
        assert_eq!(RbcMessage::Send(5).kind(), "rbc-send");
        assert_eq!(RbcMessage::Echo(5).kind(), "rbc-echo");
        assert_eq!(RbcMessage::Ready(5).kind(), "rbc-ready");
    }

    #[test]
    fn coded_variants_carry_no_payload() {
        let m: RbcMessage<u32> = RbcMessage::CodedSend { root: 1, fragment: frag() };
        assert_eq!(m.payload(), None);
        assert_eq!(m.kind(), "rbc-csend");
        let m: RbcMessage<u32> = RbcMessage::CodedEcho { root: 1, fragment: frag() };
        assert_eq!(m.payload(), None);
        assert_eq!(m.kind(), "rbc-cecho");
        let m: RbcMessage<u32> = RbcMessage::CodedReady { root: 1 };
        assert_eq!(m.payload(), None);
        assert_eq!(m.kind(), "rbc-cready");
    }

    #[test]
    fn display_formats() {
        assert_eq!(RbcMessage::Send("m").to_string(), "send(m)");
        assert_eq!(RbcMessage::Ready("m").to_string(), "ready(m)");
        let m: RbcMessage<&str> = RbcMessage::CodedReady { root: 0xab };
        assert_eq!(m.to_string(), "cready(00000000000000ab)");
    }
}
