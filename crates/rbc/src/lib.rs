//! Bracha's reliable broadcast — the Send/Echo/Ready primitive of the
//! PODC 1984 paper, now universally known as *Bracha broadcast*.
//!
//! Reliable broadcast lets a designated **sender** disseminate one payload
//! such that, despite up to `f < n/3` Byzantine nodes (possibly including
//! the sender itself):
//!
//! * **Validity** — if the sender is correct, every correct node
//!   eventually delivers its payload.
//! * **Agreement** — no two correct nodes deliver different payloads.
//! * **Totality** (all-or-none) — if any correct node delivers, every
//!   correct node eventually delivers.
//!
//! The protocol (per instance, at node `p`):
//!
//! 1. The sender sends `Send(m)` to everyone.
//! 2. On the first `Send(m)` *from the designated sender*: broadcast
//!    `Echo(m)`.
//! 3. On `Echo(m)` from `⌈(n+f+1)/2⌉` distinct nodes, or `Ready(m)` from
//!    `f+1` distinct nodes: broadcast `Ready(m)` (once).
//! 4. On `Ready(m)` from `2f+1` distinct nodes: **deliver** `m`.
//!
//! The Echo quorum is big enough that two different payloads can never both
//! reach it (any two such quorums intersect in a correct node, which echoes
//! only once), so a Byzantine sender cannot make correct nodes deliver
//! different values. The `f+1` Ready amplification makes delivery total.
//!
//! The state machine here is sans-io: it consumes messages and returns
//! [`RbcAction`]s. Use [`RbcProcess`] to run one instance under `bft-sim`
//! or `bft-runtime`, or [`RbcMux`] to run many concurrent instances (as the
//! consensus protocol in the `bracha` crate does).
//!
//! Big payloads have a second implementation: [`CodedInstance`] speaks an
//! AVID-style erasure-coded variant (fragment unicast + fragment echoes,
//! O(n·B) bytes on the wire instead of Bracha's O(n²·B)) behind the same
//! action surface. [`RbcMux`] selects per-mux via [`RbcKind`].
//!
//! # Example
//!
//! ```
//! use bft_rbc::{RbcAction, RbcInstance};
//! use bft_types::{Config, NodeId};
//!
//! # fn main() -> Result<(), bft_types::ConfigError> {
//! let cfg = Config::new(4, 1)?;
//! let sender = NodeId::new(0);
//!
//! // The sender starts an instance…
//! let mut s = RbcInstance::new(cfg, sender, sender);
//! let actions = s.start("hello".to_string());
//! assert!(matches!(actions[0], RbcAction::Broadcast(_)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coded;
mod instance;
mod msg;
mod mux;
mod process;
pub mod simple;

pub use coded::{CodedInstance, CodedPayload};
pub use instance::{RbcAction, RbcInstance};
pub use msg::RbcMessage;
pub use mux::{RbcKind, RbcMux, RbcMuxAction, RbcMuxMessage};
pub use process::{CodedProcess, RbcProcess};
pub use simple::EchoBroadcast;
