//! FNV-1a 64 — the workspace's offline hash primitive.
//!
//! Used for the frame checksum trailer (integrity against *accidental*
//! corruption) and, keyed, for the handshake authentication tags.
//!
//! **Security note:** keyed FNV is a stand-in, not a MAC. It documents
//! where a real HMAC/SipHash-style authenticator belongs once the
//! workspace gains a crypto dependency; FNV is trivially forgeable by an
//! adversary who sees tagged traffic. The threat model it does cover is
//! mis-wired clusters (wrong preshared key, wrong peer set) and
//! non-cryptographic corruption.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64 hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// A hasher at the standard offset basis.
    pub const fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
