//! `bft-net` — a real TCP transport runtime for the Bracha stack.
//!
//! This crate is the third execution substrate for the *unmodified*
//! sans-io protocol state machines (`BrachaProcess`, `RbcProcess`):
//!
//! | substrate     | scheduling               | links                    |
//! |---------------|--------------------------|--------------------------|
//! | `bft-sim`     | deterministic, seeded    | in-memory queues         |
//! | `bft-runtime` | OS threads + channels    | in-memory channels       |
//! | `bft-net`     | OS threads + **sockets** | loopback TCP connections |
//!
//! Layers, bottom-up:
//!
//! * [`codec`] — versioned little-endian binary encoding for protocol
//!   messages (no serde; strict, typed decode errors).
//! * [`frame`] — length-prefixed framing with a magic/version header and
//!   an FNV-1a checksum trailer.
//! * [`handshake`] — preshared-key challenge–response authentication, so
//!   every connection carries a verified sender identity (envelopes are
//!   stamped by the transport, never trusted from message bodies).
//! * [`chaos`] — deterministic, seeded link-level fault injection
//!   (drop/retransmit, duplication, delay, partitions) applied *under*
//!   the reliable-link contract.
//! * [`runtime`] — [`NetRuntime`], mirroring `bft_runtime::Runtime`'s
//!   builder API: full-mesh peer manager, reconnect with capped
//!   exponential backoff, cross-connection replay/dedup, and the same
//!   `RuntimeReport` output. The thread-per-link engine lives here.
//! * [`reactor`] — the default I/O engine behind [`NetRuntime`]: one
//!   nonblocking `poll(2)` loop per node drives every socket the node
//!   touches, so the per-node thread count is a small constant instead
//!   of growing with the cluster (select with [`NetDriver`]).
//! * [`gateway`] — the client-facing submit/ack protocol served by the
//!   reactor (typed backpressure NACKs, per-client sequencing) plus an
//!   open-loop load generator for driving a cluster externally.
//!
//! # Example
//!
//! ```no_run
//! use bft_coin::LocalCoin;
//! use bft_net::NetRuntime;
//! use bft_types::{Config, Value};
//! use bracha::{BrachaOptions, BrachaProcess};
//! use std::time::Duration;
//!
//! let cfg = Config::new(4, 1).expect("n >= 3f + 1");
//! let mut rt = NetRuntime::new(4).timeout(Duration::from_secs(10));
//! for id in cfg.nodes() {
//!     rt.add_process(Box::new(BrachaProcess::new(
//!         cfg,
//!         id,
//!         Value::One,
//!         LocalCoin::new(5, id),
//!         BrachaOptions::default(),
//!     )));
//! }
//! let report = rt.run();
//! assert!(report.agreement_holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod clock;
pub mod codec;
pub mod frame;
pub mod gateway;
pub mod handshake;
mod hash;
pub mod reactor;
pub mod runtime;

pub use chaos::{ChaosConfig, LinkChaos, LinkOutage};
pub use codec::{Codec, DecodeError, Reader};
pub use frame::{
    encode_frame, read_frame, write_frame, Frame, FrameError, FrameKind, PayloadTooLarge,
    FRAME_OVERHEAD, HEADER_LEN, MAGIC, MAX_PAYLOAD, TRAILER_LEN, VERSION,
};
pub use gateway::{
    run_load, ClientSubmit, GatewayNotice, GatewayPipe, LoadGenConfig, LoadGenReport, NackReason,
};
pub use handshake::{accept_handshake, dial_handshake, HandshakeError, Secret};
pub use hash::fnv1a64;
pub use runtime::{
    BackoffPolicy, ListenerBounce, NetDriver, NetRuntime, RestartFactory, SetupError,
};
