//! The transport's wall-clock access, concentrated in one module.
//!
//! `bft-net` is a *host* crate like `bft-runtime`: real sockets imply
//! real time (backoff delays, chaos windows, run timeouts). Protocol
//! state machines never see this clock — they stay pure and replayable
//! under `bft-sim`. Keeping every `Instant`/`sleep` here makes the
//! lint escape hatches auditable in one place.

use std::time::Duration;

/// Milliseconds-resolution clock anchored at run start.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Clock {
    // lint: allow(determinism) — the TCP runtime is a wall-clock host; backoff, chaos windows and timeouts are real durations, protocol logic stays clock-free
    start: std::time::Instant,
}

impl Clock {
    /// A clock anchored at "now".
    pub(crate) fn new() -> Self {
        // lint: allow(determinism) — single wall-clock read anchoring the run; see struct note
        Clock { start: std::time::Instant::now() }
    }

    /// Elapsed time since run start.
    pub(crate) fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Milliseconds since run start.
    pub(crate) fn now_ms(&self) -> u64 {
        self.elapsed().as_millis() as u64
    }

    /// Microseconds since run start (the observer clock unit).
    pub(crate) fn now_us(&self) -> u64 {
        self.elapsed().as_micros() as u64
    }
}

/// Sleeps for `ms` milliseconds.
pub(crate) fn sleep_ms(ms: u64) {
    if ms == 0 {
        return;
    }
    // lint: allow(determinism) — real-time wait in the transport host (backoff, retransmission, poll intervals); never called from protocol state machines
    std::thread::sleep(Duration::from_millis(ms));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_from_zero() {
        let c = Clock::new();
        let a = c.now_us();
        sleep_ms(2);
        let b = c.now_us();
        assert!(b >= a);
        assert!(c.now_ms() <= 10_000, "freshly anchored clock reads small");
    }
}
