//! The TCP transport runtime: `bft-runtime`'s API over real sockets.
//!
//! [`NetRuntime`] runs the *unmodified* sans-io processes over loopback
//! TCP, one listener + one actor thread per node and one writer + one
//! reader thread per directed link, and returns the same
//! [`RuntimeReport`] the thread runtime produces — the third execution
//! substrate next to `bft-sim` and `bft-runtime`.
//!
//! # Link discipline
//!
//! Bracha's model assumes authenticated, reliable, FIFO point-to-point
//! links. Here those properties come from TCP (FIFO, integrity within a
//! connection), the handshake (authenticated sender identity per
//! connection — see [`crate::handshake`]) and a replay/dedup layer that
//! extends them *across* connections:
//!
//! * every frame on link `u → v` carries a contiguous sequence number
//!   starting at 1;
//! * the writer keeps a per-link frame log for replay (bodies are
//!   `Arc`-shared with the broadcast fan-out, so the log stores
//!   pointers, not copies); after a reconnect it replays the log from
//!   its trimmed base;
//! * the receiver keeps a per-peer `next expected` counter that survives
//!   connections, so replayed and duplicated frames are discarded and
//!   exactly-once, in-order delivery holds end-to-end;
//! * the receiver acks every [`ACK_EVERY`]-th processed frame back on
//!   the same connection (a cumulative [`FrameKind::Ack`]), and the
//!   writer drains acks while idle and drops acked prefixes from the
//!   log — so resident log size is bounded by the ack cadence plus the
//!   in-flight window instead of growing with the run length.
//!
//! # Shutdown
//!
//! Threads block in `accept`/`read`/`write`/`recv`. The supervisor
//! flips a shutdown flag, sends one `Stop` per actor inbox, and then
//! severs every registered socket (`Shutdown::Both`), which unblocks
//! the I/O-bound threads; everything runs under `std::thread::scope`,
//! so `run` returns only after every thread has exited.

use crate::chaos::{ChaosConfig, LinkChaos, XorShift};
use crate::clock::{sleep_ms, Clock};
use crate::codec::Codec;
use crate::frame::{encode_frame, read_frame, FrameError, FrameKind, FRAME_OVERHEAD};
use crate::gateway::GatewayPipe;
use crate::handshake::{accept_handshake, dial_handshake, Secret};
use crate::reactor::ReactorWaker;
use bft_obs::{Event as ObsEvent, Obs};
use bft_runtime::{BoxedProcess, RuntimeReport};
use bft_types::{Effect, Envelope, NodeId};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::net::{IpAddr, Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks a std mutex, riding through poisoning (a panicked peer thread
/// must not cascade; the supervisor still needs the outputs). Riding
/// through must not *mask* the panic, though: every runtime thread runs
/// under [`supervised`], so the crash is recorded in the [`PanicLedger`]
/// and surfaces as `RuntimeReport::poisoned` plus a `PoisonDetected`
/// event.
pub(crate) fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Records which runtime thread panicked first, so a poisoned run is
/// reported instead of silently ridden through. Clones share one ledger.
#[derive(Clone, Default)]
pub(crate) struct PanicLedger(Arc<LedgerInner>);

#[derive(Default)]
struct LedgerInner {
    hit: AtomicBool,
    context: Mutex<Option<&'static str>>,
}

impl PanicLedger {
    /// Marks the ledger poisoned; the first recorded context wins.
    fn record(&self, context: &'static str) {
        self.0.hit.store(true, Ordering::Relaxed);
        let mut slot = locked(&self.0.context);
        if slot.is_none() {
            *slot = Some(context);
        }
    }

    /// Emits `PoisonDetected` if any supervised thread panicked and
    /// returns whether one did. The emission itself is panic-proofed:
    /// when the *observer sink* is what panicked, reporting through it
    /// again must not take the supervisor down too.
    pub(crate) fn finish(&self, obs: &Obs) -> bool {
        if !self.0.hit.load(Ordering::Relaxed) {
            return false;
        }
        let context = locked(&self.0.context).unwrap_or("thread");
        let obs = obs.clone();
        let _ = std::panic::catch_unwind(AssertUnwindSafe(move || {
            obs.emit(NodeId::new(0), || ObsEvent::PoisonDetected { context });
        }));
        true
    }
}

/// Runs a runtime thread's body under `catch_unwind`, recording a panic
/// in the ledger instead of letting it tear silently through the scope.
pub(crate) fn supervised<F: FnOnce()>(ledger: &PanicLedger, context: &'static str, f: F) {
    if std::panic::catch_unwind(AssertUnwindSafe(f)).is_err() {
        ledger.record(context);
    }
}

/// Sleeps in short slices until `wake_at_ms` on the runtime clock,
/// returning early (with `false`) the moment the shutdown flag flips —
/// chaos delays and retransmission timeouts must never stall teardown.
pub(crate) fn wait_until(clock: Clock, shutdown: &AtomicBool, wake_at_ms: u64) -> bool {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return false;
        }
        let now = clock.now_ms();
        if now >= wake_at_ms {
            return true;
        }
        sleep_ms((wake_at_ms - now).clamp(1, 2));
    }
}

/// Control messages on a node's actor inbox.
pub(crate) enum Ctrl<M> {
    /// Deliver one authenticated protocol message.
    Deliver(Envelope<M>),
    /// Out-of-band input is queued (gateway intake): run `on_tick`.
    Tick,
    /// Tear the actor down.
    Stop,
}

/// An encoded frame body (shared between the links of one broadcast)
/// plus the causal-trace hint stamped into its frame header.
pub(crate) type FrameBody = (Arc<Vec<u8>>, u64);

/// A node's outbound fan-out: one frame queue per directed link, plus —
/// under the reactor driver — the waker that nudges the poll loop after
/// frames are enqueued (the thread driver's writers block on the queues
/// themselves and need no wakeup).
pub(crate) struct LinkFanout {
    /// `txs[i]` feeds the link to node `i`; `None` on the self slot.
    pub(crate) txs: Vec<Option<Sender<FrameBody>>>,
    /// The owning node's reactor waker, if one is attached.
    pub(crate) waker: Option<ReactorWaker>,
}

impl LinkFanout {
    /// Fan-out for the thread driver (no wakeups needed).
    fn local(txs: Vec<Option<Sender<FrameBody>>>) -> Self {
        LinkFanout { txs, waker: None }
    }
}

/// One directed link's writer input: `(from, to, queue of frame bodies)`.
type WriterSpec = (usize, usize, Receiver<FrameBody>);

/// The paired send/receive halves of every node's actor inbox.
pub(crate) type InboxChannels<M> = (Vec<Sender<Ctrl<M>>>, Vec<Receiver<Ctrl<M>>>);

/// Builds the replacement process for a scheduled node restart.
pub type RestartFactory<M, O> = Box<dyn FnOnce() -> BoxedProcess<M, O> + Send>;

/// A scheduled crash-and-restart of one node: at `crash_at_ms` the
/// node's actor drops its process state and discards deliveries (the
/// host is dead; its TCP links stay up, which loopback cannot avoid
/// without severing the whole cluster); at `restart_at_ms` the factory
/// builds a replacement that starts from scratch and must recover
/// through the protocol itself.
pub(crate) struct RestartSpec<M, O> {
    pub(crate) node: NodeId,
    pub(crate) crash_at_ms: u64,
    pub(crate) restart_at_ms: u64,
    pub(crate) factory: RestartFactory<M, O>,
}

/// Capped exponential backoff with deterministic jitter for redials.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// First-retry delay, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on the exponential component, in milliseconds.
    pub cap_ms: u64,
    /// Additional uniform jitter in `[0, jitter_ms]`, in milliseconds.
    pub jitter_ms: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy { base_ms: 5, cap_ms: 200, jitter_ms: 5 }
    }
}

impl BackoffPolicy {
    /// The delay before redial `attempt` (1-based).
    pub(crate) fn delay_ms(&self, attempt: u64, rng: &mut XorShift) -> u64 {
        let shift = attempt.saturating_sub(1).min(16) as u32;
        let exp = self.base_ms.saturating_mul(1u64 << shift).min(self.cap_ms.max(1));
        let jitter = if self.jitter_ms > 0 { rng.below(self.jitter_ms + 1) } else { 0 };
        exp + jitter
    }
}

/// A scheduled mid-run listener outage for one node: the listener socket
/// closes at `at_ms`, live inbound connections are severed, and after
/// `down_ms` the node rebinds on a *fresh* ephemeral port (published to
/// the dialers' address table). This is the reconnect-path test hook.
#[derive(Clone, Copy, Debug)]
pub struct ListenerBounce {
    /// The node whose listener bounces.
    pub node: NodeId,
    /// When the listener goes down, ms since run start.
    pub at_ms: u64,
    /// How long it stays down, in milliseconds.
    pub down_ms: u64,
}

/// Which I/O engine drives the TCP cluster.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NetDriver {
    /// The original thread-per-link engine: one blocking reader and one
    /// blocking writer thread per *directed link* (`2n(n-1)` threads for
    /// `n` nodes), plus one listener and one actor thread per node.
    /// Simple, but the thread count grows quadratically with the
    /// cluster size.
    Threads,
    /// The event-driven engine ([`crate::reactor`]): one `poll(2)` loop
    /// per node owning every socket the node touches, so the thread
    /// count per node is a small constant regardless of `n`. The only
    /// engine that serves client gateways.
    #[default]
    Reactor,
}

/// A socket-setup failure surfaced by [`NetRuntime::try_run`] before any
/// cluster thread starts. The runtime holds no protocol state at this
/// point, so callers can retry, rebind elsewhere, or skip.
#[derive(Debug)]
pub enum SetupError {
    /// A node's peer listener could not bind its configured address
    /// (e.g. the port is already claimed by another socket).
    Bind {
        /// The node whose listener failed to bind.
        node: usize,
        /// The underlying socket error.
        source: io::Error,
    },
    /// A freshly bound listener did not report a local address.
    LocalAddr {
        /// The node whose listener failed.
        node: usize,
        /// The underlying socket error.
        source: io::Error,
    },
    /// A node's client-gateway listener could not be set up.
    GatewayBind {
        /// The node whose gateway listener failed.
        node: usize,
        /// The underlying socket error.
        source: io::Error,
    },
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::Bind { node, source } => {
                write!(f, "node {node}: cannot bind peer listener: {source}")
            }
            SetupError::LocalAddr { node, source } => {
                write!(f, "node {node}: bound listener has no local address: {source}")
            }
            SetupError::GatewayBind { node, source } => {
                write!(f, "node {node}: cannot bind gateway listener: {source}")
            }
        }
    }
}

impl std::error::Error for SetupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SetupError::Bind { source, .. }
            | SetupError::LocalAddr { source, .. }
            | SetupError::GatewayBind { source, .. } => Some(source),
        }
    }
}

/// Registered socket clones for a shutdown domain; severing them
/// unblocks any thread parked in `read`/`write` on the originals.
#[derive(Clone, Default)]
struct StreamRegistry(Arc<Mutex<Vec<TcpStream>>>);

impl StreamRegistry {
    fn register(&self, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            locked(&self.0).push(clone);
        }
    }

    fn shutdown_all(&self) {
        let mut streams = locked(&self.0);
        for s in streams.iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
        streams.clear();
    }
}

/// A thread-per-node runtime over loopback TCP sockets, mirroring
/// [`bft_runtime::Runtime`]'s builder API.
///
/// Build with [`NetRuntime::new`], install one process per node id, then
/// call [`NetRuntime::run`], which blocks until every correct node has
/// produced an output (or the timeout fires) and then tears the cluster
/// down.
pub struct NetRuntime<M, O> {
    pub(crate) n: usize,
    pub(crate) procs: Vec<Option<(BoxedProcess<M, O>, bool)>>,
    pub(crate) timeout: Duration,
    pub(crate) obs: Obs,
    pub(crate) secret: Secret,
    pub(crate) chaos: ChaosConfig,
    pub(crate) backoff: BackoffPolicy,
    pub(crate) bounces: Vec<ListenerBounce>,
    pub(crate) restarts: Vec<RestartSpec<M, O>>,
    driver: NetDriver,
    bind_addr: SocketAddr,
    gateways: Vec<Option<GatewayPipe>>,
}

impl<M, O> fmt::Debug for NetRuntime<M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NetRuntime(n={}, timeout={:?})", self.n, self.timeout)
    }
}

impl<M, O> NetRuntime<M, O>
where
    M: Codec + Clone + fmt::Debug + Send + Sync + 'static,
    O: Clone + fmt::Debug + PartialEq + Send + 'static,
{
    /// Creates an empty runtime for `n` nodes (default timeout: 30 s,
    /// default preshared key, no chaos).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a runtime needs at least one node");
        NetRuntime {
            n,
            procs: (0..n).map(|_| None).collect(),
            timeout: Duration::from_secs(30),
            obs: Obs::disabled(),
            secret: Secret::default(),
            chaos: ChaosConfig::default(),
            backoff: BackoffPolicy::default(),
            bounces: Vec::new(),
            restarts: Vec::new(),
            driver: NetDriver::default(),
            bind_addr: SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0),
            gateways: (0..n).map(|_| None).collect(),
        }
    }

    /// Selects the I/O engine (default: [`NetDriver::Reactor`]).
    pub fn driver(mut self, driver: NetDriver) -> Self {
        self.driver = driver;
        self
    }

    /// Sets the address every node's peer listener binds (default
    /// `127.0.0.1:0`, i.e. a fresh ephemeral port per node). Mostly a
    /// test seam: pointing all nodes at one concrete port makes bind
    /// failures (an already-claimed port) observable via
    /// [`NetRuntime::try_run`].
    pub fn bind_addr(mut self, addr: SocketAddr) -> Self {
        self.bind_addr = addr;
        self
    }

    /// Attaches a client gateway to `node`: the reactor driver binds a
    /// gateway listener for it and serves the framed submit/ack protocol
    /// over the pipe (see [`crate::gateway`]). The bound address is
    /// published via [`GatewayPipe::addr`] once [`NetRuntime::try_run`]
    /// has set the cluster up. Ignored by [`NetDriver::Threads`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn gateway(mut self, node: NodeId, pipe: GatewayPipe) -> Self {
        assert!(node.index() < self.n, "node {node} out of range");
        if let Some(slot) = self.gateways.get_mut(node.index()) {
            *slot = Some(pipe);
        }
        self
    }

    /// Attaches an observer; the runtime emits transport events through
    /// it and keeps its clock at microseconds since run start.
    pub fn observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the run timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the cluster preshared key.
    pub fn secret(mut self, secret: Secret) -> Self {
        self.secret = secret;
        self
    }

    /// Installs the link-level chaos configuration.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Overrides the reconnect backoff policy.
    pub fn backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// Schedules a mid-run listener bounce (reconnect-path testing).
    pub fn bounce_listener(mut self, bounce: ListenerBounce) -> Self {
        self.bounces.push(bounce);
        self
    }

    /// Schedules a crash-and-restart: at `crash_at_ms` (ms since run
    /// start) the node discards its process state and drops every
    /// delivery, as a dead host would; at `restart_at_ms` the `factory`
    /// builds a replacement that starts fresh — any recorded output is
    /// cleared and must be re-earned, typically by catching up from the
    /// peers via the protocol's own state-transfer path.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the restart precedes the
    /// crash.
    pub fn restart_node(
        mut self,
        node: NodeId,
        crash_at_ms: u64,
        restart_at_ms: u64,
        factory: RestartFactory<M, O>,
    ) -> Self {
        assert!(node.index() < self.n, "node {node} out of range");
        assert!(crash_at_ms <= restart_at_ms, "restart must not precede the crash");
        self.restarts.push(RestartSpec { node, crash_at_ms, restart_at_ms, factory });
        self
    }

    /// Installs a correct process.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is occupied.
    pub fn add_process(&mut self, proc_: BoxedProcess<M, O>) {
        self.install(proc_, false);
    }

    /// Installs a Byzantine process, excluded from the completion
    /// condition and correctness checks.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is occupied.
    pub fn add_faulty_process(&mut self, proc_: BoxedProcess<M, O>) {
        self.install(proc_, true);
    }

    fn install(&mut self, proc_: BoxedProcess<M, O>, faulty: bool) {
        let idx = proc_.id().index();
        assert!(idx < self.n, "process id {idx} out of range");
        assert!(self.procs[idx].is_none(), "slot {idx} already occupied");
        self.procs[idx] = Some((proc_, faulty));
    }

    /// Runs the cluster to completion over loopback TCP.
    ///
    /// # Panics
    ///
    /// Panics if some node slot was never populated or socket setup
    /// fails ([`NetRuntime::try_run`] is the non-panicking form).
    pub fn run(self) -> RuntimeReport<O> {
        match self.try_run() {
            Ok(report) => report,
            // lint: allow(panic) — convenience wrapper: callers that want to handle socket setup failures use try_run
            Err(err) => panic!("net runtime setup failed: {err}"),
        }
    }

    /// Binds every socket the run needs, then drives the cluster to
    /// completion under the configured [`NetDriver`].
    ///
    /// Socket setup failures (a listener that cannot bind because its
    /// port is already claimed, a gateway listener without a local
    /// address, …) surface as a typed [`SetupError`] instead of a panic,
    /// so embedding callers (benches, long-lived harnesses) can retry or
    /// report. No cluster thread has started when an error is returned.
    ///
    /// # Panics
    ///
    /// Panics if some node slot was never populated — a programming
    /// error, unlike an environment failure.
    pub fn try_run(mut self) -> Result<RuntimeReport<O>, SetupError> {
        for (i, p) in self.procs.iter().enumerate() {
            assert!(p.is_some(), "node slot {i} was never populated");
        }
        let n = self.n;

        // Bind every listener before any thread starts, so the address
        // table is complete when the first dialer consults it.
        let mut bound = Vec::with_capacity(n);
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for node in 0..n {
            let listener = TcpListener::bind(self.bind_addr)
                .map_err(|source| SetupError::Bind { node, source })?;
            let addr =
                listener.local_addr().map_err(|source| SetupError::LocalAddr { node, source })?;
            let _ = listener.set_nonblocking(true);
            bound.push(listener);
            addrs.push(addr);
        }

        match self.driver {
            NetDriver::Threads => Ok(self.run_threads(bound, addrs)),
            NetDriver::Reactor => {
                let gateway_bind = SocketAddr::new(self.bind_addr.ip(), 0);
                let pipes = std::mem::take(&mut self.gateways);
                let mut fronts = Vec::with_capacity(n);
                for (node, pipe) in pipes.into_iter().enumerate() {
                    match pipe {
                        Some(pipe) => {
                            let listener = TcpListener::bind(gateway_bind)
                                .map_err(|source| SetupError::GatewayBind { node, source })?;
                            let addr = listener
                                .local_addr()
                                .map_err(|source| SetupError::GatewayBind { node, source })?;
                            let _ = listener.set_nonblocking(true);
                            pipe.set_addr(addr);
                            fronts.push(Some((listener, pipe)));
                        }
                        None => fronts.push(None),
                    }
                }
                Ok(crate::reactor::run(self, bound, addrs, fronts))
            }
        }
    }

    /// The thread-per-link engine (see [`NetDriver::Threads`]).
    fn run_threads(mut self, bound: Vec<TcpListener>, addrs: Vec<SocketAddr>) -> RuntimeReport<O> {
        let n = self.n;
        let clock = Clock::new();
        let obs = self.obs.clone();
        let secret = self.secret;
        let backoff = self.backoff;
        let addr_table = Arc::new(Mutex::new(addrs));

        // Actor inboxes and per-link writer queues.
        let (inbox_txs, inbox_rxs): InboxChannels<M> = (0..n).map(|_| mpsc::channel()).unzip();
        let mut link_txs: Vec<Vec<Option<Sender<FrameBody>>>> = Vec::with_capacity(n);
        let mut writer_specs: Vec<WriterSpec> = Vec::new();
        for from in 0..n {
            let mut row = Vec::with_capacity(n);
            for to in 0..n {
                if to == from {
                    row.push(None);
                } else {
                    let (tx, rx) = mpsc::channel();
                    row.push(Some(tx));
                    writer_specs.push((from, to, rx));
                }
            }
            link_txs.push(row);
        }

        let outputs: Arc<Mutex<BTreeMap<NodeId, O>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let ledger = PanicLedger::default();
        // Per-receiver `next expected seq` per peer: survives connection
        // churn, so replayed frames dedup exactly-once.
        let expected: Vec<Arc<Mutex<BTreeMap<usize, u64>>>> =
            (0..n).map(|_| Arc::new(Mutex::new(BTreeMap::new()))).collect();
        let inbound_regs: Vec<StreamRegistry> = (0..n).map(|_| StreamRegistry::default()).collect();
        let outbound_reg = StreamRegistry::default();

        let correct: Vec<NodeId> = self
            .procs
            .iter()
            .enumerate()
            // lint: allow(panic) — every slot was asserted populated at the top of run()
            .filter(|(_, p)| !p.as_ref().expect("slot populated").1)
            .map(|(i, _)| NodeId::new(i))
            .collect();

        let mut restart_specs: BTreeMap<usize, RestartSpec<M, O>> = BTreeMap::new();
        for spec in self.restarts.drain(..) {
            restart_specs.insert(spec.node.index(), spec);
        }

        let mut timed_out = false;
        std::thread::scope(|scope| {
            // Listener threads (each spawns one reader per accepted
            // connection).
            for (j, listener) in bound.into_iter().enumerate() {
                let me = NodeId::new(j);
                let bounce = self.bounces.iter().copied().find(|b| b.node == me);
                let inbound_reg = inbound_regs.get(j).cloned().unwrap_or_default();
                let shared = ReaderShared {
                    me,
                    n,
                    secret,
                    inbox: inbox_txs.get(j).cloned(),
                    expected: expected.get(j).cloned().unwrap_or_default(),
                    shutdown: Arc::clone(&shutdown),
                    obs: obs.clone(),
                    clock,
                };
                let addr_table = Arc::clone(&addr_table);
                let shutdown = Arc::clone(&shutdown);
                let ledger = ledger.clone();
                scope.spawn(move || {
                    let reader_ledger = ledger.clone();
                    supervised(&ledger, "listener", move || {
                        let mut listener_opt = Some(listener);
                        let mut pending_bounce = bounce;
                        loop {
                            if shutdown.load(Ordering::Relaxed) {
                                return;
                            }
                            if let Some(b) = pending_bounce {
                                if clock.now_ms() >= b.at_ms {
                                    pending_bounce = None;
                                    drop(listener_opt.take());
                                    inbound_reg.shutdown_all();
                                    let up_at = b.at_ms + b.down_ms;
                                    while clock.now_ms() < up_at {
                                        if shutdown.load(Ordering::Relaxed) {
                                            return;
                                        }
                                        sleep_ms(2);
                                    }
                                    let Some((l, addr)) = rebind(&shutdown) else { return };
                                    if let Some(slot) = locked(&addr_table).get_mut(j) {
                                        *slot = addr;
                                    }
                                    listener_opt = Some(l);
                                }
                            }
                            let Some(listener) = listener_opt.as_ref() else {
                                sleep_ms(1);
                                continue;
                            };
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    let _ = stream.set_nodelay(true);
                                    inbound_reg.register(&stream);
                                    let shared = shared.clone();
                                    let ledger = reader_ledger.clone();
                                    scope.spawn(move || {
                                        supervised(&ledger, "reader", || {
                                            reader_loop(stream, shared)
                                        });
                                    });
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => sleep_ms(1),
                                Err(_) => sleep_ms(1),
                            }
                        }
                    });
                });
            }

            // Actor threads.
            for (idx, (slot, rx)) in self.procs.iter_mut().zip(inbox_rxs).enumerate() {
                // lint: allow(panic) — every slot was asserted populated at the top of run()
                let (mut proc_, _) = slot.take().expect("slot populated");
                let self_tx = inbox_txs.get(idx).cloned();
                let links = LinkFanout::local(
                    link_txs.get_mut(idx).map(std::mem::take).unwrap_or_default(),
                );
                let outputs = Arc::clone(&outputs);
                let obs = obs.clone();
                let restart = restart_specs.remove(&idx);
                let ledger = ledger.clone();
                scope.spawn(move || {
                    supervised(&ledger, "actor", move || {
                        if let Some(self_tx) = self_tx {
                            actor_loop(
                                &mut proc_, rx, &self_tx, &links, &outputs, &obs, clock, restart,
                            );
                        }
                    });
                });
            }

            // Writer threads, one per directed link.
            for (from, to, rx) in writer_specs {
                let ctx = WriterCtx {
                    me: NodeId::new(from),
                    peer: NodeId::new(to),
                    addr_table: Arc::clone(&addr_table),
                    outbound_reg: outbound_reg.clone(),
                    shutdown: Arc::clone(&shutdown),
                    obs: obs.clone(),
                    clock,
                    secret,
                    backoff,
                    chaos: self.chaos.link(NodeId::new(from), NodeId::new(to)),
                };
                let ledger = ledger.clone();
                scope.spawn(move || supervised(&ledger, "writer", || writer_loop(rx, ctx)));
            }

            // Completion monitor: poll until all correct nodes decided
            // or the timeout fires, then tear everything down.
            loop {
                obs.set_now(clock.now_us());
                {
                    let outs = locked(&outputs);
                    if correct.iter().all(|id| outs.contains_key(id)) {
                        break;
                    }
                }
                if clock.elapsed() > self.timeout {
                    timed_out = true;
                    break;
                }
                sleep_ms(1);
            }
            shutdown.store(true, Ordering::Relaxed);
            for tx in &inbox_txs {
                let _ = tx.send(Ctrl::Stop);
            }
            // Sever every socket: unblocks reads/writes so the scope can
            // join promptly.
            for reg in &inbound_regs {
                reg.shutdown_all();
            }
            outbound_reg.shutdown_all();
        });

        let outputs = Arc::try_unwrap(outputs)
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .unwrap_or_else(|arc| locked(&arc).clone());
        let poisoned = ledger.finish(&obs);
        RuntimeReport { outputs, correct, timed_out, elapsed: clock.elapsed(), poisoned }
    }
}

/// Rebinds a bounced listener on a fresh ephemeral port, retrying until
/// it succeeds or the run shuts down.
pub(crate) fn rebind(shutdown: &AtomicBool) -> Option<(TcpListener, SocketAddr)> {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return None;
        }
        if let Ok(listener) = TcpListener::bind(("127.0.0.1", 0)) {
            if listener.set_nonblocking(true).is_ok() {
                if let Ok(addr) = listener.local_addr() {
                    return Some((listener, addr));
                }
            }
        }
        sleep_ms(2);
    }
}

/// Everything a per-connection reader thread needs.
struct ReaderShared<M> {
    me: NodeId,
    n: usize,
    secret: Secret,
    inbox: Option<Sender<Ctrl<M>>>,
    // lint: allow(unbounded-map) — keys are handshake-authenticated peer indices < n; the next-seq dedup floor must never be GC'd
    expected: Arc<Mutex<BTreeMap<usize, u64>>>,
    shutdown: Arc<AtomicBool>,
    obs: Obs,
    clock: Clock,
}

impl<M> Clone for ReaderShared<M> {
    fn clone(&self) -> Self {
        ReaderShared {
            me: self.me,
            n: self.n,
            secret: self.secret,
            inbox: self.inbox.clone(),
            expected: Arc::clone(&self.expected),
            shutdown: Arc::clone(&self.shutdown),
            obs: self.obs.clone(),
            clock: self.clock,
        }
    }
}

/// One inbound connection: authenticate the dialer, then deliver its
/// frames (deduplicated by sequence number) to the actor inbox.
fn reader_loop<M: Codec + Clone + fmt::Debug>(mut stream: TcpStream, ctx: ReaderShared<M>) {
    reader_session(&mut stream, ctx);
    // The inbound registry holds a cloned fd of this stream (for
    // shutdown severing), so merely dropping our handle does not close
    // the connection. Sever explicitly: without the FIN the dialer can
    // never learn we abandoned the link (e.g. on a sequence gap) and
    // would block forever writing into a connection nobody reads.
    let _ = stream.shutdown(Shutdown::Both);
}

/// The body of [`reader_loop`]; returning (on any path) abandons the
/// connection, which the caller then severs.
fn reader_session<M: Codec + Clone + fmt::Debug>(stream: &mut TcpStream, ctx: ReaderShared<M>) {
    let Some(inbox) = ctx.inbox else { return };
    let Ok(peer) = accept_handshake(stream, ctx.me, ctx.n, ctx.secret) else {
        // A failed handshake surfaces on the dialer side as backoff; the
        // accepter just drops the connection.
        return;
    };
    // First-ever connection from this peer ⇒ PeerConnected; later
    // accepts are reconnects, which the dialer side reports with its
    // attempt count.
    //
    // Reader threads stamp events with the monotonic clock *at emit
    // time* (`emit_at`): the shared `Obs` clock is only refreshed by
    // the actor and monitor loops, so reading it here would attach a
    // stale previous stamp to transport events.
    if !locked(&ctx.expected).contains_key(&peer.index()) {
        ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::PeerConnected { peer });
    }
    loop {
        if ctx.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match read_frame(stream) {
            Ok(frame) => {
                if frame.kind != FrameKind::Msg {
                    ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::FrameDecodeError {
                        reason: "unexpected_kind",
                    });
                    return;
                }
                {
                    let mut exp = locked(&ctx.expected);
                    let next = exp.entry(peer.index()).or_insert(1);
                    if frame.seq < *next {
                        // Duplicate (chaos) or replayed after reconnect.
                        continue;
                    }
                    if frame.seq > *next {
                        // Contiguity violation: drop the connection; the
                        // dialer will reconnect and replay. This is a
                        // transport-ordering fault, not a decode failure,
                        // so it gets its own event (and counter).
                        let expected = *next;
                        let got = frame.seq;
                        ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || {
                            ObsEvent::FrameSequenceGap { from: peer, expected, got }
                        });
                        return;
                    }
                    *next += 1;
                }
                // Cumulative ack back to the writer, on the same
                // connection, so it can trim its replay log. Write
                // failures are ignored: link death surfaces on the next
                // read, and the writer falls back to retaining its log.
                if frame.seq % ACK_EVERY == 0 {
                    if let Ok(ack) = encode_frame(FrameKind::Ack, frame.seq, 0, &[]) {
                        let _ = stream.write_all(&ack);
                    }
                }
                match M::from_bytes(&frame.payload) {
                    Ok(msg) => {
                        let env = Envelope::new(peer, ctx.me, msg);
                        if inbox.send(Ctrl::Deliver(env)).is_err() {
                            return;
                        }
                    }
                    Err(err) => {
                        ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || {
                            ObsEvent::FrameDecodeError { reason: err.label() }
                        });
                        return;
                    }
                }
            }
            Err(FrameError::Closed) => {
                if !ctx.shutdown.load(Ordering::Relaxed) {
                    ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::PeerDisconnected {
                        peer,
                        reason: "closed",
                    });
                }
                return;
            }
            Err(FrameError::Decode(err)) => {
                ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::FrameDecodeError {
                    reason: err.label(),
                });
                return;
            }
            Err(FrameError::Io(_)) => {
                if !ctx.shutdown.load(Ordering::Relaxed) {
                    ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::PeerDisconnected {
                        peer,
                        reason: "read_failed",
                    });
                }
                return;
            }
        }
    }
}

/// Everything a per-link writer thread needs.
struct WriterCtx {
    me: NodeId,
    peer: NodeId,
    addr_table: Arc<Mutex<Vec<SocketAddr>>>,
    outbound_reg: StreamRegistry,
    shutdown: Arc<AtomicBool>,
    obs: Obs,
    clock: Clock,
    secret: Secret,
    backoff: BackoffPolicy,
    chaos: LinkChaos,
}

/// How long the writer waits on its queue before re-checking shutdown.
const WRITER_POLL_MS: u64 = 10;
/// The receiver acks every `ACK_EVERY`-th processed frame (cumulative),
/// letting the writer trim its replay log. Small enough to bound the
/// log, large enough that ack traffic stays negligible.
pub(crate) const ACK_EVERY: u64 = 16;
/// Retransmission timeout after a chaos-dropped attempt.
pub(crate) const RETRANSMIT_RTO_MS: u64 = 2;
/// Cap on chaos retransmissions of a single frame: the chaos layer sits
/// *under* the reliable-link contract, so after the cap the frame is
/// sent anyway (mirroring a real link-layer giving way to delivery).
pub(crate) const MAX_RETRANSMIT: u32 = 64;

/// One directed link: drain the queue, keep the connection alive
/// (redialing with capped backoff), apply chaos, and write framed
/// messages with contiguous sequence numbers.
/// Whether an outbound stream's peer has gone away: a pending socket
/// error (e.g. a RST) or EOF on a non-blocking peek. The writer never
/// reads application data on this stream, so any readable EOF means the
/// receiver closed its end.
fn conn_dead(stream: &TcpStream) -> bool {
    if !matches!(stream.take_error(), Ok(None)) {
        return true;
    }
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let dead = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => e.kind() != io::ErrorKind::WouldBlock,
    };
    let _ = stream.set_nonblocking(false);
    dead
}

/// Nonblockingly consumes any *complete* ack frames buffered on the
/// writer's stream and returns the highest cumulative ack seen (`None`
/// if none arrived). A partial frame is left buffered for next time; a
/// non-ack frame or transport error is surfaced as `Err` so the caller
/// treats the connection as dead.
fn drain_acks(stream: &mut TcpStream) -> io::Result<Option<u64>> {
    // An ack is an empty-payload frame: header + trace hint + trailer.
    let mut best = None;
    loop {
        stream.set_nonblocking(true)?;
        let mut probe = [0u8; FRAME_OVERHEAD];
        let peeked = stream.peek(&mut probe);
        let _ = stream.set_nonblocking(false);
        match peeked {
            // A whole ack is buffered: this read cannot block.
            Ok(n) if n >= FRAME_OVERHEAD => match read_frame(stream) {
                Ok(f) if f.kind == FrameKind::Ack => {
                    best = Some(best.unwrap_or(0).max(f.seq));
                }
                _ => return Err(io::Error::from(io::ErrorKind::InvalidData)),
            },
            // EOF (0) or a partial frame: nothing (more) to consume now.
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => return Err(e),
        }
    }
    Ok(best)
}

fn writer_loop(rx: Receiver<FrameBody>, mut ctx: WriterCtx) {
    let me = ctx.me;
    let peer = ctx.peer;
    let mut jitter_rng = {
        let mut h = crate::hash::Fnv64::new();
        h.write(b"backoff-jitter");
        h.write(&(me.index() as u32).to_le_bytes());
        h.write(&(peer.index() as u32).to_le_bytes());
        XorShift::new(h.finish())
    };
    // The per-link frame log: seq of log[i] is i + 1. Bodies are shared
    // with the broadcast fan-out (Arc), so this stores pointers (plus
    // each body's trace hint for the frame header).
    let mut log: Vec<FrameBody> = Vec::new();
    // Sequence numbers already acked and dropped from the log's front:
    // `log[i]` carries seq `log_base + i + 1`, and replay after a
    // reconnect starts at `log_base + 1` (the receiver acked everything
    // at or below `log_base`, so nothing earlier can be needed).
    let mut log_base: u64 = 0;
    let mut peak: usize = 0;
    let mut conn: Option<TcpStream> = None;
    let mut sent = 0usize;
    let mut ever_connected = false;
    let mut draining = false;
    'main: loop {
        if ctx.shutdown.load(Ordering::Relaxed) {
            break;
        }
        if !draining {
            match rx.recv_timeout(Duration::from_millis(WRITER_POLL_MS)) {
                Ok(body) => {
                    log.push(body);
                    while let Ok(more) = rx.try_recv() {
                        log.push(more);
                    }
                    peak = peak.max(log.len());
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => draining = true,
            }
        }
        if sent == log.len() {
            // Consume cumulative acks first (they share the stream, so
            // buffered ack bytes must not be mistaken for peer liveness
            // data by the probe below) and drop the acked prefix.
            if let Some(stream) = conn.as_mut() {
                match drain_acks(stream) {
                    Ok(Some(acked)) if acked > log_base => {
                        let k = ((acked - log_base) as usize).min(sent);
                        log.drain(..k);
                        sent -= k;
                        log_base += k as u64;
                    }
                    Ok(_) => {}
                    Err(_) => {
                        conn = None;
                        sent = 0;
                        if !ctx.shutdown.load(Ordering::Relaxed) {
                            ctx.obs.emit_at(ctx.clock.now_us(), me, || {
                                ObsEvent::PeerDisconnected { peer, reason: "ack_failed" }
                            });
                        }
                        continue;
                    }
                }
            }
            // An idle link can die silently: a receiver that detected a
            // sequence gap (or was severed) closes its end, but with no
            // pending frames the writer would never hit a write error and
            // never redial — starving the peer of the replay it needs.
            // Probe the socket; on a dead link force a full replay.
            if conn.as_ref().is_some_and(conn_dead) {
                conn = None;
                sent = 0;
                if !ctx.shutdown.load(Ordering::Relaxed) {
                    // Writer threads, like readers, stamp transport
                    // events at emit time — the shared clock is not
                    // refreshed from this thread.
                    ctx.obs.emit_at(ctx.clock.now_us(), me, || ObsEvent::PeerDisconnected {
                        peer,
                        reason: "peer_closed",
                    });
                }
                continue;
            }
            if draining {
                break;
            }
            continue;
        }

        // Pending frames: make sure we hold an authenticated stream.
        if conn.is_none() {
            let mut attempt: u64 = 0;
            conn = loop {
                if ctx.shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                let addr = locked(&ctx.addr_table).get(peer.index()).copied();
                let Some(addr) = addr else { break None };
                if let Ok(mut stream) = TcpStream::connect(addr) {
                    let _ = stream.set_nodelay(true);
                    if dial_handshake(&mut stream, me, peer, ctx.secret).is_ok() {
                        ctx.outbound_reg.register(&stream);
                        let was_reconnect = ever_connected;
                        let at = ctx.clock.now_us();
                        if was_reconnect {
                            let attempts = attempt;
                            ctx.obs
                                .emit_at(at, me, || ObsEvent::PeerReconnected { peer, attempts });
                        } else {
                            ctx.obs.emit_at(at, me, || ObsEvent::PeerConnected { peer });
                        }
                        ever_connected = true;
                        if was_reconnect && ctx.chaos.skip_replay_once() {
                            // Chaos: the writer "lost" its replay log and
                            // resumes from its send counter. Writes that
                            // died in the previous socket's buffers were
                            // counted as sent, so the receiver sees the
                            // stream jump ahead, reports a sequence gap
                            // and drops the connection; the next dial
                            // replays in full.
                        } else {
                            // Fresh connection ⇒ replay the whole log; the
                            // receiver dedups by sequence number.
                            sent = 0;
                        }
                        break Some(stream);
                    }
                }
                attempt += 1;
                let delay_ms = ctx.backoff.delay_ms(attempt, &mut jitter_rng);
                let shown_attempt = attempt;
                ctx.obs.emit_at(ctx.clock.now_us(), me, || ObsEvent::ReconnectBackoff {
                    peer,
                    attempt: shown_attempt,
                    delay_ms,
                });
                if !wait_until(ctx.clock, &ctx.shutdown, ctx.clock.now_ms() + delay_ms) {
                    break None;
                }
            };
            if conn.is_none() {
                break 'main; // only reachable on shutdown
            }
        }

        // Drain acks during sustained sends too, not just when idle: a
        // receiver blocked writing an ack into a full socket buffer
        // would stop reading and stall the link — and the log would
        // never trim under a one-way flood.
        if sent.is_multiple_of(ACK_EVERY as usize) {
            if let Some(stream) = conn.as_mut() {
                match drain_acks(stream) {
                    Ok(Some(acked)) if acked > log_base => {
                        let k = ((acked - log_base) as usize).min(sent);
                        log.drain(..k);
                        sent -= k;
                        log_base += k as u64;
                    }
                    Ok(_) => {}
                    Err(_) => {
                        conn = None;
                        sent = 0;
                        if !ctx.shutdown.load(Ordering::Relaxed) {
                            ctx.obs.emit_at(ctx.clock.now_us(), me, || {
                                ObsEvent::PeerDisconnected { peer, reason: "ack_failed" }
                            });
                        }
                        continue;
                    }
                }
            }
        }

        let seq = log_base + sent as u64 + 1;

        // Partition window: frames wait out the outage (they are not
        // lost — the reliable-link contract still holds).
        while let Some(until) = ctx.chaos.outage_until(ctx.clock.now_ms()) {
            if ctx.shutdown.load(Ordering::Relaxed) {
                break 'main;
            }
            let now = ctx.clock.now_ms();
            sleep_ms(until.saturating_sub(now).clamp(1, 5));
        }

        // Injected delay (head-of-line: per-link FIFO is preserved).
        // Waited out in shutdown-aware slices: a long chaos delay must
        // not outlive the run's teardown.
        let delay = ctx.chaos.delay_ms();
        if delay > 0 && !wait_until(ctx.clock, &ctx.shutdown, ctx.clock.now_ms() + delay) {
            break 'main;
        }

        // Wire loss: the attempt is dropped, and the *same* frame is
        // retransmitted after an RTO — sequence numbers stay contiguous.
        let mut attempts = 0u32;
        while attempts < MAX_RETRANSMIT && ctx.chaos.attempt_dropped() {
            ctx.obs.emit_at(ctx.clock.now_us(), me, || ObsEvent::FrameDropped { to: peer, seq });
            attempts += 1;
            if !wait_until(ctx.clock, &ctx.shutdown, ctx.clock.now_ms() + RETRANSMIT_RTO_MS) {
                break 'main;
            }
        }

        let Some((body, trace)) = log.get(sent) else { continue };
        let Ok(bytes) = encode_frame(FrameKind::Msg, seq, *trace, body) else {
            // Unreachable: oversize bodies are rejected at enqueue time in
            // `apply` and never enter the log. Skipping (rather than
            // spinning on the same frame forever) keeps the writer live if
            // that invariant is ever broken.
            ctx.obs.emit_at(ctx.clock.now_us(), me, || ObsEvent::FrameDecodeError {
                reason: "payload_too_large",
            });
            sent += 1;
            continue;
        };
        let duplicate = ctx.chaos.duplicate();
        let Some(stream) = conn.as_mut() else { continue };
        let ok =
            stream.write_all(&bytes).is_ok() && (!duplicate || stream.write_all(&bytes).is_ok());
        if ok {
            sent += 1;
        } else {
            conn = None;
            if !ctx.shutdown.load(Ordering::Relaxed) {
                ctx.obs.emit_at(ctx.clock.now_us(), me, || ObsEvent::PeerDisconnected {
                    peer,
                    reason: "write_failed",
                });
            }
        }
    }
    let frames = peak as u64;
    ctx.obs.emit_at(ctx.clock.now_us(), me, || ObsEvent::LinkLogPeak { peer, frames });
}

/// The body of one actor thread (mirrors `bft-runtime`'s actor loop;
/// the only difference is where effects go — the net fan-out). Shared
/// verbatim by both drivers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn actor_loop<M, O>(
    proc_: &mut BoxedProcess<M, O>,
    rx: Receiver<Ctrl<M>>,
    self_tx: &Sender<Ctrl<M>>,
    links: &LinkFanout,
    outputs: &Mutex<BTreeMap<NodeId, O>>,
    obs: &Obs,
    clock: Clock,
    mut restart: Option<RestartSpec<M, O>>,
) where
    M: Codec + Clone + fmt::Debug + Send + Sync + 'static,
    O: Clone + fmt::Debug + PartialEq + Send + 'static,
{
    let me = proc_.id();
    let mut halted = false;
    let mut crashed = false;
    // Refresh the shared stamp before every protocol step so events
    // emitted from inside the process (spans included) carry the time
    // of *this* step, not whatever the monitor loop last wrote.
    obs.set_now(clock.now_us());
    let effects = proc_.on_start();
    apply(me, effects, self_tx, links, outputs, &mut halted, obs);

    // One loop until Stop: live deliveries are processed, post-halt and
    // post-crash deliveries are drained and dropped (same discipline as
    // bft-runtime), and a scheduled crash/restart fires by deadline.
    loop {
        if let Some(spec) = restart.as_ref() {
            let now = clock.now_ms();
            if !crashed && now >= spec.crash_at_ms {
                // The host dies: from here every delivery is dropped and
                // the process state is as good as gone.
                crashed = true;
                obs.set_now(clock.now_us());
                obs.emit(me, || ObsEvent::NodeHalted);
            }
            if crashed && now >= spec.restart_at_ms {
                if let Some(spec) = restart.take() {
                    *proc_ = (spec.factory)();
                    crashed = false;
                    halted = false;
                    // Any pre-crash output no longer reflects this
                    // node's state; the replacement must re-earn it.
                    locked(outputs).remove(&me);
                    obs.set_now(clock.now_us());
                    let effects = proc_.on_start();
                    apply(me, effects, self_tx, links, outputs, &mut halted, obs);
                }
            }
        }
        let ctrl = if let Some(spec) = restart.as_ref() {
            // A crash or restart deadline is pending: wake for it even
            // if no delivery arrives.
            let deadline = if crashed { spec.restart_at_ms } else { spec.crash_at_ms };
            let wait = deadline.saturating_sub(clock.now_ms()).clamp(1, 50);
            match rx.recv_timeout(Duration::from_millis(wait)) {
                Ok(c) => c,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match rx.recv() {
                Ok(c) => c,
                Err(_) => break,
            }
        };
        match ctrl {
            Ctrl::Deliver(env) => {
                obs.set_now(clock.now_us());
                if crashed || halted || proc_.is_halted() {
                    obs.emit(me, || ObsEvent::MessageDropped { from: env.from });
                    continue;
                }
                obs.emit(me, || ObsEvent::MessageDelivered { from: env.from, kind: "net" });
                let effects = proc_.on_message(env.from, &env.msg);
                apply(me, effects, self_tx, links, outputs, &mut halted, obs);
            }
            Ctrl::Tick => {
                // Out-of-band input is queued (gateway intake): give the
                // process a turn even though no message arrived.
                obs.set_now(clock.now_us());
                if crashed || halted || proc_.is_halted() {
                    continue;
                }
                let effects = proc_.on_tick();
                apply(me, effects, self_tx, links, outputs, &mut halted, obs);
            }
            Ctrl::Stop => break,
        }
    }
}

/// Rejects bodies that cannot be framed ([`crate::frame::MAX_PAYLOAD`])
/// at the send boundary, before they are assigned a sequence number.
/// Letting one into a writer log would wedge the link: the frame can
/// never be transmitted, and skipping it would leave a permanent
/// sequence gap on replay.
fn oversize(me: NodeId, body: &[u8], obs: &Obs) -> bool {
    if body.len() > crate::frame::MAX_PAYLOAD as usize {
        let len = body.len() as u64;
        obs.emit(me, || ObsEvent::PayloadRejected { len });
        return true;
    }
    false
}

fn apply<M, O>(
    me: NodeId,
    effects: Vec<Effect<M, O>>,
    self_tx: &Sender<Ctrl<M>>,
    links: &LinkFanout,
    outputs: &Mutex<BTreeMap<NodeId, O>>,
    halted: &mut bool,
    obs: &Obs,
) where
    M: Codec + Clone,
{
    let mut queued = false;
    for effect in effects {
        match effect {
            Effect::Send { to, msg } => {
                let body = msg.to_bytes();
                if oversize(me, &body, obs) {
                    continue;
                }
                let trace = msg.trace_hint();
                let bytes = (body.len() + FRAME_OVERHEAD) as u64;
                obs.emit(me, || ObsEvent::MessageSent { to, kind: "net", bytes });
                match links.txs.get(to.index()).and_then(Option::as_ref) {
                    Some(tx) => {
                        let _ = tx.send((Arc::new(body), trace));
                        queued = true;
                    }
                    None if to == me => {
                        // Self-delivery short-circuits in-process (the
                        // encoded size is still reported for parity).
                        let _ = self_tx.send(Ctrl::Deliver(Envelope::new(me, me, msg)));
                    }
                    None => {}
                }
            }
            Effect::Broadcast { msg } => {
                // Encode once: every remote link's log entry shares one
                // body allocation.
                let body = Arc::new(msg.to_bytes());
                if oversize(me, &body, obs) {
                    continue;
                }
                let trace = msg.trace_hint();
                let bytes = (body.len() + FRAME_OVERHEAD) as u64;
                for (i, link) in links.txs.iter().enumerate() {
                    let to = NodeId::new(i);
                    obs.emit(me, || ObsEvent::MessageSent { to, kind: "net", bytes });
                    match link {
                        Some(tx) => {
                            let _ = tx.send((Arc::clone(&body), trace));
                            queued = true;
                        }
                        None => {
                            let env = Envelope::new(me, to, msg.clone());
                            let _ = self_tx.send(Ctrl::Deliver(env));
                        }
                    }
                }
            }
            Effect::Output(o) => {
                locked(outputs).entry(me).or_insert(o);
            }
            Effect::Halt => {
                if !*halted {
                    *halted = true;
                    obs.emit(me, || ObsEvent::NodeHalted);
                }
            }
        }
    }
    // Under the reactor driver the node's poll loop may be parked;
    // freshly queued frames warrant one nudge.
    if queued {
        if let Some(waker) = &links.waker {
            waker.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_types::Process;

    struct Echo {
        id: NodeId,
        n: usize,
        heard: usize,
    }

    impl Process for Echo {
        type Msg = u64;
        type Output = usize;
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_start(&mut self) -> Vec<Effect<u64, usize>> {
            vec![Effect::Broadcast { msg: self.id.index() as u64 }]
        }
        fn on_message(&mut self, _from: NodeId, _msg: &u64) -> Vec<Effect<u64, usize>> {
            self.heard += 1;
            if self.heard == self.n {
                vec![Effect::Output(self.heard), Effect::Halt]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn all_to_all_echo_completes_over_tcp() {
        let n = 3;
        let mut rt = NetRuntime::new(n).timeout(Duration::from_secs(20));
        for id in NodeId::all(n) {
            rt.add_process(Box::new(Echo { id, n, heard: 0 }));
        }
        let report = rt.run();
        assert!(!report.timed_out);
        assert!(report.all_correct_decided());
        assert_eq!(report.unanimous_output(), Some(n));
    }

    #[test]
    fn timeout_fires_for_stalled_clusters() {
        struct Stuck {
            id: NodeId,
        }
        impl Process for Stuck {
            type Msg = u64;
            type Output = usize;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<u64, usize>> {
                Vec::new()
            }
            fn on_message(&mut self, _f: NodeId, _m: &u64) -> Vec<Effect<u64, usize>> {
                Vec::new()
            }
        }
        let mut rt = NetRuntime::new(2).timeout(Duration::from_millis(200));
        rt.add_process(Box::new(Stuck { id: NodeId::new(0) }));
        rt.add_process(Box::new(Stuck { id: NodeId::new(1) }));
        let report = rt.run();
        assert!(report.timed_out);
        assert!(!report.all_correct_decided());
    }

    #[test]
    fn echo_completes_under_chaos() {
        let n = 3;
        let chaos = ChaosConfig {
            seed: 11,
            drop_per_mille: 150,
            dup_per_mille: 100,
            delay_per_mille: 200,
            max_delay_ms: 2,
            ..ChaosConfig::default()
        };
        let mut rt = NetRuntime::new(n).timeout(Duration::from_secs(20)).chaos(chaos);
        for id in NodeId::all(n) {
            rt.add_process(Box::new(Echo { id, n, heard: 0 }));
        }
        let report = rt.run();
        assert!(!report.timed_out);
        assert_eq!(report.unanimous_output(), Some(n));
    }

    #[test]
    fn transport_events_are_stamped_at_emit_time() {
        use bft_obs::{SharedSink, VecSink};

        // Poison the shared clock with an absurd stamp before the run:
        // any emission path that reads the shared clock instead of the
        // runtime's monotonic clock would attach this stale value.
        let sink = SharedSink::new(VecSink::new());
        let obs = Obs::to(&sink);
        obs.set_now(u64::MAX);

        let n = 3;
        let mut rt = NetRuntime::new(n).timeout(Duration::from_secs(20)).observer(obs);
        for id in NodeId::all(n) {
            rt.add_process(Box::new(Echo { id, n, heard: 0 }));
        }
        let report = rt.run();
        assert!(!report.timed_out);

        // Every recorded event must carry a fresh monotonic stamp (the
        // whole run takes well under 10^9 us), never the poisoned one.
        let events = sink.lock().take();
        assert!(!events.is_empty());
        const FRESH_BOUND_US: u64 = 1_000_000_000;
        for (at, node, event) in &events {
            assert!(*at < FRESH_BOUND_US, "stale stamp {at} on {event:?} from node {node:?}");
        }
    }

    #[test]
    fn backoff_policy_is_capped_and_jittered() {
        let policy = BackoffPolicy { base_ms: 10, cap_ms: 100, jitter_ms: 0 };
        let mut rng = XorShift::new(1);
        assert_eq!(policy.delay_ms(1, &mut rng), 10);
        assert_eq!(policy.delay_ms(2, &mut rng), 20);
        assert_eq!(policy.delay_ms(5, &mut rng), 100, "capped");
        assert_eq!(policy.delay_ms(60, &mut rng), 100, "shift saturates");
    }
}
