//! Length-prefixed, versioned, checksummed framing.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       2     magic     0xAB84 ("Asynchronous Byzantine, 1984")
//! 2       1     version   codec version, currently 2 (1 still decoded)
//! 3       1     kind      1=Hello 2=Challenge 3=Auth 4=Msg 5=Ack
//!                         6=Submit 7=SubmitOk 8=SubmitNack
//! 4       8     seq       per-link sequence number (0 for handshake)
//! 12      4     len       body length in bytes
//! 16      8     trace     causal-trace hint (version ≥ 2 only; 0 = untraced)
//! 24      len-8 payload   kind-specific body
//! 16+len  8     checksum  FNV-1a 64 over bytes [0, 16+len)
//! ```
//!
//! Version 2 prefixes every body with an 8-byte **trace hint** — the
//! causal trace id of the transaction the payload belongs to (see
//! `bft-obs`'s trace module), or 0 when untraced (all handshake
//! frames). The hint lets the transport attribute wire-level events to
//! a trace without decoding the payload. Version-1 frames (no hint)
//! are still decoded, with the hint reported as 0, so rolling upgrades
//! interoperate; encoding always emits version 2.
//!
//! The checksum trailer guards against accidental corruption and makes
//! stream desynchronisation fail loudly; it is *not* an authenticator
//! (see [`crate::hash`]). Decoding is strict: bad magic, unknown
//! version/kind, oversize lengths, truncation and checksum mismatches
//! are typed [`DecodeError`]s.

use crate::codec::{put_u16, put_u32, put_u64, DecodeError, Reader};
use crate::hash::Fnv64;
use std::io::{self, Read, Write};

/// Frame magic: `0xAB84`.
pub const MAGIC: u16 = 0xAB84;
/// Current codec version (body carries a trace-hint prefix).
pub const VERSION: u8 = 2;
/// The previous codec version (no trace hint), still accepted on decode.
pub const VERSION_V1: u8 = 1;
/// Size of the version-2 trace-hint body prefix in bytes.
pub const TRACE_HINT_LEN: usize = 8;
/// Hard cap on the payload length (1 MiB), excluding the trace hint.
pub const MAX_PAYLOAD: u32 = 1 << 20;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Checksum trailer size in bytes.
pub const TRAILER_LEN: usize = 8;
/// Total framing overhead added to a payload at the current version.
pub const FRAME_OVERHEAD: usize = HEADER_LEN + TRACE_HINT_LEN + TRAILER_LEN;

/// The kind of a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Handshake step 1: dialer introduces itself with a nonce.
    Hello,
    /// Handshake step 2: accepter answers with its own nonce and tag.
    Challenge,
    /// Handshake step 3: dialer proves knowledge of the preshared key.
    Auth,
    /// An authenticated protocol message.
    Msg,
    /// A cumulative receive acknowledgement, flowing receiver → sender on
    /// the same connection: `seq` is the highest contiguously processed
    /// frame, and lets the sender trim its replay log.
    Ack,
    /// Gateway: a client submits a transaction. `seq` is the client's own
    /// per-client sequence number (starting at 1); the body is the
    /// gateway submit payload (client id + transaction bytes).
    Submit,
    /// Gateway: the submitted transaction **committed** in the total
    /// order. `seq` echoes the client sequence number being acked.
    SubmitOk,
    /// Gateway: the submission was rejected (backpressure, sequence gap,
    /// oversize); the body carries a typed reason. `seq` echoes the
    /// client sequence number being nacked.
    SubmitNack,
}

impl FrameKind {
    /// The wire discriminant.
    pub const fn wire_byte(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Challenge => 2,
            FrameKind::Auth => 3,
            FrameKind::Msg => 4,
            FrameKind::Ack => 5,
            FrameKind::Submit => 6,
            FrameKind::SubmitOk => 7,
            FrameKind::SubmitNack => 8,
        }
    }

    /// Parses the wire discriminant, strictly.
    pub const fn from_wire_byte(b: u8) -> Result<Self, DecodeError> {
        match b {
            1 => Ok(FrameKind::Hello),
            2 => Ok(FrameKind::Challenge),
            3 => Ok(FrameKind::Auth),
            4 => Ok(FrameKind::Msg),
            5 => Ok(FrameKind::Ack),
            6 => Ok(FrameKind::Submit),
            7 => Ok(FrameKind::SubmitOk),
            8 => Ok(FrameKind::SubmitNack),
            other => Err(DecodeError::BadKind(other)),
        }
    }
}

/// A decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The frame kind.
    pub kind: FrameKind,
    /// Per-link sequence number (0 for handshake frames).
    pub seq: u64,
    /// Causal-trace hint (0 when untraced or decoded from a v1 frame).
    pub trace: u64,
    /// The kind-specific body (trace hint stripped).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds an untraced frame (trace hint 0).
    pub fn new(kind: FrameKind, seq: u64, payload: Vec<u8>) -> Self {
        Frame { kind, seq, trace: 0, payload }
    }

    /// Builds a frame carrying a causal-trace hint.
    pub fn traced(kind: FrameKind, seq: u64, trace: u64, payload: Vec<u8>) -> Self {
        Frame { kind, seq, trace, payload }
    }

    /// Encodes the frame, including header and checksum trailer.
    ///
    /// Fails with [`PayloadTooLarge`] when the payload exceeds
    /// [`MAX_PAYLOAD`]; such a frame would be rejected by every receiver
    /// at decode, so it must never reach the wire.
    pub fn encode(&self) -> Result<Vec<u8>, PayloadTooLarge> {
        encode_frame(self.kind, self.seq, self.trace, &self.payload)
    }

    /// Decodes a frame that must span the whole buffer.
    ///
    /// This is the strict single-buffer entry point (tests, fuzzing); the
    /// stream path is [`read_frame`].
    pub fn decode(buf: &[u8]) -> Result<Frame, DecodeError> {
        let mut r = Reader::new(buf);
        let header = parse_header(&mut r)?;
        let body = r.take(header.len as usize)?.to_vec();
        let got = r.u64()?;
        r.finish()?;
        let mut h = Fnv64::new();
        h.write(&buf[..HEADER_LEN + body.len()]);
        let expected = h.finish();
        if expected != got {
            return Err(DecodeError::Checksum { expected, got });
        }
        let (trace, payload) = split_body(header.version, body);
        Ok(Frame { kind: header.kind, seq: header.seq, trace, payload })
    }
}

/// Splits a version-2 body into its trace hint and payload; a version-1
/// body is all payload with hint 0. `parse_header` has already enforced
/// `len ≥ TRACE_HINT_LEN` for version 2.
fn split_body(version: u8, mut body: Vec<u8>) -> (u64, Vec<u8>) {
    if version == VERSION_V1 {
        return (0, body);
    }
    let mut hint = [0u8; TRACE_HINT_LEN];
    hint.copy_from_slice(&body[..TRACE_HINT_LEN]);
    body.drain(..TRACE_HINT_LEN);
    (u64::from_le_bytes(hint), body)
}

/// The typed encode-side failure: the payload exceeds [`MAX_PAYLOAD`].
///
/// Encoding enforces the same hard cap that [`parse_header`] enforces on
/// decode ([`DecodeError::Oversize`]); the limits are symmetric, so a
/// frame that encodes successfully is never rejected for size by a
/// receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PayloadTooLarge {
    /// The offending payload length in bytes.
    pub len: usize,
}

impl std::fmt::Display for PayloadTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "payload of {} bytes exceeds the frame cap of {} bytes", self.len, MAX_PAYLOAD)
    }
}

impl std::error::Error for PayloadTooLarge {}

/// Encodes a version-2 frame from a borrowed payload.
///
/// This is the hot-path entry point: broadcast bodies are `Arc`-shared
/// between per-link writers and must not be cloned per frame. Payloads
/// above [`MAX_PAYLOAD`] fail with a typed [`PayloadTooLarge`] error
/// instead of silently emitting a frame every receiver must reject.
pub fn encode_frame(
    kind: FrameKind,
    seq: u64,
    trace: u64,
    payload: &[u8],
) -> Result<Vec<u8>, PayloadTooLarge> {
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(PayloadTooLarge { len: payload.len() });
    }
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    put_u16(&mut out, MAGIC);
    out.push(VERSION);
    out.push(kind.wire_byte());
    put_u64(&mut out, seq);
    put_u32(&mut out, (TRACE_HINT_LEN + payload.len()) as u32);
    put_u64(&mut out, trace);
    out.extend_from_slice(payload);
    let mut h = Fnv64::new();
    h.write(&out);
    put_u64(&mut out, h.finish());
    Ok(out)
}

/// The parsed fixed header.
struct Header {
    version: u8,
    kind: FrameKind,
    seq: u64,
    len: u32,
}

fn parse_header(r: &mut Reader<'_>) -> Result<Header, DecodeError> {
    let magic = r.u16()?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION && version != VERSION_V1 {
        return Err(DecodeError::BadVersion(version));
    }
    let kind = FrameKind::from_wire_byte(r.u8()?)?;
    let seq = r.u64()?;
    let len = r.u32()?;
    // The cap applies to the payload proper; v2 bodies carry the hint
    // on top and must be at least hint-sized.
    let (floor, cap) = if version == VERSION_V1 {
        (0, MAX_PAYLOAD)
    } else {
        (TRACE_HINT_LEN as u32, MAX_PAYLOAD + TRACE_HINT_LEN as u32)
    };
    if len > cap || len < floor {
        return Err(DecodeError::Oversize(len));
    }
    Ok(Header { version, kind, seq, len })
}

/// A failure while reading a frame off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed (or was shut down under the reader).
    Io(io::Error),
    /// The bytes arrived but did not form a valid frame.
    Decode(DecodeError),
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Decode(e) => write!(f, "frame decode error: {e}"),
            FrameError::Closed => f.write_str("stream closed"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        FrameError::Decode(e)
    }
}

/// Fills `buf` completely. `Ok(false)` means the stream hit EOF before
/// the *first* byte (a clean close); EOF mid-buffer is an
/// `UnexpectedEof` I/O error.
fn fill(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Writes one frame to the stream.
///
/// An oversize payload surfaces as an `InvalidInput` I/O error carrying
/// [`PayloadTooLarge`]; nothing is written in that case.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let bytes = frame.encode().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    w.write_all(&bytes)
}

/// Attempts to decode one frame from the **front** of an accumulation
/// buffer, without blocking.
///
/// This is the reactor driver's entry point: nonblocking reads append
/// raw bytes to a per-connection buffer, and this peels complete frames
/// off the front.
///
/// * `Ok(Some((frame, consumed)))` — a complete frame; the caller must
///   drain `consumed` bytes from the front of the buffer.
/// * `Ok(None)` — the buffer holds only a frame prefix; read more.
/// * `Err(..)` — the stream is corrupt (bad magic/version/kind, oversize
///   length, checksum mismatch); the caller should drop the connection.
///
/// Header validation runs as soon as `HEADER_LEN` bytes are present, so
/// a corrupt or oversize header is rejected before any body buffering.
pub fn decode_prefix(buf: &[u8]) -> Result<Option<(Frame, usize)>, DecodeError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let header = {
        let mut hr = Reader::new(&buf[..HEADER_LEN]);
        parse_header(&mut hr)?
    };
    // `len` is capped at MAX_PAYLOAD + TRACE_HINT_LEN by parse_header,
    // so this sum is far from usize overflow.
    let total = HEADER_LEN + header.len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Ok(None);
    }
    let trailer_at = HEADER_LEN + header.len as usize;
    let mut trailer = [0u8; TRAILER_LEN];
    trailer.copy_from_slice(&buf[trailer_at..total]);
    let got = u64::from_le_bytes(trailer);
    let mut h = Fnv64::new();
    h.write(&buf[..trailer_at]);
    let expected = h.finish();
    if expected != got {
        return Err(DecodeError::Checksum { expected, got });
    }
    let body = buf[HEADER_LEN..trailer_at].to_vec();
    let (trace, payload) = split_body(header.version, body);
    Ok(Some((Frame { kind: header.kind, seq: header.seq, trace, payload }, total)))
}

/// Reads one frame from the stream, blocking until it is complete.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header_bytes = [0u8; HEADER_LEN];
    if !fill(r, &mut header_bytes)? {
        return Err(FrameError::Closed);
    }
    let header = {
        let mut hr = Reader::new(&header_bytes);
        parse_header(&mut hr)?
    };
    let mut rest = vec![0u8; header.len as usize + TRAILER_LEN];
    if !fill(r, &mut rest)? {
        return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into()));
    }
    let trailer_at = header.len as usize;
    let mut trailer = [0u8; TRAILER_LEN];
    trailer.copy_from_slice(&rest[trailer_at..]);
    let got = u64::from_le_bytes(trailer);
    let mut h = Fnv64::new();
    h.write(&header_bytes);
    h.write(&rest[..trailer_at]);
    let expected = h.finish();
    if expected != got {
        return Err(FrameError::Decode(DecodeError::Checksum { expected, got }));
    }
    rest.truncate(trailer_at);
    let (trace, payload) = split_body(header.version, rest);
    Ok(Frame { kind: header.kind, seq: header.seq, trace, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let f = Frame::new(FrameKind::Msg, 7, vec![1, 2, 3]);
        let bytes = f.encode().unwrap_or_default();
        assert_eq!(bytes.len(), FRAME_OVERHEAD + 3);
        assert_eq!(Frame::decode(&bytes), Ok(f.clone()));

        let mut cursor = io::Cursor::new(bytes);
        let read = read_frame(&mut cursor).map_err(|e| e.to_string());
        assert_eq!(read, Ok(f));
    }

    #[test]
    fn ack_frame_round_trips_at_fixed_size() {
        let f = Frame::new(FrameKind::Ack, 48, Vec::new());
        let bytes = f.encode().unwrap_or_default();
        // Empty payload ⇒ an ack is exactly the framing overhead, which
        // is what the writer's nonblocking drain peeks for.
        assert_eq!(bytes.len(), FRAME_OVERHEAD);
        assert_eq!(Frame::decode(&bytes), Ok(f));
    }

    #[test]
    fn trace_hint_round_trips() {
        let f = Frame::traced(FrameKind::Msg, 9, 0xDEAD_BEEF_1984_0001, vec![4, 5]);
        let bytes = f.encode().unwrap_or_default();
        assert_eq!(bytes[2], VERSION);
        assert_eq!(Frame::decode(&bytes), Ok(f.clone()));
        let mut cursor = io::Cursor::new(bytes);
        let read = read_frame(&mut cursor).map_err(|e| e.to_string());
        assert_eq!(read, Ok(f));
    }

    /// Hand-builds a version-1 frame (no trace hint) byte-by-byte.
    fn v1_frame(kind: FrameKind, seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        put_u16(&mut out, MAGIC);
        out.push(VERSION_V1);
        out.push(kind.wire_byte());
        put_u64(&mut out, seq);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(payload);
        let mut h = Fnv64::new();
        h.write(&out);
        put_u64(&mut out, h.finish());
        out
    }

    #[test]
    fn version_one_frames_still_decode_with_zero_hint() {
        let bytes = v1_frame(FrameKind::Msg, 3, &[7, 8, 9]);
        let expected = Frame::new(FrameKind::Msg, 3, vec![7, 8, 9]);
        assert_eq!(Frame::decode(&bytes), Ok(expected.clone()));
        let mut cursor = io::Cursor::new(bytes);
        let read = read_frame(&mut cursor).map_err(|e| e.to_string());
        assert_eq!(read, Ok(expected));
        // An empty v1 body is legal; an empty v2 body (no room for the
        // hint) is not.
        let empty = v1_frame(FrameKind::Hello, 0, &[]);
        assert!(Frame::decode(&empty).is_ok());
    }

    #[test]
    fn v2_body_shorter_than_the_hint_is_rejected() {
        let mut bytes = Frame::new(FrameKind::Msg, 0, Vec::new()).encode().unwrap_or_default();
        // Shrink the body length below the hint size and re-checksum.
        bytes[12..16].copy_from_slice(&4u32.to_le_bytes());
        bytes.truncate(HEADER_LEN + 4);
        let mut h = Fnv64::new();
        h.write(&bytes);
        let sum = h.finish();
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(DecodeError::Oversize(4))));
    }

    #[test]
    fn corruption_is_caught() {
        let mut bytes = Frame::new(FrameKind::Msg, 1, vec![9; 8]).encode().unwrap_or_default();
        bytes[20] ^= 0xff;
        assert!(matches!(Frame::decode(&bytes), Err(DecodeError::Checksum { .. })));
    }

    #[test]
    fn bad_magic_version_kind() {
        let good = Frame::new(FrameKind::Hello, 0, Vec::new()).encode().unwrap_or_default();
        let mut m = good.clone();
        m[0] = 0;
        assert!(matches!(Frame::decode(&m), Err(DecodeError::BadMagic(_))));
        let mut v = good.clone();
        v[2] = 9;
        assert!(matches!(Frame::decode(&v), Err(DecodeError::BadVersion(9))));
        let mut k = good;
        k[3] = 0;
        assert!(matches!(Frame::decode(&k), Err(DecodeError::BadKind(0))));
    }

    #[test]
    fn oversize_is_rejected_before_allocation() {
        let mut bytes = Frame::new(FrameKind::Msg, 0, Vec::new()).encode().unwrap_or_default();
        let over = MAX_PAYLOAD + TRACE_HINT_LEN as u32 + 1;
        bytes[12..16].copy_from_slice(&over.to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(DecodeError::Oversize(_))));
    }

    #[test]
    fn prefix_decode_peels_frames_incrementally() {
        let a = Frame::new(FrameKind::Msg, 1, vec![1, 2, 3]);
        let b = Frame::traced(FrameKind::Submit, 2, 0xAB, vec![4; 40]);
        let mut stream = a.encode().unwrap_or_default();
        stream.extend_from_slice(&b.encode().unwrap_or_default());

        // Byte-by-byte arrival: no prefix shorter than the first frame
        // decodes, and nothing errors.
        let first_len = FRAME_OVERHEAD + 3;
        for cut in 0..first_len {
            assert_eq!(decode_prefix(&stream[..cut]), Ok(None), "cut={cut}");
        }
        let (got_a, used_a) = decode_prefix(&stream[..first_len])
            .ok()
            .flatten()
            .unwrap_or_else(|| panic!("first frame must decode"));
        assert_eq!(got_a, a);
        assert_eq!(used_a, first_len);

        // The second frame decodes off the remaining buffer.
        let rest = &stream[used_a..];
        let (got_b, used_b) = decode_prefix(rest)
            .ok()
            .flatten()
            .unwrap_or_else(|| panic!("second frame must decode"));
        assert_eq!(got_b, b);
        assert_eq!(used_b, rest.len());
    }

    #[test]
    fn prefix_decode_rejects_corruption_eagerly() {
        let mut bytes = Frame::new(FrameKind::Msg, 1, vec![9; 8]).encode().unwrap_or_default();
        // A bad header fails as soon as the header is buffered, before
        // the body arrives.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = 0;
        assert!(matches!(decode_prefix(&bad_magic[..HEADER_LEN]), Err(DecodeError::BadMagic(_))));
        // A flipped body byte fails the checksum once complete.
        bytes[20] ^= 0xff;
        assert!(matches!(decode_prefix(&bytes), Err(DecodeError::Checksum { .. })));
    }

    #[test]
    fn gateway_kinds_round_trip() {
        for kind in [FrameKind::Submit, FrameKind::SubmitOk, FrameKind::SubmitNack] {
            let f = Frame::new(kind, 42, vec![1, 2]);
            let bytes = f.encode().unwrap_or_default();
            assert_eq!(Frame::decode(&bytes), Ok(f));
            assert_eq!(FrameKind::from_wire_byte(kind.wire_byte()), Ok(kind));
        }
    }

    #[test]
    fn clean_close_vs_truncation() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(FrameError::Closed)));

        let full = Frame::new(FrameKind::Msg, 3, vec![5; 10]).encode().unwrap_or_default();
        let mut cut = io::Cursor::new(full[..full.len() - 4].to_vec());
        assert!(matches!(read_frame(&mut cut), Err(FrameError::Io(_))));
    }
}
