//! Preshared-key challenge–response handshake.
//!
//! Bracha's model assumes *authenticated* point-to-point links: when `v`
//! receives a message, it knows which node sent it. In-process transports
//! get this for free (the router stamps envelopes); over TCP the peer
//! manager must establish the sender identity once per connection, after
//! which every frame on that connection is attributed to the
//! authenticated dialer.
//!
//! Three-way exchange over handshake frames (`seq = 0`, never subject to
//! the chaos layer):
//!
//! ```text
//! dialer (u)                              accepter (v)
//!   | -- Hello     { u, nonce_u } ----------> |
//!   | <- Challenge { v, nonce_v,              |
//!   |        tag_v = MAC(K, "s->c", nonce_u, v) }
//!   |  verify tag_v                           |
//!   | -- Auth { tag_u = MAC(K, "c->s", nonce_v, u) } -> |
//!   |                                verify tag_u; link is now
//!   |                                authenticated as coming from u
//! ```
//!
//! `MAC` here is keyed FNV-1a (see [`crate::hash`]) — a documented
//! placeholder for a real MAC, sufficient against misconfiguration but
//! not against a cryptographic adversary. Nonces come from a process-wide
//! counter: uniqueness (not unpredictability) is what the placeholder
//! construction consumes.

use crate::codec::{Codec, DecodeError, Reader};
use crate::frame::{read_frame, write_frame, Frame, FrameError, FrameKind};
use bft_types::NodeId;
use std::fmt;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// The cluster's preshared key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Secret(u64);

impl Secret {
    /// Derives a key from a passphrase (FNV-1a of its bytes).
    pub fn from_passphrase(phrase: &str) -> Self {
        Secret(crate::hash::fnv1a64(phrase.as_bytes()))
    }

    /// Wraps a raw 64-bit key.
    pub const fn from_raw(key: u64) -> Self {
        Secret(key)
    }
}

impl Default for Secret {
    fn default() -> Self {
        Secret::from_passphrase("bft-net default cluster key")
    }
}

/// Process-wide nonce counter; uniqueness is all the placeholder MAC
/// needs (see module docs).
static NONCE: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_nonce() -> u64 {
    // Spread the counter so consecutive nonces don't share prefixes.
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    n.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The keyed tag: FNV-1a over (direction label, key, nonce, claimed id).
fn tag(secret: Secret, direction: &'static [u8], nonce: u64, id: NodeId) -> u64 {
    let mut h = crate::hash::Fnv64::new();
    h.write(direction);
    h.write_u64(secret.0);
    h.write_u64(nonce);
    h.write(&(id.index() as u32).to_le_bytes());
    h.finish()
}

const DIR_ACCEPTER: &[u8] = b"s->c";
const DIR_DIALER: &[u8] = b"c->s";

/// A handshake failure.
#[derive(Debug)]
pub enum HandshakeError {
    /// Frame transport failed mid-handshake.
    Frame(FrameError),
    /// A handshake payload failed to decode.
    Decode(DecodeError),
    /// The peer presented a tag that does not verify under the preshared
    /// key (wrong key, wrong identity, or tampering).
    BadTag,
    /// The peer claimed an identity outside the cluster (or the dialed
    /// node answered with an unexpected id).
    BadPeer(u32),
    /// An out-of-order frame kind arrived mid-handshake.
    UnexpectedKind(FrameKind),
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::Frame(e) => write!(f, "handshake transport error: {e}"),
            HandshakeError::Decode(e) => write!(f, "handshake payload error: {e}"),
            HandshakeError::BadTag => f.write_str("handshake tag verification failed"),
            HandshakeError::BadPeer(id) => write!(f, "peer claimed invalid identity {id}"),
            HandshakeError::UnexpectedKind(k) => write!(f, "unexpected handshake frame {k:?}"),
        }
    }
}

impl std::error::Error for HandshakeError {}

impl From<FrameError> for HandshakeError {
    fn from(e: FrameError) -> Self {
        HandshakeError::Frame(e)
    }
}

impl From<DecodeError> for HandshakeError {
    fn from(e: DecodeError) -> Self {
        HandshakeError::Decode(e)
    }
}

pub(crate) fn expect_kind(frame: &Frame, kind: FrameKind) -> Result<(), HandshakeError> {
    if frame.kind != kind {
        return Err(HandshakeError::UnexpectedKind(frame.kind));
    }
    Ok(())
}

// ---- pure handshake steps -------------------------------------------------
//
// The blocking entry points below and the reactor driver's nonblocking
// handshake state machine share these payload builders/parsers, so both
// paths speak byte-identical handshakes by construction.

/// Builds the Hello body: `me ‖ nonce_me`.
pub(crate) fn hello_payload(me: NodeId, nonce_me: u64) -> Vec<u8> {
    let mut hello = Vec::new();
    me.encode(&mut hello);
    crate::codec::put_u64(&mut hello, nonce_me);
    hello
}

/// Parses a Hello body into `(peer, nonce_peer)`, enforcing cluster
/// membership for an accepter at node `me` in an `n`-node cluster.
pub(crate) fn parse_hello(
    payload: &[u8],
    me: NodeId,
    n: usize,
) -> Result<(NodeId, u64), HandshakeError> {
    let mut r = Reader::new(payload);
    let peer = NodeId::decode(&mut r)?;
    let nonce = r.u64()?;
    r.finish()?;
    if peer.index() >= n || peer == me {
        return Err(HandshakeError::BadPeer(peer.index() as u32));
    }
    Ok((peer, nonce))
}

/// Builds the Challenge body: `me ‖ nonce_me ‖ tag(K, "s->c", nonce_peer, me)`.
pub(crate) fn challenge_payload(
    secret: Secret,
    me: NodeId,
    nonce_me: u64,
    nonce_peer: u64,
) -> Vec<u8> {
    let mut challenge = Vec::new();
    me.encode(&mut challenge);
    crate::codec::put_u64(&mut challenge, nonce_me);
    crate::codec::put_u64(&mut challenge, tag(secret, DIR_ACCEPTER, nonce_peer, me));
    challenge
}

/// Parses and verifies a Challenge body for a dialer that sent
/// `nonce_me` and expects to be talking to `expect`; returns the
/// accepter's nonce.
pub(crate) fn parse_challenge(
    payload: &[u8],
    secret: Secret,
    expect: NodeId,
    nonce_me: u64,
) -> Result<u64, HandshakeError> {
    let mut r = Reader::new(payload);
    let peer = NodeId::decode(&mut r)?;
    let nonce_peer = r.u64()?;
    let tag_peer = r.u64()?;
    r.finish()?;
    if peer != expect {
        return Err(HandshakeError::BadPeer(peer.index() as u32));
    }
    if tag_peer != tag(secret, DIR_ACCEPTER, nonce_me, peer) {
        return Err(HandshakeError::BadTag);
    }
    Ok(nonce_peer)
}

/// Builds the Auth body: `tag(K, "c->s", nonce_peer, me)`.
pub(crate) fn auth_payload(secret: Secret, nonce_peer: u64, me: NodeId) -> Vec<u8> {
    let mut auth = Vec::new();
    crate::codec::put_u64(&mut auth, tag(secret, DIR_DIALER, nonce_peer, me));
    auth
}

/// Parses and verifies an Auth body for an accepter that sent `nonce_me`
/// to a dialer claiming to be `peer`.
pub(crate) fn parse_auth(
    payload: &[u8],
    secret: Secret,
    peer: NodeId,
    nonce_me: u64,
) -> Result<(), HandshakeError> {
    let mut r = Reader::new(payload);
    let tag_peer = r.u64()?;
    r.finish()?;
    if tag_peer != tag(secret, DIR_DIALER, nonce_me, peer) {
        return Err(HandshakeError::BadTag);
    }
    Ok(())
}

/// Dialer side: authenticate ourselves as `me` to the node we dialed
/// (`expect` — its identity is checked against the Challenge).
pub fn dial_handshake(
    stream: &mut (impl Read + Write),
    me: NodeId,
    expect: NodeId,
    secret: Secret,
) -> Result<(), HandshakeError> {
    let nonce_me = next_nonce();
    let hello = hello_payload(me, nonce_me);
    write_frame(stream, &Frame::new(FrameKind::Hello, 0, hello)).map_err(FrameError::Io)?;

    let challenge = read_frame(stream)?;
    expect_kind(&challenge, FrameKind::Challenge)?;
    let nonce_peer = parse_challenge(&challenge.payload, secret, expect, nonce_me)?;

    let auth = auth_payload(secret, nonce_peer, me);
    write_frame(stream, &Frame::new(FrameKind::Auth, 0, auth)).map_err(FrameError::Io)?;
    Ok(())
}

/// Accepter side: run the handshake as node `me` in an `n`-node cluster
/// and return the authenticated dialer identity.
pub fn accept_handshake(
    stream: &mut (impl Read + Write),
    me: NodeId,
    n: usize,
    secret: Secret,
) -> Result<NodeId, HandshakeError> {
    let hello = read_frame(stream)?;
    expect_kind(&hello, FrameKind::Hello)?;
    let (peer, nonce_peer) = parse_hello(&hello.payload, me, n)?;

    let nonce_me = next_nonce();
    let challenge = challenge_payload(secret, me, nonce_me, nonce_peer);
    write_frame(stream, &Frame::new(FrameKind::Challenge, 0, challenge)).map_err(FrameError::Io)?;

    let auth = read_frame(stream)?;
    expect_kind(&auth, FrameKind::Auth)?;
    parse_auth(&auth.payload, secret, peer, nonce_me)?;
    Ok(peer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let dial = TcpStream::connect(addr).expect("connect");
        let (accept, _) = listener.accept().expect("accept");
        (dial, accept)
    }

    #[test]
    fn matching_keys_authenticate() {
        let (mut dial, mut accept) = loopback_pair();
        let secret = Secret::from_passphrase("test cluster");
        let server = std::thread::spawn(move || {
            accept_handshake(&mut accept, NodeId::new(1), 4, secret).map_err(|e| e.to_string())
        });
        dial_handshake(&mut dial, NodeId::new(2), NodeId::new(1), secret).expect("dial side");
        assert_eq!(server.join().expect("join"), Ok(NodeId::new(2)));
    }

    #[test]
    fn wrong_key_is_rejected_by_dialer() {
        let (mut dial, mut accept) = loopback_pair();
        let server = std::thread::spawn(move || {
            let _ = accept_handshake(&mut accept, NodeId::new(0), 4, Secret::from_raw(1));
        });
        let got = dial_handshake(&mut dial, NodeId::new(1), NodeId::new(0), Secret::from_raw(2));
        assert!(matches!(got, Err(HandshakeError::BadTag)));
        // The accepter is still blocked on the Auth frame; closing the
        // dialer's socket unblocks it with a clean EOF.
        drop(dial);
        server.join().expect("join");
    }

    #[test]
    fn out_of_cluster_identity_is_rejected() {
        let (mut dial, mut accept) = loopback_pair();
        let secret = Secret::default();
        let server =
            std::thread::spawn(move || accept_handshake(&mut accept, NodeId::new(0), 4, secret));
        // Claim node id 9 in a 4-node cluster.
        let _ = dial_handshake(&mut dial, NodeId::new(9), NodeId::new(0), secret);
        assert!(matches!(server.join().expect("join"), Err(HandshakeError::BadPeer(9))));
    }

    #[test]
    fn nonces_are_unique() {
        let a = next_nonce();
        let b = next_nonce();
        assert_ne!(a, b);
    }
}
