//! The client gateway: external submit/ack traffic in front of the
//! ordering engine.
//!
//! The peer mesh ([`crate::runtime`], [`crate::reactor`]) carries
//! *protocol* traffic between cluster nodes. Real deployments also face
//! **clients**: processes outside the cluster that submit payloads and
//! want an acknowledgement once their payload is committed to the
//! replicated log. This module is that front door, in three parts:
//!
//! * **Wire messages** — `Submit` / `SubmitOk` / `SubmitNack` frames
//!   (see [`crate::frame::FrameKind`]) reusing the peer framing layer:
//!   same magic, same checksum trailer, same strict decoding. A client
//!   connection performs no handshake — the gateway trusts transport
//!   integrity but nothing else, so every byte is parsed defensively
//!   and per-client sequencing is enforced server-side.
//! * **[`GatewayPipe`]** — the lock-bounded rendezvous between a node's
//!   reactor thread (which owns the client sockets) and its actor
//!   thread (which owns the `Process`). The reactor pushes decoded
//!   submissions into the intake queue and drains completion notices
//!   out; the process side does the reverse.
//! * **[`run_load`]** — an open-loop load generator: thousands of
//!   simulated clients submitting at a fixed aggregate rate from a
//!   single thread, with per-(client, seq) latency stamps measured from
//!   first submission to commit acknowledgement.
//!
//! # Per-client sequencing
//!
//! Every client numbers its submissions contiguously from 1 and the
//! gateway accepts seq `k + 1` only after `1..=k` (acceptance, not
//! commit, orders the window — a client may pipeline). Backpressure
//! from the ordering engine is surfaced as a typed NACK carrying the
//! mempool occupancy, and **does not advance** the expected sequence:
//! the client retries the same seq later. See `bft_order::gateway` for
//! the process-side state machine.

use crate::clock::Clock;
use crate::codec::{put_u64, DecodeError, Reader};
use crate::frame::{decode_prefix, encode_frame, FrameKind};
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NackReason {
    /// The ordering engine's mempool covers every pipeline slot; retry
    /// the same sequence number after a commit drains it.
    Backpressure {
        /// Payloads queued at refusal time.
        pending: u64,
        /// The mempool bound that was hit.
        capacity: u64,
    },
    /// The submission skipped ahead of the per-client contiguous
    /// sequence; resubmit from `expected`.
    SequenceGap {
        /// The sequence number the gateway expects next.
        expected: u64,
    },
    /// The payload exceeds the frame layer's hard cap.
    Oversize {
        /// The offending payload length.
        len: u64,
    },
}

impl NackReason {
    /// Stable snake_case label (observability events, logs).
    pub const fn label(&self) -> &'static str {
        match self {
            NackReason::Backpressure { .. } => "backpressure",
            NackReason::SequenceGap { .. } => "sequence_gap",
            NackReason::Oversize { .. } => "oversize",
        }
    }

    const fn code(&self) -> u8 {
        match self {
            NackReason::Backpressure { .. } => 1,
            NackReason::SequenceGap { .. } => 2,
            NackReason::Oversize { .. } => 3,
        }
    }
}

/// One decoded client submission, as handed to the process side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientSubmit {
    /// The submitting client's id (client-chosen, connection-scoped).
    pub client: u64,
    /// The client's contiguous submission number (1-based).
    pub seq: u64,
    /// The application payload.
    pub tx: Vec<u8>,
}

/// A completion notice flowing from the process side back to the
/// reactor, which forwards it to the submitting client's connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GatewayNotice {
    /// The submission reached the replicated log; answered as
    /// [`FrameKind::SubmitOk`].
    Committed {
        /// The submitting client.
        client: u64,
        /// The committed submission number.
        seq: u64,
    },
    /// The submission was refused; answered as
    /// [`FrameKind::SubmitNack`].
    Rejected {
        /// The submitting client.
        client: u64,
        /// The refused submission number.
        seq: u64,
        /// Why it was refused.
        reason: NackReason,
    },
}

// ---- wire payloads --------------------------------------------------------
//
// The frame header already carries the sequence number; gateway payloads
// add the client id (and, for NACKs, the typed reason). All integers are
// little-endian, mirroring `crate::codec`.

/// Builds a `Submit` payload: `client ‖ tx`.
pub fn submit_payload(client: u64, tx: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + tx.len());
    put_u64(&mut out, client);
    out.extend_from_slice(tx);
    out
}

/// Parses a `Submit` payload into `(client, tx)`.
pub fn parse_submit(payload: &[u8]) -> Result<(u64, Vec<u8>), DecodeError> {
    let mut r = Reader::new(payload);
    let client = r.u64()?;
    let rest = r.remaining();
    if rest > crate::frame::MAX_PAYLOAD as usize {
        return Err(DecodeError::Oversize(rest as u32));
    }
    let tx = r.take(rest)?.to_vec();
    Ok((client, tx))
}

/// Builds a `SubmitOk` payload: `client`.
pub fn submit_ok_payload(client: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    put_u64(&mut out, client);
    out
}

/// Parses a `SubmitOk` payload into the client id.
pub fn parse_submit_ok(payload: &[u8]) -> Result<u64, DecodeError> {
    let mut r = Reader::new(payload);
    let client = r.u64()?;
    r.finish()?;
    Ok(client)
}

/// Builds a `SubmitNack` payload: `client ‖ code ‖ a ‖ b` where the two
/// trailing words carry the reason's parameters (zero when unused).
pub fn submit_nack_payload(client: u64, reason: &NackReason) -> Vec<u8> {
    let (a, b) = match *reason {
        NackReason::Backpressure { pending, capacity } => (pending, capacity),
        NackReason::SequenceGap { expected } => (expected, 0),
        NackReason::Oversize { len } => (len, 0),
    };
    let mut out = Vec::with_capacity(25);
    put_u64(&mut out, client);
    out.push(reason.code());
    put_u64(&mut out, a);
    put_u64(&mut out, b);
    out
}

/// Parses a `SubmitNack` payload into `(client, reason)`.
pub fn parse_submit_nack(payload: &[u8]) -> Result<(u64, NackReason), DecodeError> {
    let mut r = Reader::new(payload);
    let client = r.u64()?;
    let code = r.u8()?;
    let a = r.u64()?;
    let b = r.u64()?;
    r.finish()?;
    let reason = match code {
        1 => NackReason::Backpressure { pending: a, capacity: b },
        2 => NackReason::SequenceGap { expected: a },
        3 => NackReason::Oversize { len: a },
        got => return Err(DecodeError::Invalid { what: "nack code", got: got as u64 }),
    };
    Ok((client, reason))
}

// ---- the reactor ↔ process pipe -------------------------------------------

/// Bound on queued-but-undrained client submissions per node. Past it
/// the reactor answers `Backpressure` directly instead of buffering —
/// external load must never grow node memory without bound.
pub(crate) const INTAKE_CAP: usize = 65_536;

struct PipeInner {
    intake: Mutex<VecDeque<ClientSubmit>>,
    notices: Mutex<VecDeque<GatewayNotice>>,
    addr: Mutex<Option<SocketAddr>>,
    waker: Mutex<Option<crate::reactor::ReactorWaker>>,
}

/// The rendezvous between one node's reactor thread and its actor
/// thread (cheaply cloneable; all clones share state).
///
/// Built by the harness, handed to [`crate::NetRuntime::gateway`] *and*
/// kept by the caller: after the runtime starts, [`GatewayPipe::addr`]
/// is the socket address clients connect to. Gateways are a reactor
/// feature — the thread driver ignores them.
#[derive(Clone)]
pub struct GatewayPipe {
    inner: Arc<PipeInner>,
}

impl Default for GatewayPipe {
    fn default() -> Self {
        GatewayPipe::new()
    }
}

impl GatewayPipe {
    /// Creates an unconnected pipe.
    pub fn new() -> Self {
        GatewayPipe {
            inner: Arc::new(PipeInner {
                intake: Mutex::new(VecDeque::new()),
                notices: Mutex::new(VecDeque::new()),
                addr: Mutex::new(None),
                waker: Mutex::new(None),
            }),
        }
    }

    /// Where clients connect; `None` until the runtime has bound the
    /// gateway listener.
    pub fn addr(&self) -> Option<SocketAddr> {
        *crate::runtime::locked(&self.inner.addr)
    }

    pub(crate) fn set_addr(&self, addr: SocketAddr) {
        *crate::runtime::locked(&self.inner.addr) = Some(addr);
    }

    pub(crate) fn set_waker(&self, waker: crate::reactor::ReactorWaker) {
        *crate::runtime::locked(&self.inner.waker) = Some(waker);
    }

    /// Queues a decoded submission for the process side; `false` means
    /// the intake is full and the caller must refuse the submission.
    /// Called by the reactor (and by process-side tests injecting
    /// submissions without sockets).
    pub fn push_intake(&self, submit: ClientSubmit) -> bool {
        let mut q = crate::runtime::locked(&self.inner.intake);
        if q.len() >= INTAKE_CAP {
            return false;
        }
        q.push_back(submit);
        true
    }

    /// Current intake occupancy (for the reactor's refusal NACK).
    pub(crate) fn intake_len(&self) -> usize {
        crate::runtime::locked(&self.inner.intake).len()
    }

    /// Drains up to `max` queued submissions, FIFO. Called by the
    /// process side (e.g. `bft_order::gateway::GatewayProcess`) from its
    /// tick/message hooks.
    pub fn drain_intake(&self, max: usize) -> Vec<ClientSubmit> {
        let mut q = crate::runtime::locked(&self.inner.intake);
        let take = q.len().min(max);
        q.drain(..take).collect()
    }

    /// Queues a completion notice for the reactor and wakes its poll
    /// loop. Called by the process side.
    pub fn push_notice(&self, notice: GatewayNotice) {
        {
            let mut q = crate::runtime::locked(&self.inner.notices);
            q.push_back(notice);
        }
        let waker = crate::runtime::locked(&self.inner.waker).clone();
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Drains every queued notice, FIFO. Called by the reactor (and by
    /// process-side tests asserting on the notice stream).
    pub fn drain_notices(&self) -> Vec<GatewayNotice> {
        let mut q = crate::runtime::locked(&self.inner.notices);
        q.drain(..).collect()
    }
}

impl std::fmt::Debug for GatewayPipe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GatewayPipe(addr={:?})", self.addr())
    }
}

// ---- the open-loop load generator -----------------------------------------

/// Knobs for [`run_load`].
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Simulated clients (round-robin across gateway addresses).
    pub clients: u64,
    /// Aggregate submission rate across all clients, per second. Open
    /// loop: the schedule does not slow down when the cluster does.
    pub rate_tx_per_s: u64,
    /// Application payload bytes per submission (floor; the generator
    /// stamps client and seq into the first 16 bytes).
    pub tx_bytes: usize,
    /// How long to keep submitting, in milliseconds.
    pub duration_ms: u64,
    /// After the cluster run ends (the harness flips `stop`), how long
    /// to keep reading in-flight commit acks before giving up, in
    /// milliseconds. While `stop` stays clear the generator drains
    /// indefinitely — a slow cluster's acks arrive long after the
    /// submit window, and the harness bounds the wait with its own
    /// cluster timeout.
    pub drain_ms: u64,
    /// Per-client pipelining bound: a client with this many
    /// unacknowledged submissions defers its slot (counted as
    /// `throttled`) instead of widening the gap window.
    pub window: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 1000,
            rate_tx_per_s: 5000,
            tx_bytes: 32,
            duration_ms: 2000,
            drain_ms: 3000,
            window: 64,
        }
    }
}

/// What [`run_load`] observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadGenReport {
    /// Distinct submissions sent at least once.
    pub submitted: u64,
    /// Submissions acknowledged as committed.
    pub committed: u64,
    /// Backpressure NACKs received (each retried).
    pub nacked: u64,
    /// Non-retryable rejections (oversize — should stay zero).
    pub rejected: u64,
    /// Schedule slots deferred by the per-client window bound.
    pub throttled: u64,
    /// Median submit→commit latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile submit→commit latency, microseconds.
    pub p99_us: u64,
    /// Wall-clock time of the whole generator run, milliseconds.
    pub elapsed_ms: u64,
}

/// Per-simulated-client cursor state.
struct ClientState {
    /// Next seq to submit (1-based). Pulled *back* by NACKs.
    next: u64,
    /// Highest seq acknowledged as committed.
    acked: u64,
    /// Earliest time this client's slot may fire again (backoff after a
    /// backpressure NACK), ms on the generator clock.
    retry_at_ms: u64,
}

/// One gateway connection owned by the generator.
struct GenConn {
    stream: Option<TcpStream>,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    out_pos: usize,
    next_dial_at_ms: u64,
}

/// Soft bound on a generator connection's pending output; schedule slots
/// land in `throttled` instead of growing the buffer past it.
const GEN_OUTBUF_SOFT_CAP: usize = 1 << 20;

impl GenConn {
    fn dial(addr: SocketAddr) -> Option<TcpStream> {
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nonblocking(true).ok()?;
        let _ = stream.set_nodelay(true);
        Some(stream)
    }

    /// Nonblocking flush; drops the stream on a hard write error.
    fn flush(&mut self) {
        use std::io::Write;
        let Some(stream) = self.stream.as_mut() else { return };
        while self.out_pos < self.outbuf.len() {
            match stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    self.stream = None;
                    break;
                }
                Ok(k) => self.out_pos += k,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.stream = None;
                    break;
                }
            }
        }
        if self.out_pos >= self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        } else if self.out_pos > (64 << 10) {
            self.outbuf.drain(..self.out_pos);
            self.out_pos = 0;
        }
    }

    /// Nonblocking read into `inbuf`; drops the stream on EOF/error.
    fn fill(&mut self) {
        use std::io::Read;
        let Some(stream) = self.stream.as_mut() else { return };
        let mut chunk = [0u8; 16 << 10];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    self.stream = None;
                    break;
                }
                Ok(k) => self.inbuf.extend_from_slice(chunk.get(..k).unwrap_or_default()),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.stream = None;
                    break;
                }
            }
        }
    }
}

/// The deterministic payload of submission `(client, seq)`: both ids in
/// the first 16 bytes, zero-padded to `tx_bytes`.
fn gen_tx(client: u64, seq: u64, tx_bytes: usize) -> Vec<u8> {
    let mut tx = vec![0u8; tx_bytes.max(16)];
    if let Some(head) = tx.get_mut(..8) {
        head.copy_from_slice(&client.to_le_bytes());
    }
    if let Some(mid) = tx.get_mut(8..16) {
        mid.copy_from_slice(&seq.to_le_bytes());
    }
    tx
}

/// Runs the open-loop load generator against a set of gateway
/// addresses, single-threaded over nonblocking sockets.
///
/// Clients are partitioned round-robin across `addrs` (client `c`
/// submits to `addrs[c % addrs.len()]`). The submit schedule is open
/// loop at `rate_tx_per_s`; a slot whose client is window-bound or
/// backing off is counted in [`LoadGenReport::throttled`] rather than
/// rescheduled. After the submit window the generator keeps draining
/// commit acks until `stop` is set (the harness flips it when the
/// cluster run ends — that bounds the wait) plus a `drain_ms` grace for
/// in-flight frames, or until nothing is outstanding.
pub fn run_load(addrs: &[SocketAddr], cfg: &LoadGenConfig, stop: &AtomicBool) -> LoadGenReport {
    let mut report = LoadGenReport::default();
    if addrs.is_empty() || cfg.clients == 0 {
        return report;
    }
    let clock = Clock::new();
    let interval_us = 1_000_000 / cfg.rate_tx_per_s.max(1);

    let mut conns: Vec<GenConn> = addrs
        .iter()
        .map(|&addr| GenConn {
            stream: GenConn::dial(addr),
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            next_dial_at_ms: 0,
        })
        .collect();
    let mut clients: Vec<ClientState> =
        (0..cfg.clients).map(|_| ClientState { next: 1, acked: 0, retry_at_ms: 0 }).collect();
    // First-submission stamps, removed on commit ack; resends keep the
    // original stamp so latency covers the full retry story.
    let mut stamps: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut tick: u64 = 0;
    let mut next_tick_us: u64 = 0;
    // When `stop` was first observed set — starts the drain grace clock.
    let mut stopped_at_ms: Option<u64> = None;

    loop {
        let now_ms = clock.now_ms();
        let now_us = clock.now_us();
        if stopped_at_ms.is_none() && stop.load(Ordering::Relaxed) {
            stopped_at_ms = Some(now_ms);
        }
        let submitting = now_ms < cfg.duration_ms && stopped_at_ms.is_none();
        if !submitting {
            // Drain phase: wait for outstanding acks for as long as the
            // cluster is still running; once the harness flips `stop`
            // (the run ended), linger `drain_ms` for in-flight frames.
            let grace_over =
                stopped_at_ms.is_some_and(|t| now_ms >= t.saturating_add(cfg.drain_ms));
            if stamps.is_empty() || grace_over {
                break;
            }
        }

        // Redial dead connections, rate-limited.
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.stream.is_none() && now_ms >= conn.next_dial_at_ms {
                conn.stream = addrs.get(i).copied().and_then(GenConn::dial);
                conn.next_dial_at_ms = now_ms + 50;
                if conn.stream.is_some() {
                    conn.inbuf.clear();
                    conn.outbuf.clear();
                    conn.out_pos = 0;
                }
            }
        }

        // Fire every due schedule slot (bounded per pass: an open loop
        // catches up after a stall, but not all at once).
        let mut burst = 0u32;
        while submitting && now_us >= next_tick_us && burst < 4096 {
            next_tick_us = next_tick_us.saturating_add(interval_us);
            burst += 1;
            let c = tick % cfg.clients;
            tick += 1;
            let Some(client) = clients.get_mut(c as usize) else { continue };
            let conn_idx = (c as usize) % conns.len();
            let Some(conn) = conns.get_mut(conn_idx) else { continue };
            let window_full = client.next > client.acked + cfg.window;
            let backing_off = now_ms < client.retry_at_ms;
            let conn_down = conn.stream.is_none();
            let out_full = conn.outbuf.len() >= GEN_OUTBUF_SOFT_CAP;
            if window_full || backing_off || conn_down || out_full {
                report.throttled += 1;
                continue;
            }
            let seq = client.next;
            client.next += 1;
            let tx = gen_tx(c, seq, cfg.tx_bytes);
            let payload = submit_payload(c, &tx);
            if let Ok(bytes) = encode_frame(FrameKind::Submit, seq, 0, &payload) {
                conn.outbuf.extend_from_slice(&bytes);
                if let std::collections::btree_map::Entry::Vacant(e) = stamps.entry((c, seq)) {
                    e.insert(now_us);
                    report.submitted += 1;
                }
            }
        }

        // Pump every connection.
        for conn in conns.iter_mut() {
            conn.flush();
            conn.fill();
            let mut consumed = 0usize;
            loop {
                let rest = conn.inbuf.get(consumed..).unwrap_or_default();
                match decode_prefix(rest) {
                    Ok(Some((frame, used))) => {
                        // `used` is bounded by the bytes actually
                        // buffered, but keep the cursor arithmetic
                        // non-wrapping regardless.
                        consumed = consumed.saturating_add(used);
                        match frame.kind {
                            FrameKind::SubmitOk => {
                                if let Ok(client_id) = parse_submit_ok(&frame.payload) {
                                    if let Some(at) = stamps.remove(&(client_id, frame.seq)) {
                                        latencies.push(now_us.saturating_sub(at));
                                        report.committed += 1;
                                    }
                                    if let Some(cs) = clients.get_mut(client_id as usize) {
                                        cs.acked = cs.acked.max(frame.seq);
                                    }
                                }
                            }
                            FrameKind::SubmitNack => {
                                if let Ok((client_id, reason)) = parse_submit_nack(&frame.payload) {
                                    let Some(cs) = clients.get_mut(client_id as usize) else {
                                        continue;
                                    };
                                    match reason {
                                        NackReason::Backpressure { .. } => {
                                            report.nacked += 1;
                                            cs.next = cs.next.min(frame.seq);
                                            cs.retry_at_ms = now_ms + 5;
                                        }
                                        NackReason::SequenceGap { expected } => {
                                            cs.next = cs.next.min(expected);
                                        }
                                        NackReason::Oversize { .. } => report.rejected += 1,
                                    }
                                }
                            }
                            _ => {
                                // A gateway speaks only Ok/Nack; anything
                                // else means a confused peer — drop it.
                                conn.stream = None;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        conn.stream = None;
                        conn.inbuf.clear();
                        consumed = 0;
                        break;
                    }
                }
            }
            if consumed > 0 {
                conn.inbuf.drain(..consumed);
            }
        }

        // Sleep until the next schedule slot (or a readable ack) via
        // poll(2); the generator never busy-spins.
        let mut fds: Vec<poll::PollFd> = Vec::with_capacity(conns.len());
        for conn in &conns {
            if let Some(stream) = &conn.stream {
                use std::os::fd::AsRawFd;
                let mut events = poll::POLLIN;
                if conn.out_pos < conn.outbuf.len() {
                    events |= poll::POLLOUT;
                }
                fds.push(poll::PollFd::new(stream.as_raw_fd(), events));
            }
        }
        let wait_ms = if submitting && now_us >= next_tick_us {
            0
        } else if submitting {
            (next_tick_us.saturating_sub(now_us) / 1000).clamp(0, 10) as i32
        } else {
            5
        };
        let _ = poll::poll(&mut fds, wait_ms.max(0));
    }

    latencies.sort_unstable();
    let pick = |q_num: usize, q_den: usize| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = (latencies.len() - 1) * q_num / q_den;
        latencies.get(idx).copied().unwrap_or(0)
    };
    report.p50_us = pick(1, 2);
    report.p99_us = pick(99, 100);
    report.elapsed_ms = clock.now_ms();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_payloads_round_trip() {
        let p = submit_payload(7, b"hello");
        assert_eq!(parse_submit(&p), Ok((7, b"hello".to_vec())));

        let ok = submit_ok_payload(99);
        assert_eq!(parse_submit_ok(&ok), Ok(99));

        for reason in [
            NackReason::Backpressure { pending: 12, capacity: 16 },
            NackReason::SequenceGap { expected: 4 },
            NackReason::Oversize { len: 1 << 21 },
        ] {
            let n = submit_nack_payload(3, &reason);
            assert_eq!(parse_submit_nack(&n), Ok((3, reason)));
        }
    }

    #[test]
    fn malformed_gateway_payloads_are_typed_errors() {
        assert!(parse_submit(&[1, 2]).is_err());
        assert!(parse_submit_ok(&[0; 9]).is_err(), "trailing byte");
        let mut bad = submit_nack_payload(1, &NackReason::SequenceGap { expected: 2 });
        if let Some(code) = bad.get_mut(8) {
            *code = 9;
        }
        assert!(matches!(
            parse_submit_nack(&bad),
            Err(DecodeError::Invalid { what: "nack code", .. })
        ));
    }

    #[test]
    fn pipe_is_fifo_and_intake_is_bounded() {
        let pipe = GatewayPipe::new();
        assert!(pipe.push_intake(ClientSubmit { client: 1, seq: 1, tx: vec![1] }));
        assert!(pipe.push_intake(ClientSubmit { client: 1, seq: 2, tx: vec![2] }));
        let drained = pipe.drain_intake(1);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained.first().map(|s| s.seq), Some(1));
        assert_eq!(pipe.drain_intake(10).first().map(|s| s.seq), Some(2));

        for i in 0..super::INTAKE_CAP {
            assert!(pipe.push_intake(ClientSubmit { client: 0, seq: i as u64, tx: Vec::new() }));
        }
        assert!(
            !pipe.push_intake(ClientSubmit { client: 0, seq: 0, tx: Vec::new() }),
            "intake past the cap must refuse"
        );

        pipe.push_notice(GatewayNotice::Committed { client: 1, seq: 1 });
        pipe.push_notice(GatewayNotice::Rejected {
            client: 1,
            seq: 2,
            reason: NackReason::SequenceGap { expected: 2 },
        });
        let notices = pipe.drain_notices();
        assert_eq!(notices.len(), 2);
        assert!(matches!(notices.first(), Some(GatewayNotice::Committed { seq: 1, .. })));
    }

    #[test]
    fn generated_txs_carry_client_and_seq() {
        let tx = gen_tx(5, 9, 32);
        assert_eq!(tx.len(), 32);
        assert_eq!(tx.get(..8), Some(&5u64.to_le_bytes()[..]));
        assert_eq!(tx.get(8..16), Some(&9u64.to_le_bytes()[..]));
        assert_eq!(gen_tx(1, 1, 4).len(), 16, "floor at the stamp size");
    }
}
