//! Deterministic link-level chaos injection.
//!
//! The chaos layer models an unreliable *network under* the reliable
//! link abstraction, the way packet loss sits under TCP. Bracha's
//! asynchronous model requires eventual delivery on correct links, so a
//! "dropped" frame is not silently forgotten: the writer re-transmits
//! the same frame after a short retransmission timeout, preserving
//! per-link FIFO order and sequence contiguity. What chaos *does* create
//! is real delay, duplication (receivers must dedup by sequence number)
//! and outage windows (partitions) — the failure modes the reconnect and
//! dedup machinery exists to absorb.
//!
//! All randomness is a per-link xorshift generator seeded from the
//! configured seed and the link endpoints, so a given configuration
//! produces the same drop/duplicate/delay pattern per link on every run,
//! independent of thread scheduling.

use bft_types::NodeId;

/// A scheduled one-way link outage (partition window), in milliseconds
//  since run start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkOutage {
    /// Sending side of the affected link.
    pub from: NodeId,
    /// Receiving side of the affected link.
    pub to: NodeId,
    /// Window start, ms since run start.
    pub start_ms: u64,
    /// Window end (exclusive), ms since run start.
    pub end_ms: u64,
}

/// Chaos configuration for a run. `Default` is a fully quiet network.
#[derive(Clone, Debug, Default)]
pub struct ChaosConfig {
    /// Seed for the per-link generators.
    pub seed: u64,
    /// Probability (per mille) that a frame transmission attempt is
    /// dropped on the wire and must be re-transmitted.
    pub drop_per_mille: u16,
    /// Probability (per mille) that a frame is sent twice.
    pub dup_per_mille: u16,
    /// Probability (per mille) that a frame is delayed before sending.
    pub delay_per_mille: u16,
    /// Upper bound on an injected delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Scheduled one-way outage windows.
    pub outages: Vec<LinkOutage>,
    /// On each link's *first* reconnect, the writer pretends it lost its
    /// replay log and resumes from its send counter instead of replaying
    /// from sequence 1. Models a peer whose retransmit state did not
    /// survive the disconnect; the receiver must detect the resulting
    /// sequence gap and drop the connection.
    pub skip_first_replay: bool,
}

impl ChaosConfig {
    /// Whether any fault injection is configured.
    pub fn enabled(&self) -> bool {
        self.drop_per_mille > 0
            || self.dup_per_mille > 0
            || (self.delay_per_mille > 0 && self.max_delay_ms > 0)
            || !self.outages.is_empty()
            || self.skip_first_replay
    }

    /// The chaos state for one directed link.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkChaos {
        let mut h = crate::hash::Fnv64::new();
        h.write_u64(self.seed);
        h.write(&(from.index() as u32).to_le_bytes());
        h.write(&(to.index() as u32).to_le_bytes());
        LinkChaos {
            rng: XorShift::new(h.finish()),
            drop_per_mille: self.drop_per_mille,
            dup_per_mille: self.dup_per_mille,
            delay_per_mille: self.delay_per_mille,
            max_delay_ms: self.max_delay_ms,
            outages: self
                .outages
                .iter()
                .copied()
                .filter(|o| o.from == from && o.to == to)
                .collect(),
            skip_replay: self.skip_first_replay,
        }
    }
}

/// Per-link chaos state, owned by that link's writer thread.
#[derive(Clone, Debug)]
pub struct LinkChaos {
    rng: XorShift,
    drop_per_mille: u16,
    dup_per_mille: u16,
    delay_per_mille: u16,
    max_delay_ms: u64,
    outages: Vec<LinkOutage>,
    skip_replay: bool,
}

impl LinkChaos {
    /// One-shot: whether this reconnect should resume from the send
    /// counter instead of replaying the log. Arms at most once per link
    /// so the *second* reconnect recovers via a full replay.
    pub fn skip_replay_once(&mut self) -> bool {
        let skip = self.skip_replay;
        self.skip_replay = false;
        skip
    }

    /// Whether the current transmission attempt is lost on the wire.
    pub fn attempt_dropped(&mut self) -> bool {
        self.rng.chance_per_mille(self.drop_per_mille)
    }

    /// Whether the frame should be transmitted twice.
    pub fn duplicate(&mut self) -> bool {
        self.rng.chance_per_mille(self.dup_per_mille)
    }

    /// Injected delay before this frame, in milliseconds (0 = none).
    pub fn delay_ms(&mut self) -> u64 {
        if self.max_delay_ms > 0 && self.rng.chance_per_mille(self.delay_per_mille) {
            1 + self.rng.below(self.max_delay_ms)
        } else {
            0
        }
    }

    /// If the link is inside an outage window at `now_ms`, the window's
    /// end; otherwise `None`.
    pub fn outage_until(&self, now_ms: u64) -> Option<u64> {
        self.outages.iter().find(|o| o.start_ms <= now_ms && now_ms < o.end_ms).map(|o| o.end_ms)
    }
}

/// A tiny xorshift64* generator: deterministic, dependency-free, good
/// enough for fault injection (not for protocol randomness, which goes
/// through `bft-coin`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct XorShift {
    state: u64,
}

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        XorShift { state: seed | 1 }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish draw in `[0, bound)`; `bound` must be nonzero.
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    pub(crate) fn chance_per_mille(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.below(1000) < per_mille as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet() {
        let cfg = ChaosConfig::default();
        assert!(!cfg.enabled());
        let mut link = cfg.link(NodeId::new(0), NodeId::new(1));
        for _ in 0..100 {
            assert!(!link.attempt_dropped());
            assert!(!link.duplicate());
            assert_eq!(link.delay_ms(), 0);
        }
    }

    #[test]
    fn per_link_streams_are_deterministic_and_distinct() {
        let cfg = ChaosConfig { seed: 7, drop_per_mille: 500, ..ChaosConfig::default() };
        let drops = |from: usize, to: usize| -> Vec<bool> {
            let mut link = cfg.link(NodeId::new(from), NodeId::new(to));
            (0..64).map(|_| link.attempt_dropped()).collect()
        };
        assert_eq!(drops(0, 1), drops(0, 1), "same link, same stream");
        assert_ne!(drops(0, 1), drops(1, 0), "direction changes the stream");
    }

    #[test]
    fn drop_rate_is_plausible() {
        let cfg = ChaosConfig { seed: 42, drop_per_mille: 100, ..ChaosConfig::default() };
        let mut link = cfg.link(NodeId::new(2), NodeId::new(3));
        let dropped = (0..10_000).filter(|_| link.attempt_dropped()).count();
        assert!((500..1500).contains(&dropped), "10% ±5% of 10k, got {dropped}");
    }

    #[test]
    fn outage_windows() {
        let cfg = ChaosConfig {
            outages: vec![LinkOutage {
                from: NodeId::new(0),
                to: NodeId::new(1),
                start_ms: 10,
                end_ms: 20,
            }],
            ..ChaosConfig::default()
        };
        let link = cfg.link(NodeId::new(0), NodeId::new(1));
        assert_eq!(link.outage_until(9), None);
        assert_eq!(link.outage_until(10), Some(20));
        assert_eq!(link.outage_until(19), Some(20));
        assert_eq!(link.outage_until(20), None);
        let other = cfg.link(NodeId::new(1), NodeId::new(0));
        assert_eq!(other.outage_until(15), None, "outages are one-way");
    }
}
