//! The hand-rolled binary wire codec.
//!
//! No serde: every wire type implements [`Codec`] by hand, mirroring the
//! shim-crate philosophy of the workspace (the build is offline, and the
//! encodings are small enough that explicitness beats a derive). All
//! integers are little-endian. Decoding is *strict*: unknown
//! discriminants, out-of-range values, truncated input and trailing bytes
//! are all typed [`DecodeError`]s, never panics — a Byzantine peer owns
//! the bytes on the wire, so the decoder is protocol attack surface.

use bft_rbc::{RbcMessage, RbcMuxMessage};
use bft_types::{NodeId, Round, Step, Value};
use std::fmt;

/// A strict decode failure.
///
/// Every variant carries enough context to debug a hostile or corrupted
/// frame; [`DecodeError::label`] gives the stable short form used by the
/// `FrameDecodeError` observability event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame did not start with the protocol magic.
    BadMagic(u16),
    /// The frame advertised an unsupported codec version.
    BadVersion(u8),
    /// The frame kind byte is not a known [`crate::frame::FrameKind`].
    BadKind(u8),
    /// The advertised payload length exceeds the hard cap.
    Oversize(u32),
    /// The checksum trailer did not match the frame contents.
    Checksum {
        /// Checksum recomputed over the received bytes.
        expected: u64,
        /// Checksum carried in the trailer.
        got: u64,
    },
    /// The input ended before the structure was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bytes remained after the outermost structure was fully decoded.
    Trailing {
        /// Number of unread bytes.
        unread: usize,
    },
    /// A field held a value outside its domain (bad discriminant, bad
    /// bit, round zero, invalid UTF-8, …).
    Invalid {
        /// Which field was out of range.
        what: &'static str,
        /// The offending raw value (0 when not representable).
        got: u64,
    },
}

impl DecodeError {
    /// A stable snake_case label for metrics and events.
    pub const fn label(&self) -> &'static str {
        match self {
            DecodeError::BadMagic(_) => "bad_magic",
            DecodeError::BadVersion(_) => "bad_version",
            DecodeError::BadKind(_) => "bad_kind",
            DecodeError::Oversize(_) => "oversize",
            DecodeError::Checksum { .. } => "checksum",
            DecodeError::Truncated { .. } => "truncated",
            DecodeError::Trailing { .. } => "trailing",
            DecodeError::Invalid { .. } => "invalid_value",
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::Oversize(n) => write!(f, "payload length {n} exceeds cap"),
            DecodeError::Checksum { expected, got } => {
                write!(f, "checksum mismatch: computed {expected:#018x}, trailer {got:#018x}")
            }
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            DecodeError::Trailing { unread } => {
                write!(f, "{unread} trailing bytes after a complete value")
            }
            DecodeError::Invalid { what, got } => write!(f, "invalid {what}: {got}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked cursor over a received byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes or fails with `Truncated`.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { needed: n, available: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = self.take(1)?;
        Ok(b.first().copied().unwrap_or_default())
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let mut a = [0u8; 2];
        a.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(a))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut a = [0u8; 4];
        a.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut a = [0u8; 8];
        a.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(a))
    }

    /// Asserts the input was consumed exactly.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() > 0 {
            return Err(DecodeError::Trailing { unread: self.remaining() });
        }
        Ok(())
    }
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A type with a canonical binary wire encoding.
///
/// Encoding is infallible (the types are already validated); decoding is
/// strict and total — any byte string either decodes to a valid value or
/// returns a typed [`DecodeError`].
pub trait Codec: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the cursor, consuming exactly its bytes.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value that must span the whole buffer (trailing bytes
    /// are an error).
    fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// The causal-trace id this value belongs to, stamped into the
    /// version-2 frame header so the transport can attribute wire-level
    /// events to a trace without decoding the payload. `0` (the
    /// default) means untraced.
    fn trace_hint(&self) -> u64 {
        0
    }
}

impl Codec for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u8()
    }
}

impl Codec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u32()
    }
}

impl Codec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u64()
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            got => Err(DecodeError::Invalid { what: "bool", got: got as u64 }),
        }
    }
}

impl Codec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

/// Upper bound on a wire-decoded node index, far above any supported
/// `n`. Downstream structures size per-node state by index
/// (`NodeBitset` panics past its capacity), so an unchecked 32-bit
/// index is a remote crash/allocation vector.
pub const MAX_WIRE_NODE_INDEX: usize = 4096;

impl Codec for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.index() as u32);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let index = r.u32()? as usize;
        if index > MAX_WIRE_NODE_INDEX {
            return Err(DecodeError::Invalid { what: "node index", got: index as u64 });
        }
        Ok(NodeId::new(index))
    }
}

impl Codec for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.bit());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(Value::Zero),
            1 => Ok(Value::One),
            got => Err(DecodeError::Invalid { what: "value bit", got: got as u64 }),
        }
    }
}

impl Codec for Round {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.get());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u64()? {
            0 => Err(DecodeError::Invalid { what: "round (rounds are 1-based)", got: 0 }),
            v => Ok(Round::new(v)),
        }
    }
}

impl Codec for Step {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(Step::Initial),
            1 => Ok(Step::Echo),
            2 => Ok(Step::Ready),
            got => Err(DecodeError::Invalid { what: "step", got: got as u64 }),
        }
    }
}

impl Codec for bracha::StepTag {
    fn encode(&self, out: &mut Vec<u8>) {
        self.round.encode(out);
        self.step.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let round = Round::decode(r)?;
        let step = Step::decode(r)?;
        Ok(bracha::StepTag::new(round, step))
    }
}

impl Codec for bracha::StepPayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            bracha::StepPayload::Initial(v) => {
                out.push(0);
                v.encode(out);
            }
            bracha::StepPayload::Echo(v) => {
                out.push(1);
                v.encode(out);
            }
            bracha::StepPayload::Ready { value, flagged } => {
                out.push(2);
                value.encode(out);
                flagged.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(bracha::StepPayload::Initial(Value::decode(r)?)),
            1 => Ok(bracha::StepPayload::Echo(Value::decode(r)?)),
            2 => {
                let value = Value::decode(r)?;
                let flagged = bool::decode(r)?;
                Ok(bracha::StepPayload::Ready { value, flagged })
            }
            got => Err(DecodeError::Invalid { what: "step payload discriminant", got: got as u64 }),
        }
    }
}

/// Erasure-coded fragments: index, original payload length, the shard
/// bytes (length-prefixed) and the Merkle commitment path (count-prefixed
/// `u64`s). The path count is capped well above any real tree depth
/// (`log₂ 256 = 8` for the maximum supported `n`) so a hostile length
/// prefix cannot drive a large allocation.
impl Codec for bft_ec::Fragment {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u16(out, self.index);
        put_u32(out, self.total_len);
        put_u32(out, self.shard.len() as u32);
        out.extend_from_slice(&self.shard);
        put_u16(out, self.proof.len() as u16);
        for hash in &self.proof {
            put_u64(out, *hash);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let index = r.u16()?;
        let total_len = r.u32()?;
        let shard_len = r.u32()? as usize;
        if shard_len > crate::frame::MAX_PAYLOAD as usize {
            return Err(DecodeError::Oversize(shard_len as u32));
        }
        let shard = r.take(shard_len)?.to_vec();
        let proof_len = r.u16()? as usize;
        if proof_len > 64 {
            return Err(DecodeError::Invalid {
                what: "fragment proof length",
                got: proof_len as u64,
            });
        }
        let mut proof = Vec::with_capacity(proof_len);
        for _ in 0..proof_len {
            proof.push(r.u64()?);
        }
        Ok(bft_ec::Fragment { index, total_len, shard, proof })
    }
}

impl<P: Codec> Codec for RbcMessage<P> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RbcMessage::Send(p) => {
                out.push(0);
                p.encode(out);
            }
            RbcMessage::Echo(p) => {
                out.push(1);
                p.encode(out);
            }
            RbcMessage::Ready(p) => {
                out.push(2);
                p.encode(out);
            }
            RbcMessage::CodedSend { root, fragment } => {
                out.push(3);
                put_u64(out, *root);
                fragment.encode(out);
            }
            RbcMessage::CodedEcho { root, fragment } => {
                out.push(4);
                put_u64(out, *root);
                fragment.encode(out);
            }
            RbcMessage::CodedReady { root } => {
                out.push(5);
                put_u64(out, *root);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(RbcMessage::Send(P::decode(r)?)),
            1 => Ok(RbcMessage::Echo(P::decode(r)?)),
            2 => Ok(RbcMessage::Ready(P::decode(r)?)),
            3 => {
                let root = r.u64()?;
                let fragment = bft_ec::Fragment::decode(r)?;
                Ok(RbcMessage::CodedSend { root, fragment })
            }
            4 => {
                let root = r.u64()?;
                let fragment = bft_ec::Fragment::decode(r)?;
                Ok(RbcMessage::CodedEcho { root, fragment })
            }
            5 => Ok(RbcMessage::CodedReady { root: r.u64()? }),
            got => Err(DecodeError::Invalid { what: "rbc phase discriminant", got: got as u64 }),
        }
    }
}

impl<T: Codec, P: Codec> Codec for RbcMuxMessage<T, P> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sender.encode(out);
        self.tag.encode(out);
        self.msg.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let sender = NodeId::decode(r)?;
        let tag = T::decode(r)?;
        let msg = RbcMessage::decode(r)?;
        Ok(RbcMuxMessage { sender, tag, msg })
    }
}

/// Strings are length-prefixed UTF-8 (used by the RBC examples whose
/// payloads are text).
impl Codec for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.len() as u32);
        out.extend_from_slice(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.u32()? as usize;
        if len > crate::frame::MAX_PAYLOAD as usize {
            return Err(DecodeError::Oversize(len as u32));
        }
        Ok(r.take(len)?.to_vec())
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.len() as u32);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.u32()? as usize;
        if len > crate::frame::MAX_PAYLOAD as usize {
            return Err(DecodeError::Oversize(len as u32));
        }
        let bytes = r.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(DecodeError::Invalid { what: "utf-8 string", got: len as u64 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bracha::{StepPayload, StepTag, Wire};

    fn round_trip<T: Codec + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes), Ok(v));
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(NodeId::new(7));
        round_trip(Value::One);
        round_trip(Round::new(42));
        round_trip(Step::Ready);
        round_trip("héllo".to_string());
    }

    #[test]
    fn wire_round_trips() {
        let w: Wire = Wire {
            sender: NodeId::new(3),
            tag: StepTag::new(Round::new(2), Step::Echo),
            msg: RbcMessage::Ready(StepPayload::Ready { value: Value::One, flagged: true }),
        };
        round_trip(w);
    }

    #[test]
    fn strict_domains_reject() {
        assert_eq!(
            Value::from_bytes(&[2]),
            Err(DecodeError::Invalid { what: "value bit", got: 2 })
        );
        assert_eq!(
            Round::from_bytes(&[0; 8]),
            Err(DecodeError::Invalid { what: "round (rounds are 1-based)", got: 0 })
        );
        assert_eq!(bool::from_bytes(&[9]), Err(DecodeError::Invalid { what: "bool", got: 9 }));
        assert!(matches!(Step::from_bytes(&[3]), Err(DecodeError::Invalid { .. })));
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        assert_eq!(
            u32::from_bytes(&[1, 2]),
            Err(DecodeError::Truncated { needed: 4, available: 2 })
        );
        assert_eq!(u8::from_bytes(&[1, 2]), Err(DecodeError::Trailing { unread: 1 }));
        let bad_len = {
            let mut b = Vec::new();
            put_u32(&mut b, 100);
            b.push(b'x');
            b
        };
        assert!(matches!(String::from_bytes(&bad_len), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DecodeError::BadMagic(0).label(), "bad_magic");
        assert_eq!(DecodeError::Trailing { unread: 1 }.label(), "trailing");
    }
}
