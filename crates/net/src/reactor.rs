//! The reactor transport driver: one nonblocking poll loop per node.
//!
//! The thread driver ([`crate::runtime`]) spends two OS threads per
//! *directed link* (a blocking reader and a blocking writer), which is
//! `2n(n-1)` threads for an `n`-node cluster — fine at n=4, hopeless at
//! n=64. This module drives the identical wire protocol with a **fixed
//! small thread count per node**: one reactor thread owning every socket
//! the node touches (peer listener, inbound connections, outbound links,
//! the client gateway, and a loopback wake channel), plus the unchanged
//! actor thread running the sans-io process. Readiness comes from
//! `poll(2)` via the dependency-free [`poll`] shim.
//!
//! # Driver-swap seam
//!
//! The reactor replaces only the *I/O strategy*. Everything observable is
//! preserved from the thread driver so the two are interchangeable under
//! [`crate::NetRuntime`] (see `NetDriver`):
//!
//! * the frame codec, handshake bytes (the pure helpers in
//!   [`crate::handshake`] are shared by both drivers), and per-link
//!   sequence/replay/ack-trim discipline;
//! * the per-frame chaos draw order (outage → delay → drop loop →
//!   duplicate), so a seeded chaos schedule produces the same per-link
//!   fault pattern under either driver;
//! * reconnect backoff, the `skip_first_replay` sequence-gap chaos, and
//!   the full transport event vocabulary (`PeerConnected`,
//!   `FrameSequenceGap`, `LinkLogPeak`, …).
//!
//! Blocking reads/writes become per-connection state machines: an
//! outbound link is `Idle → Hello → Up` (with a head-of-line chaos
//! machine `Start → Delayed → Dropping` per frame), an inbound
//! connection is `AwaitHello → AwaitAuth → Up`. Each `poll` both parks
//! the loop and reports per-descriptor readiness; the next pass issues
//! read/accept syscalls **only on the descriptors `revents` flagged**,
//! so an idle connection costs one poll-set entry, not a `read(2)` that
//! returns `EWOULDBLOCK`. Readiness is still only a gate, never a proof:
//! `poll(2)` is level-triggered, every socket is nonblocking, and every
//! pump handles `WouldBlock`, so a spurious bit costs one wasted syscall
//! and a missed bit is re-reported by the next poll — never a stall.
//!
//! # The client gateway
//!
//! A node configured with a [`GatewayPipe`] additionally owns a gateway
//! listener. External clients connect without a handshake and speak
//! `Submit`/`SubmitOk`/`SubmitNack` frames; decoded submissions flow to
//! the actor through the pipe's bounded intake (refusals are answered
//! with a typed backpressure NACK straight from the reactor), and
//! completion notices flow back and are forwarded to the submitting
//! client's connection. The actor learns about queued intake via
//! `Ctrl::Tick`, which invokes the process's `on_tick` hook.

use crate::chaos::{LinkChaos, XorShift};
use crate::clock::{sleep_ms, Clock};
use crate::codec::Codec;
use crate::frame::{decode_prefix, encode_frame, Frame, FrameKind};
use crate::gateway::{
    parse_submit, submit_nack_payload, submit_ok_payload, ClientSubmit, GatewayNotice, GatewayPipe,
    NackReason, INTAKE_CAP,
};
use crate::handshake::{
    auth_payload, challenge_payload, hello_payload, next_nonce, parse_auth, parse_challenge,
    parse_hello, Secret,
};
use crate::runtime::{
    actor_loop, locked, rebind, supervised, BackoffPolicy, Ctrl, FrameBody, InboxChannels,
    LinkFanout, ListenerBounce, NetRuntime, PanicLedger, RestartSpec, ACK_EVERY, MAX_RETRANSMIT,
    RETRANSMIT_RTO_MS,
};
use bft_obs::{Event as ObsEvent, Obs};
use bft_runtime::RuntimeReport;
use bft_types::{Envelope, NodeId};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError};

/// How long a half-open handshake (either direction) may sit before the
/// connection is abandoned; the dialer treats expiry as a failed attempt
/// and backs off, the accepter just drops the straggler.
const HANDSHAKE_DEADLINE_MS: u64 = 2_000;

/// Soft cap on a peer connection's pending output buffer: the transmit
/// machine stops encoding past it and resumes once a flush drains it, so
/// a slow receiver bounds our memory instead of growing it.
const OUTBUF_SOFT_CAP: usize = 256 << 10;

/// Upper bound on one poll sleep, so shutdown and new actor output are
/// observed promptly even if a wakeup is lost.
const POLL_CAP_MS: u64 = 10;

// ---- wakeups --------------------------------------------------------------

/// Wakes a node's reactor out of its `poll` sleep by writing one byte
/// into a loopback socket the reactor watches. Clones share the socket;
/// wake errors are ignored (the poll cap bounds the added latency).
#[derive(Clone)]
pub(crate) struct ReactorWaker {
    stream: Option<Arc<TcpStream>>,
}

impl ReactorWaker {
    /// A waker wired to nothing — used when the wake pair could not be
    /// set up; the reactor then relies on its capped poll timeout.
    pub(crate) fn disconnected() -> Self {
        ReactorWaker { stream: None }
    }

    /// Nudges the reactor. Nonblocking and infallible by design: a full
    /// wake socket already guarantees a pending wakeup.
    pub(crate) fn wake(&self) {
        if let Some(stream) = &self.stream {
            let _ = (&**stream).write(&[1u8]);
        }
    }
}

impl fmt::Debug for ReactorWaker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReactorWaker(connected={})", self.stream.is_some())
    }
}

/// Builds a loopback wake channel: the read end goes into the reactor's
/// poll set, the write end into the [`ReactorWaker`].
fn wake_pair() -> Option<(TcpStream, ReactorWaker)> {
    let listener = TcpListener::bind(("127.0.0.1", 0)).ok()?;
    let addr = listener.local_addr().ok()?;
    let write_end = TcpStream::connect(addr).ok()?;
    let (read_end, _) = listener.accept().ok()?;
    read_end.set_nonblocking(true).ok()?;
    write_end.set_nonblocking(true).ok()?;
    let _ = write_end.set_nodelay(true);
    Some((read_end, ReactorWaker { stream: Some(Arc::new(write_end)) }))
}

// ---- buffered nonblocking connections -------------------------------------

/// What a fill pass observed on the read side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FillEnd {
    /// Connection still open (drained to `WouldBlock`).
    Open,
    /// Orderly FIN from the peer. For a dial connection this is *not*
    /// immediate death: TCP half-close semantics (and thread-driver
    /// parity) require pending frames to keep flowing until a write
    /// fails, which is what turns a skipped replay into the sequence
    /// gap the receiver must detect.
    Eof,
    /// Hard transport error.
    Error,
}

/// One nonblocking socket with explicit in/out buffering — the reactor's
/// replacement for a blocking reader/writer thread pair.
struct BufConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    in_pos: usize,
    outbuf: Vec<u8>,
    out_pos: usize,
    /// The peer sent FIN: stop polling for readability (an EOF socket is
    /// perpetually "readable" and would spin the loop).
    peer_eof: bool,
    /// The last poll flagged the socket readable (set via [`mark_ready`],
    /// consumed by [`fill_ready`]). Starts `true` so a fresh connection
    /// reads whatever raced in before its first poll.
    ready: bool,
}

impl BufConn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(BufConn {
            stream,
            inbuf: Vec::new(),
            in_pos: 0,
            outbuf: Vec::new(),
            out_pos: 0,
            peer_eof: false,
            ready: true,
        })
    }

    /// Records that the last poll reported this socket readable (or
    /// hung up / errored — a read surfaces those too).
    fn mark_ready(&mut self) {
        self.ready = true;
    }

    fn pending_out(&self) -> bool {
        self.out_pos < self.outbuf.len()
    }

    fn out_len(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    fn queue(&mut self, bytes: &[u8]) {
        self.outbuf.extend_from_slice(bytes);
    }

    /// Reads everything currently available. Skipped entirely once the
    /// peer has half-closed.
    fn fill(&mut self) -> FillEnd {
        if self.peer_eof {
            return FillEnd::Eof;
        }
        let mut chunk = [0u8; 16 << 10];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    return FillEnd::Eof;
                }
                Ok(k) => self.inbuf.extend_from_slice(chunk.get(..k).unwrap_or_default()),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return FillEnd::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FillEnd::Error,
            }
        }
    }

    /// Readiness-gated [`fill`](Self::fill): issues the read syscall only
    /// when the last poll flagged the socket (the flag is consumed here
    /// and re-armed by the next poll — level-triggered, so bytes left in
    /// the kernel re-flag immediately). This is what makes an idle
    /// connection free per pass instead of one `EWOULDBLOCK` read.
    fn fill_ready(&mut self) -> FillEnd {
        if self.peer_eof {
            return FillEnd::Eof;
        }
        if !self.ready {
            return FillEnd::Open;
        }
        self.ready = false;
        self.fill()
    }

    /// Pops the next complete frame off the input buffer, if one is
    /// fully buffered.
    fn take_frame(&mut self) -> Result<Option<Frame>, crate::codec::DecodeError> {
        let rest = self.inbuf.get(self.in_pos..).unwrap_or_default();
        match decode_prefix(rest)? {
            Some((frame, used)) => {
                // `used` is bounded by the bytes actually buffered, but
                // keep the cursor arithmetic non-wrapping regardless.
                self.in_pos = self.in_pos.saturating_add(used);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Drops consumed input bytes (called once per pump pass, so frame
    /// parsing stays O(bytes) instead of O(bytes × frames)).
    fn compact_in(&mut self) {
        if self.in_pos > 0 {
            self.inbuf.drain(..self.in_pos);
            self.in_pos = 0;
        }
    }

    /// Writes as much pending output as the socket accepts. `false`
    /// means the connection is dead.
    fn flush(&mut self) -> bool {
        while self.out_pos < self.outbuf.len() {
            let rest = self.outbuf.get(self.out_pos..).unwrap_or_default();
            match self.stream.write(rest) {
                Ok(0) => return false,
                Ok(k) => self.out_pos += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.out_pos >= self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        } else if self.out_pos > (64 << 10) {
            self.outbuf.drain(..self.out_pos);
            self.out_pos = 0;
        }
        true
    }

    /// The poll-set entry for this connection, or `None` when there is
    /// nothing to wait for (half-closed and fully flushed).
    fn poll_fd(&self) -> Option<poll::PollFd> {
        let mut events: i16 = 0;
        if !self.peer_eof {
            events |= poll::POLLIN;
        }
        if self.pending_out() {
            events |= poll::POLLOUT;
        }
        if events == 0 {
            return None;
        }
        Some(poll::PollFd::new(self.stream.as_raw_fd(), events))
    }
}

// ---- outbound links -------------------------------------------------------

/// Where an outbound connection is in its lifecycle.
#[derive(Clone, Copy, Debug)]
enum LinkPhase {
    /// No connection (between dials).
    Idle,
    /// Hello sent; waiting for the accepter's Challenge.
    Hello { nonce_me: u64, started_ms: u64 },
    /// Authenticated; frames flow.
    Up,
}

/// The chaos machine for the head-of-line frame, mirroring the thread
/// writer's per-frame draw order exactly: outage wait (no draw) → one
/// `delay_ms` draw → an `attempt_dropped` loop (≤ [`MAX_RETRANSMIT`],
/// RTO-spaced) → one `duplicate` draw at transmission.
#[derive(Clone, Copy, Debug)]
enum Head {
    /// Nothing drawn yet for the current head frame.
    Start,
    /// Chaos delay in progress.
    Delayed { until_ms: u64 },
    /// Retransmission loop: `attempts` wire losses so far.
    Dropping { attempts: u32, retry_at_ms: u64 },
}

/// Why an outbound connection died — determines the replay reset and
/// the emitted event, mirroring the thread writer's paths.
#[derive(Clone, Copy, Debug)]
enum LinkDeath {
    /// Dial/handshake failure: back off and emit `ReconnectBackoff`.
    Handshake,
    /// Peer closed a fully-drained link: full replay (`"peer_closed"`).
    Idle,
    /// Write failure with frames in flight: `sent` is preserved so a
    /// chaos-skipped replay exposes the gap (`"write_failed"`).
    Write,
    /// The ack stream broke or carried a non-ack frame: full replay
    /// (`"ack_failed"`).
    Ack,
}

/// Shared per-node context handed to every link pump.
struct LinkCtx<'a> {
    me: NodeId,
    obs: &'a Obs,
    clock: Clock,
    backoff: BackoffPolicy,
    secret: Secret,
    shutdown: &'a AtomicBool,
    addr_table: &'a Mutex<Vec<SocketAddr>>,
}

/// One directed outbound link: the replay log, the connection state
/// machine, and the chaos head machine — the reactor's equivalent of a
/// whole writer thread.
struct LinkState {
    peer: NodeId,
    rx: Receiver<FrameBody>,
    /// The replay log; `log[i]` carries seq `log_base + i + 1`.
    log: Vec<FrameBody>,
    log_base: u64,
    sent: usize,
    peak: usize,
    draining: bool,
    finished: bool,
    ever_connected: bool,
    /// Failed dial attempts in the current reconnect episode.
    attempt: u64,
    next_dial_at_ms: u64,
    chaos: LinkChaos,
    jitter: XorShift,
    conn: Option<BufConn>,
    phase: LinkPhase,
    head: Head,
}

impl LinkState {
    fn new(me: NodeId, peer: NodeId, rx: Receiver<FrameBody>, chaos: LinkChaos) -> Self {
        // Same jitter stream as the thread writer, so backoff schedules
        // match across drivers.
        let mut h = crate::hash::Fnv64::new();
        h.write(b"backoff-jitter");
        h.write(&(me.index() as u32).to_le_bytes());
        h.write(&(peer.index() as u32).to_le_bytes());
        LinkState {
            peer,
            rx,
            log: Vec::new(),
            log_base: 0,
            sent: 0,
            peak: 0,
            draining: false,
            finished: false,
            ever_connected: false,
            attempt: 0,
            next_dial_at_ms: 0,
            chaos,
            jitter: XorShift::new(h.finish()),
            conn: None,
            phase: LinkPhase::Idle,
            head: Head::Start,
        }
    }

    /// One nonblocking pass over this link.
    fn pump(&mut self, ctx: &LinkCtx<'_>, now_ms: u64, deadline: &mut u64) {
        if self.finished {
            return;
        }
        // Absorb newly queued frame bodies from the actor.
        if !self.draining {
            loop {
                match self.rx.try_recv() {
                    Ok(body) => self.log.push(body),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.draining = true;
                        break;
                    }
                }
            }
            self.peak = self.peak.max(self.log.len());
        }

        if let Some(mut conn) = self.conn.take() {
            match self.pump_conn(&mut conn, ctx, now_ms, deadline) {
                None => self.conn = Some(conn),
                Some(death) => self.die(death, ctx, now_ms),
            }
        } else if self.sent < self.log.len() {
            if now_ms >= self.next_dial_at_ms {
                self.dial(ctx, now_ms, deadline);
            } else {
                *deadline = (*deadline).min(self.next_dial_at_ms);
            }
        }

        // The link is complete once the actor hung up and every frame is
        // out of the socket, mirroring the writer thread's exit — which
        // is also when the log peak is reported.
        let flushed = self.conn.as_ref().map(|c| !c.pending_out()).unwrap_or(true);
        if self.draining && self.sent == self.log.len() && flushed {
            self.finished = true;
            self.emit_peak(ctx);
        }
    }

    /// Pumps a live connection; `Some(death)` means it must be torn
    /// down (the connection is dropped by the caller).
    fn pump_conn(
        &mut self,
        conn: &mut BufConn,
        ctx: &LinkCtx<'_>,
        now_ms: u64,
        deadline: &mut u64,
    ) -> Option<LinkDeath> {
        let end = conn.fill_ready();

        // Parse whatever arrived, under the current phase.
        loop {
            match self.phase {
                LinkPhase::Idle => break,
                LinkPhase::Hello { nonce_me, started_ms } => match conn.take_frame() {
                    Ok(Some(frame)) => {
                        if frame.kind != FrameKind::Challenge {
                            return Some(LinkDeath::Handshake);
                        }
                        let Ok(nonce_peer) =
                            parse_challenge(&frame.payload, ctx.secret, self.peer, nonce_me)
                        else {
                            return Some(LinkDeath::Handshake);
                        };
                        // The dialer considers the handshake done after
                        // writing Auth — same as the blocking path.
                        let body = auth_payload(ctx.secret, nonce_peer, ctx.me);
                        let auth = encode_frame(FrameKind::Auth, 0, 0, &body).unwrap_or_default();
                        conn.queue(&auth);
                        self.established(ctx);
                    }
                    Ok(None) => {
                        if now_ms.saturating_sub(started_ms) >= HANDSHAKE_DEADLINE_MS {
                            return Some(LinkDeath::Handshake);
                        }
                        *deadline = (*deadline).min(started_ms + HANDSHAKE_DEADLINE_MS);
                        break;
                    }
                    Err(_) => return Some(LinkDeath::Handshake),
                },
                LinkPhase::Up => match conn.take_frame() {
                    Ok(Some(frame)) if frame.kind == FrameKind::Ack => {
                        // Cumulative ack: trim the acked prefix.
                        if frame.seq > self.log_base {
                            let k = ((frame.seq - self.log_base) as usize).min(self.sent);
                            self.log.drain(..k);
                            self.sent -= k;
                            self.log_base += k as u64;
                        }
                    }
                    Ok(Some(_)) | Err(_) => return Some(LinkDeath::Ack),
                    Ok(None) => break,
                },
            }
        }
        conn.compact_in();

        let sent_before = self.sent;
        if matches!(self.phase, LinkPhase::Up) {
            self.transmit(conn, ctx, now_ms, deadline);
        }
        // Frames transmitted after the peer's FIN are doomed: peers
        // never half-close in this protocol, so nobody will read them.
        // The thread writer counts such frames `sent` (the kernel
        // accepts them before the RST lands) and then dies on a write
        // failure with `sent` preserved — which is exactly what lets
        // `skip_first_replay` manufacture a sequence gap. Mirror that:
        // queueing anything onto an EOF'd connection is a Write death.
        let queued_to_dead = conn.peer_eof && self.sent > sent_before;

        if !conn.flush() {
            return Some(match self.phase {
                LinkPhase::Up => LinkDeath::Write,
                _ => LinkDeath::Handshake,
            });
        }
        match end {
            FillEnd::Open => None,
            FillEnd::Error => Some(match self.phase {
                LinkPhase::Up if conn.peer_eof => LinkDeath::Write,
                LinkPhase::Up => LinkDeath::Ack,
                _ => LinkDeath::Handshake,
            }),
            FillEnd::Eof => match self.phase {
                LinkPhase::Up if queued_to_dead => Some(LinkDeath::Write),
                // An idle, fully-flushed link whose peer closed is dead —
                // the thread driver's `conn_dead` probe equivalent.
                LinkPhase::Up if self.sent == self.log.len() && !conn.pending_out() => {
                    Some(LinkDeath::Idle)
                }
                // Pending work blocked on chaos (outage/delay): hold the
                // connection so those frames still get counted against it.
                LinkPhase::Up => None,
                _ => Some(LinkDeath::Handshake),
            },
        }
    }

    /// The transmit machine: encodes head frames into the output buffer
    /// under the chaos head machine, preserving the thread writer's
    /// draw order per frame.
    fn transmit(&mut self, conn: &mut BufConn, ctx: &LinkCtx<'_>, now_ms: u64, deadline: &mut u64) {
        loop {
            if self.sent >= self.log.len() || conn.out_len() >= OUTBUF_SOFT_CAP {
                break;
            }
            let seq = self.log_base + self.sent as u64 + 1;
            match self.head {
                Head::Start => {
                    // Partition window: frames wait out the outage.
                    if let Some(until) = self.chaos.outage_until(now_ms) {
                        *deadline = (*deadline).min(until);
                        break;
                    }
                    let delay = self.chaos.delay_ms();
                    self.head = if delay > 0 {
                        Head::Delayed { until_ms: now_ms + delay }
                    } else {
                        Head::Dropping { attempts: 0, retry_at_ms: now_ms }
                    };
                }
                Head::Delayed { until_ms } => {
                    if now_ms < until_ms {
                        *deadline = (*deadline).min(until_ms);
                        break;
                    }
                    self.head = Head::Dropping { attempts: 0, retry_at_ms: now_ms };
                }
                Head::Dropping { attempts, retry_at_ms } => {
                    if now_ms < retry_at_ms {
                        *deadline = (*deadline).min(retry_at_ms);
                        break;
                    }
                    if attempts < MAX_RETRANSMIT && self.chaos.attempt_dropped() {
                        let peer = self.peer;
                        ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::FrameDropped {
                            to: peer,
                            seq,
                        });
                        self.head = Head::Dropping {
                            attempts: attempts + 1,
                            retry_at_ms: now_ms + RETRANSMIT_RTO_MS,
                        };
                        continue;
                    }
                    let Some((body, trace)) = self.log.get(self.sent) else { break };
                    match encode_frame(FrameKind::Msg, seq, *trace, body) {
                        Ok(bytes) => {
                            let duplicate = self.chaos.duplicate();
                            conn.queue(&bytes);
                            if duplicate {
                                conn.queue(&bytes);
                            }
                        }
                        Err(_) => {
                            // Unreachable (oversize is rejected at the
                            // send boundary); skip to keep the link live.
                            ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || {
                                ObsEvent::FrameDecodeError { reason: "payload_too_large" }
                            });
                        }
                    }
                    self.sent += 1;
                    self.head = Head::Start;
                }
            }
        }
    }

    /// Marks the link authenticated and applies the replay policy —
    /// byte-for-byte the thread dialer's post-handshake block.
    fn established(&mut self, ctx: &LinkCtx<'_>) {
        let was_reconnect = self.ever_connected;
        let peer = self.peer;
        let at = ctx.clock.now_us();
        if was_reconnect {
            let attempts = self.attempt;
            ctx.obs.emit_at(at, ctx.me, || ObsEvent::PeerReconnected { peer, attempts });
        } else {
            ctx.obs.emit_at(at, ctx.me, || ObsEvent::PeerConnected { peer });
        }
        self.ever_connected = true;
        if !(was_reconnect && self.chaos.skip_replay_once()) {
            // Fresh connection ⇒ replay the whole log; the receiver
            // dedups by sequence number. The chaos branch resumes from
            // the send counter instead, manufacturing a sequence gap.
            self.sent = 0;
        }
        self.attempt = 0;
        self.phase = LinkPhase::Up;
        self.head = Head::Start;
    }

    /// Tears the connection down along one of the writer-thread death
    /// paths.
    fn die(&mut self, death: LinkDeath, ctx: &LinkCtx<'_>, now_ms: u64) {
        self.conn = None;
        self.head = Head::Start;
        let was_up = matches!(self.phase, LinkPhase::Up);
        self.phase = LinkPhase::Idle;
        let peer = self.peer;
        let shutdown = ctx.shutdown.load(Ordering::Relaxed);
        match death {
            LinkDeath::Handshake => {
                self.attempt += 1;
                let delay_ms = ctx.backoff.delay_ms(self.attempt, &mut self.jitter);
                self.next_dial_at_ms = now_ms + delay_ms;
                if !shutdown {
                    let attempt = self.attempt;
                    ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::ReconnectBackoff {
                        peer,
                        attempt,
                        delay_ms,
                    });
                }
            }
            LinkDeath::Idle => {
                self.sent = 0;
                if !shutdown && was_up {
                    ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::PeerDisconnected {
                        peer,
                        reason: "peer_closed",
                    });
                }
            }
            LinkDeath::Write => {
                // The frame in flight when the link died was never
                // really sent — uncount it (the thread writer's failed
                // `write_all` does not increment `sent` either). This
                // keeps `sent < log.len()`, which is what arms the
                // redial; the surviving prefix of `sent` is what a
                // chaos-skipped replay resumes from, manufacturing the
                // receiver-visible sequence gap.
                self.sent = self.sent.saturating_sub(1);
                if !shutdown && was_up {
                    ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::PeerDisconnected {
                        peer,
                        reason: "write_failed",
                    });
                }
            }
            LinkDeath::Ack => {
                self.sent = 0;
                if !shutdown && was_up {
                    ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::PeerDisconnected {
                        peer,
                        reason: "ack_failed",
                    });
                }
            }
        }
    }

    /// Starts a fresh dial: connect (loopback fails fast), queue Hello,
    /// enter the Hello phase with a deadline.
    fn dial(&mut self, ctx: &LinkCtx<'_>, now_ms: u64, deadline: &mut u64) {
        let addr = locked(ctx.addr_table).get(self.peer.index()).copied();
        let Some(addr) = addr else { return };
        let conn = TcpStream::connect(addr).and_then(BufConn::new);
        match conn {
            Ok(mut conn) => {
                let nonce_me = next_nonce();
                let body = hello_payload(ctx.me, nonce_me);
                let hello = encode_frame(FrameKind::Hello, 0, 0, &body).unwrap_or_default();
                conn.queue(&hello);
                if conn.flush() {
                    self.conn = Some(conn);
                    self.phase = LinkPhase::Hello { nonce_me, started_ms: now_ms };
                    *deadline = (*deadline).min(now_ms + HANDSHAKE_DEADLINE_MS);
                } else {
                    self.die(LinkDeath::Handshake, ctx, now_ms);
                }
            }
            Err(_) => self.die(LinkDeath::Handshake, ctx, now_ms),
        }
    }

    /// Reports the link's replay-log high-water mark (the thread
    /// writer's teardown event).
    fn emit_peak(&self, ctx: &LinkCtx<'_>) {
        let peer = self.peer;
        let frames = self.peak as u64;
        ctx.obs.emit_at(ctx.clock.now_us(), ctx.me, || ObsEvent::LinkLogPeak { peer, frames });
    }
}

// ---- inbound connections --------------------------------------------------

/// Accepter-side handshake progress for one inbound connection.
#[derive(Clone, Copy, Debug)]
enum InPhase {
    /// Waiting for the dialer's Hello.
    AwaitHello { since_ms: u64 },
    /// Challenge sent; waiting for the Auth proof.
    AwaitAuth { peer: NodeId, nonce_me: u64, since_ms: u64 },
    /// Authenticated: `Msg` frames are delivered, acks flow back.
    Up { peer: NodeId },
}

/// One accepted peer connection.
struct InConn {
    conn: BufConn,
    phase: InPhase,
}

// ---- the client gateway front ---------------------------------------------

/// The reactor-owned half of a node's client gateway: the listener,
/// accepted client connections, and the client → connection routing for
/// completion notices.
struct GatewayFront {
    listener: TcpListener,
    /// The last poll flagged the listener: an `accept` will not block.
    listener_ready: bool,
    pipe: GatewayPipe,
    conns: Vec<(u64, BufConn)>,
    next_conn_id: u64,
    owner: BTreeMap<u64, u64>,
}

// ---- the per-node reactor -------------------------------------------------

/// What one poll-set entry maps back to, so `revents` can be routed to
/// the owning connection's readiness flag after `poll` returns.
#[derive(Clone, Copy, Debug)]
enum PollTarget {
    /// The loopback wake socket.
    Wake,
    /// The peer listener.
    Listener,
    /// `inbound[i]`.
    Inbound(usize),
    /// `links[i]` (the link's live connection).
    Link(usize),
    /// The gateway listener.
    GwListener,
    /// `gateway.conns[i]`.
    GwConn(usize),
}

/// Everything one node's reactor thread owns. `run` is the poll loop.
struct NodeReactor<M> {
    me: NodeId,
    n: usize,
    clock: Clock,
    obs: Obs,
    secret: Secret,
    backoff: BackoffPolicy,
    shutdown: Arc<AtomicBool>,
    addr_table: Arc<Mutex<Vec<SocketAddr>>>,
    inbox: Sender<Ctrl<M>>,
    listener: Option<TcpListener>,
    /// The last poll flagged the peer listener readable.
    listener_ready: bool,
    bounce: Option<ListenerBounce>,
    rebind_at_ms: Option<u64>,
    wake_rx: Option<TcpStream>,
    /// The last poll flagged the wake socket readable.
    wake_ready: bool,
    links: Vec<LinkState>,
    inbound: Vec<InConn>,
    /// Per-peer next-expected seq; survives connection churn so replays
    /// dedup exactly-once (local to this thread — no lock needed).
    // lint: allow(unbounded-map) — keys are handshake-authenticated peer indices < n; the next-seq dedup floor must never be GC'd
    expected: BTreeMap<usize, u64>,
    gateway: Option<GatewayFront>,
}

impl<M: Codec + Clone + fmt::Debug> NodeReactor<M> {
    fn link_ctx(&self) -> LinkCtx<'_> {
        LinkCtx {
            me: self.me,
            obs: &self.obs,
            clock: self.clock,
            backoff: self.backoff,
            secret: self.secret,
            shutdown: &self.shutdown,
            addr_table: &self.addr_table,
        }
    }

    /// The node's whole I/O, one nonblocking pass per iteration, parked
    /// in `poll` between passes.
    fn run(mut self) {
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let now_ms = self.clock.now_ms();
            let mut deadline = now_ms + POLL_CAP_MS;
            self.step_bounce(now_ms, &mut deadline);
            self.accept_peers(now_ms);
            self.drain_wake();
            self.pump_inbound(now_ms);
            {
                let ctx = LinkCtx {
                    me: self.me,
                    obs: &self.obs,
                    clock: self.clock,
                    backoff: self.backoff,
                    secret: self.secret,
                    shutdown: &self.shutdown,
                    addr_table: &self.addr_table,
                };
                for link in self.links.iter_mut() {
                    link.pump(&ctx, now_ms, &mut deadline);
                }
            }
            self.pump_gateway();
            self.sleep(deadline);
        }
        // Report the replay-log peaks the finished-link path did not get
        // to (the writer thread emits these unconditionally at exit).
        let ctx = self.link_ctx();
        for link in &self.links {
            if !link.finished {
                link.emit_peak(&ctx);
            }
        }
    }

    /// Applies a scheduled listener bounce: down at `at_ms` (severing
    /// live inbound connections), rebound on a fresh ephemeral port
    /// `down_ms` later, with the address table updated for the dialers.
    fn step_bounce(&mut self, now_ms: u64, deadline: &mut u64) {
        if let Some(b) = self.bounce {
            if now_ms >= b.at_ms {
                self.bounce = None;
                self.listener = None;
                for c in self.inbound.drain(..) {
                    if let InPhase::Up { peer } = c.phase {
                        if !self.shutdown.load(Ordering::Relaxed) {
                            self.obs.emit_at(self.clock.now_us(), self.me, || {
                                ObsEvent::PeerDisconnected { peer, reason: "read_failed" }
                            });
                        }
                    }
                }
                self.rebind_at_ms = Some(b.at_ms + b.down_ms);
            } else {
                *deadline = (*deadline).min(b.at_ms);
            }
        }
        if let Some(up_at) = self.rebind_at_ms {
            if now_ms >= up_at {
                self.rebind_at_ms = None;
                if let Some((listener, addr)) = rebind(&self.shutdown) {
                    if let Some(slot) = locked(&self.addr_table).get_mut(self.me.index()) {
                        *slot = addr;
                    }
                    self.listener = Some(listener);
                    // A dial may land before the fresh fd's first poll.
                    self.listener_ready = true;
                }
            } else {
                *deadline = (*deadline).min(up_at);
            }
        }
    }

    /// Accepts every pending peer connection (only when the last poll
    /// flagged the listener — an idle listener costs no syscall).
    fn accept_peers(&mut self, now_ms: u64) {
        if !self.listener_ready {
            return;
        }
        self.listener_ready = false;
        let Some(listener) = self.listener.as_ref() else { return };
        while let Ok((stream, _)) = listener.accept() {
            if let Ok(conn) = BufConn::new(stream) {
                self.inbound.push(InConn { conn, phase: InPhase::AwaitHello { since_ms: now_ms } });
            }
        }
    }

    /// Drains the wake socket (the bytes are meaningless; arrival was
    /// the message). Skipped when the last poll saw it silent.
    fn drain_wake(&mut self) {
        if !self.wake_ready {
            return;
        }
        self.wake_ready = false;
        let mut dead = false;
        if let Some(sock) = self.wake_rx.as_mut() {
            let mut buf = [0u8; 256];
            loop {
                match sock.read(&mut buf) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.wake_rx = None;
        }
    }

    /// Pumps every inbound peer connection, closing the dead ones.
    fn pump_inbound(&mut self, now_ms: u64) {
        let mut i = 0;
        while i < self.inbound.len() {
            if self.pump_one_inbound(i, now_ms) {
                self.inbound.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// One pass over inbound connection `i`; `true` means close it.
    fn pump_one_inbound(&mut self, i: usize, now_ms: u64) -> bool {
        let Some(c) = self.inbound.get_mut(i) else { return false };
        let end = c.conn.fill_ready();
        loop {
            match c.conn.take_frame() {
                Ok(Some(frame)) => match c.phase {
                    InPhase::AwaitHello { .. } => {
                        // Handshake failures are silent on the accepter
                        // side; they surface as backoff on the dialer.
                        if frame.kind != FrameKind::Hello {
                            return true;
                        }
                        let Ok((peer, nonce_peer)) = parse_hello(&frame.payload, self.me, self.n)
                        else {
                            return true;
                        };
                        let nonce_me = next_nonce();
                        let body = challenge_payload(self.secret, self.me, nonce_me, nonce_peer);
                        let challenge =
                            encode_frame(FrameKind::Challenge, 0, 0, &body).unwrap_or_default();
                        c.conn.queue(&challenge);
                        c.phase = InPhase::AwaitAuth { peer, nonce_me, since_ms: now_ms };
                    }
                    InPhase::AwaitAuth { peer, nonce_me, .. } => {
                        if frame.kind != FrameKind::Auth {
                            return true;
                        }
                        if parse_auth(&frame.payload, self.secret, peer, nonce_me).is_err() {
                            return true;
                        }
                        // First-ever connection from this peer ⇒
                        // PeerConnected; later accepts are reconnects,
                        // reported by the dialer with its attempt count.
                        if !self.expected.contains_key(&peer.index()) {
                            self.obs.emit_at(self.clock.now_us(), self.me, || {
                                ObsEvent::PeerConnected { peer }
                            });
                        }
                        c.phase = InPhase::Up { peer };
                    }
                    InPhase::Up { peer } => {
                        if frame.kind != FrameKind::Msg {
                            self.obs.emit_at(self.clock.now_us(), self.me, || {
                                ObsEvent::FrameDecodeError { reason: "unexpected_kind" }
                            });
                            return true;
                        }
                        let next = self.expected.entry(peer.index()).or_insert(1);
                        if frame.seq < *next {
                            // Duplicate (chaos) or replayed after
                            // reconnect.
                            continue;
                        }
                        if frame.seq > *next {
                            // Contiguity violation: drop the connection;
                            // the dialer reconnects and replays.
                            let expected = *next;
                            let got = frame.seq;
                            self.obs.emit_at(self.clock.now_us(), self.me, || {
                                ObsEvent::FrameSequenceGap { from: peer, expected, got }
                            });
                            return true;
                        }
                        *next += 1;
                        // Cumulative ack on the same connection so the
                        // dialer can trim its replay log.
                        if frame.seq % ACK_EVERY == 0 {
                            if let Ok(ack) = encode_frame(FrameKind::Ack, frame.seq, 0, &[]) {
                                c.conn.queue(&ack);
                            }
                        }
                        match M::from_bytes(&frame.payload) {
                            Ok(msg) => {
                                let env = Envelope::new(peer, self.me, msg);
                                if self.inbox.send(Ctrl::Deliver(env)).is_err() {
                                    return true;
                                }
                            }
                            Err(err) => {
                                let reason = err.label();
                                self.obs.emit_at(self.clock.now_us(), self.me, || {
                                    ObsEvent::FrameDecodeError { reason }
                                });
                                return true;
                            }
                        }
                    }
                },
                Ok(None) => break,
                Err(err) => {
                    if matches!(c.phase, InPhase::Up { .. }) {
                        let reason = err.label();
                        self.obs.emit_at(self.clock.now_us(), self.me, || {
                            ObsEvent::FrameDecodeError { reason }
                        });
                    }
                    return true;
                }
            }
        }
        c.conn.compact_in();
        // Ack write failures are tolerated (as in the thread reader):
        // link death surfaces on the read side.
        let _ = c.conn.flush();
        match end {
            FillEnd::Open => match c.phase {
                // Handshake stragglers time out silently.
                InPhase::AwaitHello { since_ms } | InPhase::AwaitAuth { since_ms, .. } => {
                    now_ms.saturating_sub(since_ms) >= HANDSHAKE_DEADLINE_MS
                }
                InPhase::Up { .. } => false,
            },
            FillEnd::Eof => {
                if let InPhase::Up { peer } = c.phase {
                    if !self.shutdown.load(Ordering::Relaxed) {
                        self.obs.emit_at(self.clock.now_us(), self.me, || {
                            ObsEvent::PeerDisconnected { peer, reason: "closed" }
                        });
                    }
                }
                true
            }
            FillEnd::Error => {
                if let InPhase::Up { peer } = c.phase {
                    if !self.shutdown.load(Ordering::Relaxed) {
                        self.obs.emit_at(self.clock.now_us(), self.me, || {
                            ObsEvent::PeerDisconnected { peer, reason: "read_failed" }
                        });
                    }
                }
                true
            }
        }
    }

    /// Pumps the client gateway: accept, decode submissions into the
    /// pipe's intake (refusing with a typed NACK when it is full),
    /// forward completion notices to the owning connections, and nudge
    /// the actor once per pass with queued work.
    fn pump_gateway(&mut self) {
        let Some(gw) = self.gateway.as_mut() else { return };
        if gw.listener_ready {
            gw.listener_ready = false;
            while let Ok((stream, _)) = gw.listener.accept() {
                if let Ok(conn) = BufConn::new(stream) {
                    gw.conns.push((gw.next_conn_id, conn));
                    gw.next_conn_id += 1;
                }
            }
        }
        let mut ticked = false;
        let mut i = 0;
        while i < gw.conns.len() {
            let mut closed = false;
            if let Some((conn_id, conn)) = gw.conns.get_mut(i) {
                let conn_id = *conn_id;
                let end = conn.fill_ready();
                loop {
                    match conn.take_frame() {
                        Ok(Some(frame)) => {
                            // Clients speak Submit only; anything else
                            // (or a malformed payload) is a confused or
                            // hostile peer — drop the connection.
                            if frame.kind != FrameKind::Submit {
                                closed = true;
                                break;
                            }
                            let Ok((client, tx)) = parse_submit(&frame.payload) else {
                                closed = true;
                                break;
                            };
                            let seq = frame.seq;
                            gw.owner.insert(client, conn_id);
                            if gw.pipe.push_intake(ClientSubmit { client, seq, tx }) {
                                ticked = true;
                            } else {
                                // Intake full: refuse straight from the
                                // reactor — external load must never
                                // grow node memory without bound.
                                let pending = gw.pipe.intake_len() as u64;
                                let reason = NackReason::Backpressure {
                                    pending,
                                    capacity: INTAKE_CAP as u64,
                                };
                                let body = submit_nack_payload(client, &reason);
                                if let Ok(bytes) =
                                    encode_frame(FrameKind::SubmitNack, seq, 0, &body)
                                {
                                    conn.queue(&bytes);
                                }
                                let label = reason.label();
                                self.obs.emit_at(self.clock.now_us(), self.me, || {
                                    ObsEvent::GatewayNacked { client, seq, reason: label }
                                });
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            closed = true;
                            break;
                        }
                    }
                }
                conn.compact_in();
                if !closed && !conn.flush() {
                    closed = true;
                }
                if !closed && !matches!(end, FillEnd::Open) {
                    closed = true;
                }
            }
            if closed {
                gw.conns.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Completion notices go back to the submitting client's most
        // recent connection; notices for vanished clients are dropped
        // (the client re-learns its state by resubmitting).
        for notice in gw.pipe.drain_notices() {
            let (client, bytes) = match notice {
                GatewayNotice::Committed { client, seq } => {
                    let body = submit_ok_payload(client);
                    (client, encode_frame(FrameKind::SubmitOk, seq, 0, &body))
                }
                GatewayNotice::Rejected { client, seq, reason } => {
                    let body = submit_nack_payload(client, &reason);
                    (client, encode_frame(FrameKind::SubmitNack, seq, 0, &body))
                }
            };
            let Ok(bytes) = bytes else { continue };
            let Some(conn_id) = gw.owner.get(&client).copied() else { continue };
            if let Some((_, conn)) = gw.conns.iter_mut().find(|(id, _)| *id == conn_id) {
                conn.queue(&bytes);
                let _ = conn.flush();
            }
        }
        let live: Vec<u64> = gw.conns.iter().map(|(id, _)| *id).collect();
        gw.owner.retain(|_, conn_id| live.contains(conn_id));
        if ticked {
            let _ = self.inbox.send(Ctrl::Tick);
        }
    }

    /// Parks in `poll(2)` until the earliest deadline, a socket turns
    /// ready, or the wake channel is written — then distributes the
    /// returned `revents` as readiness flags, so the next pass issues
    /// read/accept syscalls only where poll saw something. A poll error
    /// degrades to flagging everything (one wasted `WouldBlock` per
    /// descriptor, same as the pre-readiness behaviour).
    fn sleep(&mut self, deadline_ms: u64) {
        let mut fds: Vec<poll::PollFd> = Vec::new();
        let mut targets: Vec<PollTarget> = Vec::new();
        if let Some(sock) = &self.wake_rx {
            fds.push(poll::PollFd::new(sock.as_raw_fd(), poll::POLLIN));
            targets.push(PollTarget::Wake);
        }
        if let Some(listener) = &self.listener {
            fds.push(poll::PollFd::new(listener.as_raw_fd(), poll::POLLIN));
            targets.push(PollTarget::Listener);
        }
        for (i, c) in self.inbound.iter().enumerate() {
            if let Some(fd) = c.conn.poll_fd() {
                fds.push(fd);
                targets.push(PollTarget::Inbound(i));
            }
        }
        for (i, link) in self.links.iter().enumerate() {
            if let Some(fd) = link.conn.as_ref().and_then(BufConn::poll_fd) {
                fds.push(fd);
                targets.push(PollTarget::Link(i));
            }
        }
        if let Some(gw) = &self.gateway {
            fds.push(poll::PollFd::new(gw.listener.as_raw_fd(), poll::POLLIN));
            targets.push(PollTarget::GwListener);
            for (i, (_, conn)) in gw.conns.iter().enumerate() {
                if let Some(fd) = conn.poll_fd() {
                    fds.push(fd);
                    targets.push(PollTarget::GwConn(i));
                }
            }
        }
        let now = self.clock.now_ms();
        let wait = deadline_ms.saturating_sub(now).clamp(1, POLL_CAP_MS) as i32;
        match poll::poll(&mut fds, wait) {
            Ok(0) => {}
            Ok(_) => {
                for (fd, target) in fds.iter().zip(&targets) {
                    if fd.readable() || fd.failed() {
                        self.flag_ready(*target);
                    }
                }
            }
            Err(_) => {
                for target in &targets {
                    self.flag_ready(*target);
                }
            }
        }
    }

    /// Arms the readiness flag behind one poll-set entry. The index-based
    /// targets are valid because nothing mutates the connection vectors
    /// between building the poll set and distributing its results.
    fn flag_ready(&mut self, target: PollTarget) {
        match target {
            PollTarget::Wake => self.wake_ready = true,
            PollTarget::Listener => self.listener_ready = true,
            PollTarget::Inbound(i) => {
                if let Some(c) = self.inbound.get_mut(i) {
                    c.conn.mark_ready();
                }
            }
            PollTarget::Link(i) => {
                if let Some(conn) = self.links.get_mut(i).and_then(|l| l.conn.as_mut()) {
                    conn.mark_ready();
                }
            }
            PollTarget::GwListener => {
                if let Some(gw) = self.gateway.as_mut() {
                    gw.listener_ready = true;
                }
            }
            PollTarget::GwConn(i) => {
                if let Some((_, conn)) = self.gateway.as_mut().and_then(|gw| gw.conns.get_mut(i)) {
                    conn.mark_ready();
                }
            }
        }
    }
}

// ---- the driver entry point -----------------------------------------------

/// Runs the cluster under the reactor driver. Mirrors the thread
/// driver's scaffolding (inboxes, monitor, teardown, report) with the
/// per-link threads replaced by one reactor thread per node.
pub(crate) fn run<M, O>(
    mut rt: NetRuntime<M, O>,
    bound: Vec<TcpListener>,
    addrs: Vec<SocketAddr>,
    gateways: Vec<Option<(TcpListener, GatewayPipe)>>,
) -> RuntimeReport<O>
where
    M: Codec + Clone + fmt::Debug + Send + Sync + 'static,
    O: Clone + fmt::Debug + PartialEq + Send + 'static,
{
    let n = rt.n;
    let clock = Clock::new();
    let obs = rt.obs.clone();
    let secret = rt.secret;
    let backoff = rt.backoff;
    let timeout = rt.timeout;
    let addr_table = Arc::new(Mutex::new(addrs));

    let (inbox_txs, inbox_rxs): InboxChannels<M> = (0..n).map(|_| mpsc::channel()).unzip();

    // Per-link frame queues: senders fan out from each node's actor,
    // receivers land in the owning node's reactor.
    let mut link_txs: Vec<Vec<Option<Sender<FrameBody>>>> = Vec::with_capacity(n);
    let mut link_rx_rows: Vec<Vec<(usize, Receiver<FrameBody>)>> = Vec::with_capacity(n);
    for from in 0..n {
        let mut tx_row = Vec::with_capacity(n);
        let mut rx_row = Vec::new();
        for to in 0..n {
            if to == from {
                tx_row.push(None);
            } else {
                let (tx, rx) = mpsc::channel();
                tx_row.push(Some(tx));
                rx_row.push((to, rx));
            }
        }
        link_txs.push(tx_row);
        link_rx_rows.push(rx_row);
    }

    let outputs: Arc<Mutex<BTreeMap<NodeId, O>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let ledger = PanicLedger::default();

    let correct: Vec<NodeId> = rt
        .procs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.as_ref().is_some_and(|(_, faulty)| !faulty))
        .map(|(i, _)| NodeId::new(i))
        .collect();

    let mut restart_specs: BTreeMap<usize, RestartSpec<M, O>> = BTreeMap::new();
    for spec in rt.restarts.drain(..) {
        restart_specs.insert(spec.node.index(), spec);
    }

    // One wake channel per node; failure degrades to capped poll sleeps.
    let mut wake_rxs: Vec<Option<TcpStream>> = Vec::with_capacity(n);
    let mut wakers: Vec<ReactorWaker> = Vec::with_capacity(n);
    for _ in 0..n {
        match wake_pair() {
            Some((rx, waker)) => {
                wake_rxs.push(Some(rx));
                wakers.push(waker);
            }
            None => {
                wake_rxs.push(None);
                wakers.push(ReactorWaker::disconnected());
            }
        }
    }

    let mut fronts: Vec<Option<GatewayFront>> = Vec::with_capacity(n);
    for (j, slot) in gateways.into_iter().enumerate() {
        match slot {
            Some((listener, pipe)) => {
                pipe.set_waker(wakers.get(j).cloned().unwrap_or_else(ReactorWaker::disconnected));
                fronts.push(Some(GatewayFront {
                    listener,
                    listener_ready: true,
                    pipe,
                    conns: Vec::new(),
                    next_conn_id: 0,
                    owner: BTreeMap::new(),
                }));
            }
            None => fronts.push(None),
        }
    }

    let mut timed_out = false;
    std::thread::scope(|scope| {
        // Reactor threads: one per node, owning every socket the node
        // touches.
        let per_node = bound.into_iter().zip(link_rx_rows).zip(wake_rxs).zip(fronts);
        for (j, (((listener, rx_row), wake_rx), front)) in per_node.enumerate() {
            let me = NodeId::new(j);
            let links: Vec<LinkState> = rx_row
                .into_iter()
                .map(|(to, rx)| {
                    let peer = NodeId::new(to);
                    LinkState::new(me, peer, rx, rt.chaos.link(me, peer))
                })
                .collect();
            let Some(inbox) = inbox_txs.get(j).cloned() else { continue };
            let node: NodeReactor<M> = NodeReactor {
                me,
                n,
                clock,
                obs: obs.clone(),
                secret,
                backoff,
                shutdown: Arc::clone(&shutdown),
                addr_table: Arc::clone(&addr_table),
                inbox,
                listener: Some(listener),
                listener_ready: true,
                bounce: rt.bounces.iter().copied().find(|b| b.node == me),
                rebind_at_ms: None,
                wake_rx,
                wake_ready: true,
                links,
                inbound: Vec::new(),
                expected: BTreeMap::new(),
                gateway: front,
            };
            let ledger = ledger.clone();
            scope.spawn(move || supervised(&ledger, "reactor", || node.run()));
        }

        // Actor threads — identical to the thread driver, except the
        // fan-out wakes this node's reactor after enqueueing frames.
        for (idx, (slot, rx)) in rt.procs.iter_mut().zip(inbox_rxs).enumerate() {
            let Some((mut proc_, _)) = slot.take() else { continue };
            let Some(self_tx) = inbox_txs.get(idx).cloned() else { continue };
            let links = LinkFanout {
                txs: link_txs.get_mut(idx).map(std::mem::take).unwrap_or_default(),
                waker: wakers.get(idx).cloned(),
            };
            let outputs = Arc::clone(&outputs);
            let obs = obs.clone();
            let restart = restart_specs.remove(&idx);
            let ledger = ledger.clone();
            scope.spawn(move || {
                supervised(&ledger, "actor", || {
                    actor_loop(&mut proc_, rx, &self_tx, &links, &outputs, &obs, clock, restart);
                });
            });
        }

        // Completion monitor: poll until all correct nodes decided or
        // the timeout fires, then tear everything down.
        loop {
            obs.set_now(clock.now_us());
            {
                let outs = locked(&outputs);
                if correct.iter().all(|id| outs.contains_key(id)) {
                    break;
                }
            }
            if clock.elapsed() > timeout {
                timed_out = true;
                break;
            }
            sleep_ms(1);
        }
        shutdown.store(true, Ordering::Relaxed);
        for tx in &inbox_txs {
            let _ = tx.send(Ctrl::Stop);
        }
        // Wake every reactor so the ≤10ms poll sleeps cut short; no
        // socket severing is needed — nothing blocks on I/O.
        for waker in &wakers {
            waker.wake();
        }
    });

    let outputs = Arc::try_unwrap(outputs)
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .unwrap_or_else(|arc| locked(&arc).clone());
    let poisoned = ledger.finish(&obs);
    RuntimeReport { outputs, correct, timed_out, elapsed: clock.elapsed(), poisoned }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pair_wakes_poll() {
        let Some((rx, waker)) = wake_pair() else {
            return; // environment without loopback — nothing to test
        };
        let mut fds = [poll::PollFd::new(rx.as_raw_fd(), poll::POLLIN)];
        let idle = poll::poll(&mut fds, 0).unwrap_or(usize::MAX);
        assert_eq!(idle, 0, "fresh wake channel must be silent");
        waker.wake();
        let woke = poll::poll(&mut fds, 1000).unwrap_or(0);
        assert_eq!(woke, 1, "wake() must make the read end readable");
        assert!(fds.iter().all(poll::PollFd::readable));
    }

    #[test]
    fn disconnected_waker_is_inert() {
        let waker = ReactorWaker::disconnected();
        waker.wake(); // must not panic
        assert_eq!(format!("{waker:?}"), "ReactorWaker(connected=false)");
    }

    #[test]
    fn bufconn_flush_and_fill_round_trip() {
        let Some(listener) = TcpListener::bind(("127.0.0.1", 0)).ok() else { return };
        let Some(addr) = listener.local_addr().ok() else { return };
        let Some(dialer) = TcpStream::connect(addr).ok() else { return };
        let Some((accepted, _)) = listener.accept().ok() else { return };
        let Some(mut a) = BufConn::new(dialer).ok() else { return };
        let Some(mut b) = BufConn::new(accepted).ok() else { return };

        a.queue(b"hello reactor");
        assert!(a.pending_out());
        assert!(a.flush());
        assert!(!a.pending_out());

        // Loopback delivery is fast but asynchronous; poll for arrival.
        for _ in 0..1000 {
            if b.fill() == FillEnd::Open && !b.inbuf.is_empty() {
                break;
            }
            sleep_ms(1);
        }
        assert_eq!(b.inbuf, b"hello reactor");

        drop(a);
        let mut end = FillEnd::Open;
        for _ in 0..1000 {
            b.inbuf.clear();
            end = b.fill();
            if end != FillEnd::Open {
                break;
            }
            sleep_ms(1);
        }
        assert_eq!(end, FillEnd::Eof, "dropping the peer must surface as EOF");
        assert_eq!(b.fill(), FillEnd::Eof, "EOF is sticky");
        assert!(b.poll_fd().is_none(), "an EOF conn with nothing to write leaves the poll set");
    }
}
