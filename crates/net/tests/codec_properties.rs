//! Wire-codec properties: encode→decode identity for every protocol
//! message shape, decode-never-panics under mutation/truncation, and
//! golden byte vectors pinning the exact on-wire encoding (a change to
//! any of these is a wire-format break and must bump `frame::VERSION`).

use bft_ec::Fragment;
use bft_net::codec::Codec;
use bft_net::{
    encode_frame, fnv1a64, DecodeError, Frame, FrameKind, PayloadTooLarge, FRAME_OVERHEAD,
    MAX_PAYLOAD,
};
use bft_rbc::{RbcMessage, RbcMuxMessage};
use bft_types::{NodeId, Round, Step, Value};
use bracha::{StepPayload, StepTag, Wire};
use proptest::prelude::*;

/// Builds a `Wire` value from flat proptest-friendly integers.
fn wire_from(
    sender: usize,
    round: u64,
    step: u8,
    phase: u8,
    payload: u8,
    bit: u8,
    flag: bool,
) -> Wire {
    let step = match step % 3 {
        0 => Step::Initial,
        1 => Step::Echo,
        _ => Step::Ready,
    };
    let value = Value::from_bit(bit % 2);
    let body = match payload % 3 {
        0 => StepPayload::Initial(value),
        1 => StepPayload::Echo(value),
        _ => StepPayload::Ready { value, flagged: flag },
    };
    let msg = match phase % 3 {
        0 => RbcMessage::Send(body),
        1 => RbcMessage::Echo(body),
        _ => RbcMessage::Ready(body),
    };
    Wire { sender: NodeId::new(sender), tag: StepTag::new(Round::new(round.max(1)), step), msg }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Every encodable consensus message decodes back to itself.
    #[test]
    fn wire_round_trips(
        sender in 0usize..64,
        round in 1u64..10_000,
        step in 0u8..3,
        phase in 0u8..3,
        payload in 0u8..3,
        bit in 0u8..2,
        flag in proptest::bool::ANY,
    ) {
        let wire = wire_from(sender, round, step, phase, payload, bit, flag);
        let bytes = wire.to_bytes();
        let back = Wire::from_bytes(&bytes);
        prop_assert_eq!(back, Ok(wire));
    }

    /// The same identity holds through a full frame (header + checksum).
    #[test]
    fn framed_wire_round_trips(
        sender in 0usize..64,
        round in 1u64..10_000,
        seq in 1u64..1_000_000,
        phase in 0u8..3,
        bit in 0u8..2,
    ) {
        let wire = wire_from(sender, round, 2, phase, 2, bit, true);
        let framed = encode_frame(FrameKind::Msg, seq, seq ^ 0xAB84, &wire.to_bytes()).unwrap();
        let frame = Frame::decode(&framed);
        prop_assert!(frame.is_ok());
        let frame = frame.unwrap_or_else(|_| Frame::new(FrameKind::Msg, 0, Vec::new()));
        prop_assert_eq!(frame.seq, seq);
        prop_assert_eq!(frame.trace, seq ^ 0xAB84);
        prop_assert_eq!(Wire::from_bytes(&frame.payload), Ok(wire));
    }

    /// Decoding arbitrary garbage must return an error, never panic and
    /// never silently succeed beyond what the checksum makes negligible.
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(0u8..=255, 0..128)) {
        let _ = Frame::decode(&bytes);
        let _ = Wire::from_bytes(&bytes);
    }

    /// Single-byte corruption of a valid frame is always *detected*: the
    /// decoder returns a typed error (usually `Checksum`), never a panic
    /// and never the original message.
    #[test]
    fn mutated_frames_are_rejected(
        round in 1u64..1000,
        bit in 0u8..2,
        pos_pick in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let wire = wire_from(1, round, 1, 1, 1, bit, false);
        let mut framed = encode_frame(FrameKind::Msg, 7, 0, &wire.to_bytes()).unwrap();
        let pos = pos_pick % framed.len();
        framed[pos] ^= flip;
        match Frame::decode(&framed) {
            Err(_) => {}
            Ok(frame) => {
                // A corrupted frame that still passes the checksum would
                // need an FNV collision; flag it loudly if it ever shows.
                prop_assert!(
                    frame.payload != wire.to_bytes() || frame.seq != 7,
                    "single-byte corruption went entirely undetected"
                );
            }
        }
    }

    /// Every truncation of a valid frame fails cleanly with a typed
    /// error (prefixes of a frame are never themselves a valid frame).
    #[test]
    fn truncated_frames_are_rejected(round in 1u64..1000, cut in 0usize..4096) {
        let wire = wire_from(2, round, 0, 0, 0, 1, false);
        let framed = encode_frame(FrameKind::Msg, 3, 0, &wire.to_bytes()).unwrap();
        let keep = cut % framed.len(); // strictly shorter than the frame
        prop_assert!(Frame::decode(&framed[..keep]).is_err());
    }
}

proptest! {
    // Fewer cases: each exercises the 1 MiB boundary with real payloads.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Encode/decode limit symmetry: `encode_frame` succeeds exactly when
    /// the payload fits `MAX_PAYLOAD`, and everything it emits decodes —
    /// no frame a sender can produce is rejected for size by a receiver.
    #[test]
    fn encode_decode_limits_are_symmetric(delta in -4i64..=4, seq in 0u64..1_000) {
        let len = (MAX_PAYLOAD as i64 + delta) as usize;
        let payload = vec![0xA5u8; len];
        match encode_frame(FrameKind::Msg, seq, 0, &payload) {
            Ok(framed) => {
                prop_assert!(len <= MAX_PAYLOAD as usize);
                let back = Frame::decode(&framed);
                prop_assert_eq!(back, Ok(Frame::new(FrameKind::Msg, seq, payload)));
            }
            Err(PayloadTooLarge { len: reported }) => {
                prop_assert!(len > MAX_PAYLOAD as usize);
                prop_assert_eq!(reported, len);
            }
        }
    }
}

/// Regression: `encode_frame` used to write `payload.len() as u32`
/// unchecked, emitting frames every receiver rejects as `Oversize` —
/// and, past `u32::MAX`, silently corrupting the length field.
#[test]
fn oversize_payload_is_a_typed_encode_error() {
    let payload = vec![0u8; MAX_PAYLOAD as usize + 1];
    assert_eq!(
        encode_frame(FrameKind::Msg, 1, 0, &payload),
        Err(PayloadTooLarge { len: MAX_PAYLOAD as usize + 1 })
    );
    // The cap itself is still encodable, and decodes back.
    let exact = vec![7u8; MAX_PAYLOAD as usize];
    let framed = encode_frame(FrameKind::Msg, 2, 0, &exact).unwrap();
    assert_eq!(Frame::decode(&framed), Ok(Frame::new(FrameKind::Msg, 2, exact)));
}

/// The golden vector: byte-exact encoding of one representative message.
/// `FRAME_OVERHEAD` bytes of framing around a 17-byte consensus payload.
#[test]
fn golden_wire_encoding() {
    let wire = Wire {
        sender: NodeId::new(3),
        tag: StepTag::new(Round::new(2), Step::Ready),
        msg: RbcMessage::Echo(StepPayload::Ready { value: Value::One, flagged: true }),
    };
    #[rustfmt::skip]
    let expected = vec![
        3, 0, 0, 0,             // sender: NodeId 3, u32 LE
        2, 0, 0, 0, 0, 0, 0, 0, // tag.round: u64 LE
        2,                      // tag.step: Ready
        1,                      // RbcMessage discriminant: Echo
        2,                      // StepPayload discriminant: Ready
        1,                      // value bit: One
        1,                      // flagged: true
    ];
    assert_eq!(wire.to_bytes(), expected);
    assert_eq!(Wire::from_bytes(&expected), Ok(wire));
}

/// The same payload inside a frame, with pinned header and checksum.
#[test]
fn golden_frame_encoding() {
    let wire = Wire {
        sender: NodeId::new(3),
        tag: StepTag::new(Round::new(2), Step::Ready),
        msg: RbcMessage::Echo(StepPayload::Ready { value: Value::One, flagged: true }),
    };
    let framed = encode_frame(FrameKind::Msg, 1, 0, &wire.to_bytes()).unwrap();
    assert_eq!(framed.len(), FRAME_OVERHEAD + 17);
    #[rustfmt::skip]
    let expected_header = [
        0x84, 0xAB,             // magic 0xAB84, LE
        0x02,                   // version 2
        0x04,                   // kind Msg
        1, 0, 0, 0, 0, 0, 0, 0, // seq 1, u64 LE
        25, 0, 0, 0,            // body length (8-byte trace hint + payload), u32 LE
        0, 0, 0, 0, 0, 0, 0, 0, // trace hint 0 (untraced), u64 LE
    ];
    assert_eq!(framed[..24], expected_header);
    let trailer = u64::from_le_bytes(framed[framed.len() - 8..].try_into().unwrap());
    assert_eq!(trailer, 0x43b6_52cb_9b85_d35e, "pinned FNV-1a checksum");
    assert_eq!(trailer, fnv1a64(&framed[..framed.len() - 8]));
}

/// An empty Hello frame is the smallest possible frame; pin it whole.
#[test]
fn golden_empty_hello_frame() {
    let framed = encode_frame(FrameKind::Hello, 0, 0, &[]).unwrap();
    #[rustfmt::skip]
    let expected = vec![
        0x84, 0xAB, 0x02, 0x01,
        0, 0, 0, 0, 0, 0, 0, 0,
        8, 0, 0, 0,             // body = just the 8-byte trace hint
        0, 0, 0, 0, 0, 0, 0, 0, // trace hint 0
        0x75, 0x46, 0xb3, 0x80, 0xcb, 0x57, 0x0e, 0xd6, // FNV-1a of header+body, LE
    ];
    assert_eq!(framed, expected);
    let decoded = Frame::decode(&framed);
    assert_eq!(decoded, Ok(Frame::new(FrameKind::Hello, 0, Vec::new())));
}

/// Golden vector for the erasure-coded broadcast phases, on the batch
/// wire type the ordering layer uses (`RbcMuxMessage<u64, Vec<u8>>`):
/// discriminants 3/4/5 follow Send/Echo/Ready, the root rides first, and
/// fragments carry index, total length, shard bytes, and proof path.
#[test]
fn golden_coded_wire_encoding() {
    let msg: RbcMuxMessage<u64, Vec<u8>> = RbcMuxMessage {
        sender: NodeId::new(1),
        tag: 7,
        msg: RbcMessage::CodedEcho {
            root: 0x1122_3344_5566_7788,
            fragment: Fragment {
                index: 2,
                total_len: 5,
                shard: vec![0xAA, 0xBB],
                proof: vec![0x0102_0304_0506_0708],
            },
        },
    };
    #[rustfmt::skip]
    let expected = vec![
        1, 0, 0, 0,             // sender: NodeId 1, u32 LE
        7, 0, 0, 0, 0, 0, 0, 0, // tag: epoch 7, u64 LE
        4,                      // RbcMessage discriminant: CodedEcho
        0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // root, u64 LE
        2, 0,                   // fragment.index, u16 LE
        5, 0, 0, 0,             // fragment.total_len, u32 LE
        2, 0, 0, 0,             // shard length, u32 LE
        0xAA, 0xBB,             // shard bytes
        1, 0,                   // proof path length, u16 LE
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // proof[0], u64 LE
    ];
    assert_eq!(msg.to_bytes(), expected);
    assert_eq!(RbcMuxMessage::<u64, Vec<u8>>::from_bytes(&expected), Ok(msg));
}

/// `CodedSend` and `CodedReady` discriminants, pinned.
#[test]
fn golden_coded_send_and_ready_discriminants() {
    let send: RbcMessage<Vec<u8>> = RbcMessage::CodedSend {
        root: 1,
        fragment: Fragment { index: 0, total_len: 1, shard: vec![9], proof: Vec::new() },
    };
    #[rustfmt::skip]
    assert_eq!(send.to_bytes(), vec![
        3,                      // discriminant: CodedSend
        1, 0, 0, 0, 0, 0, 0, 0, // root
        0, 0,                   // index
        1, 0, 0, 0,             // total_len
        1, 0, 0, 0,             // shard length
        9,                      // shard
        0, 0,                   // empty proof
    ]);
    let ready: RbcMessage<Vec<u8>> = RbcMessage::CodedReady { root: 0xFF };
    assert_eq!(ready.to_bytes(), vec![5, 0xFF, 0, 0, 0, 0, 0, 0, 0]);
    assert_eq!(RbcMessage::<Vec<u8>>::from_bytes(&send.to_bytes()), Ok(send));
    assert_eq!(RbcMessage::<Vec<u8>>::from_bytes(&ready.to_bytes()), Ok(ready));
}

/// A hostile proof-length prefix is rejected before any allocation.
#[test]
fn oversized_fragment_proof_is_rejected() {
    let mut bytes = Vec::new();
    RbcMessage::<Vec<u8>>::CodedReady { root: 0 }.encode(&mut bytes);
    // Rewrite into a CodedSend whose fragment claims 65535 proof hashes.
    let mut evil = vec![3u8];
    evil.extend_from_slice(&bytes[1..]); // root
    evil.extend_from_slice(&[0, 0]); // index
    evil.extend_from_slice(&[1, 0, 0, 0]); // total_len
    evil.extend_from_slice(&[0, 0, 0, 0]); // empty shard
    evil.extend_from_slice(&[0xFF, 0xFF]); // proof length 65535
    assert!(matches!(
        RbcMessage::<Vec<u8>>::from_bytes(&evil),
        Err(DecodeError::Invalid { what: "fragment proof length", .. })
    ));
}

/// The version-1 golden bytes (the pre-trace wire format) must keep
/// decoding: a v2 node accepts frames from a v1 peer, reading a zero
/// (untraced) hint.
#[test]
fn golden_v1_frames_still_decode() {
    #[rustfmt::skip]
    let v1_hello = vec![
        0x84, 0xAB, 0x01, 0x01,
        0, 0, 0, 0, 0, 0, 0, 0,
        0, 0, 0, 0,
        0x7e, 0xad, 0x9c, 0x35, 0xe8, 0x24, 0x37, 0x30, // FNV-1a of the header, LE
    ];
    let decoded = Frame::decode(&v1_hello);
    assert_eq!(decoded, Ok(Frame::new(FrameKind::Hello, 0, Vec::new())));
    assert_eq!(decoded.map(|f| f.trace), Ok(0));
}

/// Strictness corners the property tests may not hit: rounds are
/// 1-based, value bits are 0/1 only, and trailing bytes are rejected.
#[test]
fn strict_decode_corners() {
    // Round 0 is invalid on the wire (Round::new would panic on it).
    let mut zero_round = Vec::new();
    NodeId::new(0).encode(&mut zero_round);
    zero_round.extend_from_slice(&[0u8; 8]); // round 0
    zero_round.extend_from_slice(&[0, 0, 0, 0]); // step/discr/discr/bit
    assert!(matches!(Wire::from_bytes(&zero_round), Err(DecodeError::Invalid { .. })));

    // A value bit outside {0, 1} is invalid.
    let good = Wire {
        sender: NodeId::new(0),
        tag: StepTag::new(Round::new(1), Step::Initial),
        msg: RbcMessage::Send(StepPayload::Initial(Value::Zero)),
    };
    let mut bytes = good.to_bytes();
    let last = bytes.len() - 1;
    bytes[last] = 2;
    assert!(matches!(Wire::from_bytes(&bytes), Err(DecodeError::Invalid { .. })));

    // Trailing bytes after a complete message are an error.
    let mut padded = good.to_bytes();
    padded.push(0);
    assert!(matches!(Wire::from_bytes(&padded), Err(DecodeError::Trailing { .. })));
}
