//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Supports the API surface this workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`). Instead of
//! criterion's statistical machinery it runs each body a small fixed
//! number of iterations and prints the mean wall-clock time — enough to
//! spot order-of-magnitude regressions and to keep `cargo bench` /
//! `cargo test --benches` compiling and running offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark case within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; `iter` times the body.
pub struct Bencher {
    iterations: u32,
}

impl Bencher {
    /// Runs `body` for the configured number of iterations, timing it.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // One warm-up, then timed iterations.
        black_box(body());
        let started = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        let mean = started.elapsed() / self.iterations.max(1);
        print!(" {mean:?}/iter");
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    iterations: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-case sample count (scaled down in this shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u32).clamp(1, 20);
        self
    }

    /// Runs one benchmark case parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        print!("bench {}/{}:", self.name, id);
        let mut bencher = Bencher { iterations: self.iterations };
        body(&mut bencher, input);
        println!();
        self
    }

    /// Runs one unparameterized benchmark case.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        print!("bench {}/{}:", self.name, id);
        let mut bencher = Bencher { iterations: self.iterations };
        body(&mut bencher);
        println!();
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmark cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iterations: 10, _parent: self }
    }

    /// Runs one standalone benchmark case.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        print!("bench {name}:");
        let mut bencher = Bencher { iterations: 10 };
        body(&mut bencher);
        println!();
        self
    }
}

/// Declares a benchmark group: a function list runnable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
                b.iter(|| ran += n);
            });
            group.finish();
        }
        assert!(ran > 0);
    }
}
