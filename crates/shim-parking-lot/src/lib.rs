//! Offline stand-in for the `parking_lot` crate: `Mutex` and `RwLock`
//! with the parking_lot API shape (no poisoning, guards returned
//! directly), implemented over `std::sync`.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails (poisoning is
/// swallowed, as in parking_lot).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
