//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `rand` cannot be fetched. Protocol correctness here only
//! needs *deterministic, seedable, well-mixed* pseudo-randomness — not the
//! exact ChaCha key stream — so this shim reimplements the trait surface
//! (`RngCore`, `Rng`, `SeedableRng`) over splitmix64/xoshiro256**.
//!
//! Everything is API-compatible with the subset of `rand` 0.8 the
//! workspace calls: `gen`, `gen_range` (half-open and inclusive integer
//! ranges, float ranges), `gen_bool`, `gen_ratio`, `seed_from_u64`,
//! `from_seed`.

#![forbid(unsafe_code)]

/// The low-level generator interface: a source of raw random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed, expanding it with
    /// splitmix64 (the expansion the real `rand` uses as well).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from their whole domain with
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above one");
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// splitmix64 — used for seed expansion and as a small fast generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a 64-bit state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse generator behind the shimmed `StdRng` and
/// `ChaCha8Rng` types.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates the generator from four non-all-zero state words.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // Mix through splitmix so that low-entropy seeds still produce
        // well-distributed states.
        let mut sm = SplitMix64::new(s[0] ^ s[1].rotate_left(17) ^ s[2].rotate_left(31) ^ s[3]);
        for slot in &mut s {
            *slot ^= sm.next_u64();
        }
        Xoshiro256::from_state(s)
    }
}

/// Standard generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::Xoshiro256 as StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_determinism() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = Xoshiro256::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u64 = rng.gen_range(2..=9);
            assert!((2..=9).contains(&y));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_and_ratio_are_roughly_calibrated() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 10)).count();
        assert!((700..1_300).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
