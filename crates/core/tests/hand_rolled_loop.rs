//! A hand-rolled event loop (independent of `bft-sim`) driving full
//! clusters to decision — a second, structurally different harness that
//! once caught a validation deadlock at n = 6 (plain Ready messages
//! whose value must be justified against the *Initial* set, not the
//! Echo set).
use bft_coin::LocalCoin;
use bft_types::{Config, NodeId, Process, Value};
use bracha::{BrachaOptions, BrachaProcess, Wire};
use rand::Rng;
use rand_chacha::{rand_core::SeedableRng, ChaCha8Rng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-heap entry: delivery (time, seq) plus (from, to); payloads live in
/// a side table keyed by seq.
type HeapEntry = (Reverse<(u64, u64)>, usize, usize);
type EventHeap = BinaryHeap<HeapEntry>;

#[test]
fn clusters_decide_under_hand_rolled_loop() {
    for (n, seed) in [(4usize, 0u64), (5, 1), (6, 0), (6, 7), (7, 2), (9, 3), (10, 4)] {
        let cfg = Config::max_resilience(n).unwrap();
        let mut procs: Vec<BrachaProcess<LocalCoin>> = cfg
            .nodes()
            .map(|id| {
                let input = if id.index() < n / 2 { Value::One } else { Value::Zero };
                BrachaProcess::new(
                    cfg,
                    id,
                    input,
                    LocalCoin::new(seed, id),
                    BrachaOptions::default(),
                )
            })
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut heap: EventHeap = BinaryHeap::new();
        let mut payloads: std::collections::HashMap<u64, Wire> = std::collections::HashMap::new();
        let mut seq = 0u64;
        let mut link_clock = vec![0u64; n * n];
        #[allow(clippy::too_many_arguments)]
        fn push(
            n: usize,
            from: usize,
            effects: Vec<bft_types::Effect<Wire, Value>>,
            now: u64,
            heap: &mut EventHeap,
            payloads: &mut std::collections::HashMap<u64, Wire>,
            rng: &mut ChaCha8Rng,
            seq: &mut u64,
            link_clock: &mut [u64],
        ) {
            for e in effects {
                if let bft_types::Effect::Broadcast { msg } = e {
                    for to in 0..n {
                        let d: u64 = rng.gen_range(1..=20);
                        let at = (now + d).max(link_clock[from * n + to]);
                        link_clock[from * n + to] = at;
                        *seq += 1;
                        payloads.insert(*seq, msg.clone());
                        heap.push((Reverse((at, *seq)), from, to));
                    }
                }
            }
        }
        for (i, proc_) in procs.iter_mut().enumerate() {
            let effs = proc_.on_start();
            push(n, i, effs, 0, &mut heap, &mut payloads, &mut rng, &mut seq, &mut link_clock);
        }
        while let Some((Reverse((t, s)), from, to)) = heap.pop() {
            let msg = payloads.remove(&s).unwrap();
            let effs = procs[to].on_message(NodeId::new(from), &msg);
            push(n, to, effs, t, &mut heap, &mut payloads, &mut rng, &mut seq, &mut link_clock);
            if procs.iter().all(|p| p.output().is_some()) {
                break;
            }
        }
        let decisions: Vec<Option<Value>> = procs.iter().map(|p| p.output()).collect();
        assert!(decisions.iter().all(|d| d.is_some()), "n={n} seed={seed}: stalled: {decisions:?}");
        let first = decisions[0];
        assert!(
            decisions.iter().all(|d| *d == first),
            "n={n} seed={seed}: disagreement: {decisions:?}"
        );
    }
}
