//! Message validation — the second key idea of Bracha's paper.
//!
//! Reliable broadcast stops a Byzantine node from *equivocating*, but not
//! from *lying*: it can still broadcast a single well-formed payload whose
//! value no correct node could ever have computed (e.g. an `Echo(1)` when
//! every correct node echoed `0`). Bracha's validation discipline closes
//! this gap: a received payload is **accepted** (validated) only when the
//! receiver can exhibit a quorum-sized set `S` of *previously validated*
//! messages of the preceding step under which a correct node could have
//! produced that payload. Together with reliable broadcast this reduces
//! Byzantine behaviour to omission at the protocol level — the crux of the
//! resilience proof.
//!
//! Concretely, with `q = n − f`, `m = ⌊n/2⌋ + 1` and binary values:
//!
//! * `Initial(1, v)` — always legal.
//! * `Initial(k+1, v)` — legal iff there is a `q`-subset `S` of the
//!   receiver's validated `Ready(k)` messages from which the step-3 rule
//!   could produce `v`: either `S` has at least `f + 1` D-flags on `v`
//!   ("forced"), or `S` has at most `f` D-flags on every value (the coin
//!   makes any `v` possible).
//! * `Echo(k, u)` — legal iff some `q`-subset of validated `Initial(k)`
//!   messages has `u` as a (weak) majority, i.e. at least `⌈q/2⌉` copies.
//! * `Ready(k, u, D)` — legal iff some `q`-subset of validated `Echo(k)`
//!   messages contains more than `n/2` copies of `u`.
//! * `Ready(k, u, ¬D)` — legal iff some `q`-subset of validated `Echo(k)`
//!   messages has `u` as a weak majority *without* any value exceeding
//!   `n/2` (otherwise a correct sender would have flagged).
//!
//! All predicates are existential over subsets of a growing set, hence
//! *monotone*: once legal, always legal. The [`Validator`] therefore
//! buffers illegal-so-far payloads and re-examines them whenever a new
//! message of the preceding step is validated, cascading across steps and
//! rounds until a fixpoint.
//!
//! Because messages are multiset-like (only value/flag matter, senders are
//! distinct), each existential check reduces to count arithmetic; the
//! property tests at the bottom verify every predicate against brute-force
//! subset enumeration.
//!
//! # Incremental evaluation
//!
//! Legality depends only on `(round, step, value, flag)` — there are just
//! eight payload *kinds* per round — and it is monotone, so the validator
//! caches one legality bit per kind and never re-derives a bit that is
//! already set. Sender dedup is a [`NodeBitset`] probe instead of a list
//! scan, and the pending buffer is woken by a dirty flag per `(round,
//! step)` that is raised exactly when the counts feeding that step's
//! predicates change (validating an `Initial` dirties the round's `Echo`
//! and `Ready` checks; an `Echo` dirties `Ready`; a `Ready` dirties the
//! *next* round's `Initial`). A drain pass therefore touches only the
//! `(round, step)` cells whose verdicts can actually have changed, and
//! releases every newly legal pending message in one batch.
//!
//! Crucially, validating a message of step `S` never alters the legality
//! of step `S` in the same round (each predicate reads only *other*
//! steps), so the batch release emits exactly the same sequence as the
//! one-at-a-time first-legal scan it replaces — arrival order within a
//! step, steps in protocol order, cascades restarting from the ingest
//! round. The `incremental_matches_reference_scan` property test pins
//! this equivalence against a transliteration of the original algorithm.

use crate::StepPayload;
use bft_types::{Config, NodeBitset, NodeId, Round, Step, Value};
use std::collections::BTreeMap;

/// Per-value counters for one step's validated messages.
#[derive(Clone, Copy, Debug, Default)]
struct ValueCounts {
    /// Non-flagged messages carrying each value (all Initial/Echo
    /// messages, plus non-D Ready messages).
    plain: [usize; 2],
    /// D-flagged Ready messages carrying each value.
    flagged: [usize; 2],
}

impl ValueCounts {
    fn total(&self) -> usize {
        let [p0, p1] = self.plain;
        let [d0, d1] = self.flagged;
        p0 + p1 + d0 + d1
    }

    fn have(&self, v: Value) -> usize {
        self.plain[v.index()] + self.flagged[v.index()]
    }

    fn record(&mut self, payload: &StepPayload) {
        match payload {
            StepPayload::Ready { value, flagged: true } => self.flagged[value.index()] += 1,
            p => self.plain[p.value().index()] += 1,
        }
    }
}

/// Number of distinct payload kinds per step (value, plus the D-flag for
/// Ready). Kind indices: `value.index()` for Initial/Echo;
/// `value.index() | flagged << 1` for Ready.
const KINDS: [usize; 3] = [2, 2, 4];

/// The kind index of a payload within its step (see [`KINDS`]).
fn kind_index(payload: &StepPayload) -> usize {
    match *payload {
        StepPayload::Initial(v) | StepPayload::Echo(v) => v.index(),
        StepPayload::Ready { value, flagged } => value.index() | (usize::from(flagged) << 1),
    }
}

/// State of one round at one node.
#[derive(Clone, Debug)]
struct RoundState {
    /// Validated messages per step, in validation (arrival) order.
    validated: [Vec<(NodeId, StepPayload)>; 3],
    /// Senders already ingested per step (defence in depth; the RBC mux
    /// already delivers at most once per instance).
    seen: [NodeBitset; 3],
    /// Count summaries per step.
    counts: [ValueCounts; 3],
    /// Payloads delivered but not yet legal, per step, in arrival order.
    pending: [Vec<(NodeId, StepPayload)>; 3],
    /// Cached legality verdicts, one bit per kind per step. Legality is
    /// monotone, so a set bit is never cleared or re-derived.
    legal: [u8; 3],
    /// Whether the inputs of this step's legality predicates (or its
    /// pending buffer) changed since the last scan.
    dirty: [bool; 3],
}

impl RoundState {
    fn new(n: usize) -> Self {
        RoundState {
            validated: Default::default(),
            seen: [NodeBitset::new(n), NodeBitset::new(n), NodeBitset::new(n)],
            counts: Default::default(),
            pending: Default::default(),
            legal: [0; 3],
            dirty: [false; 3],
        }
    }
}

/// A newly validated message, as reported by [`Validator::ingest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidatedMsg {
    /// The round the message belongs to.
    pub round: Round,
    /// The originating node (the RBC designated sender).
    pub from: NodeId,
    /// The validated payload.
    pub payload: StepPayload,
}

/// The validation engine of one node.
///
/// Feed every reliably-delivered `(round, origin, payload)` triple to
/// [`Validator::ingest`]; read quorum progress with
/// [`Validator::validated`].
///
/// # Example
///
/// ```
/// use bft_types::{Config, NodeId, Round, Value};
/// use bracha::validation::Validator;
/// use bracha::StepPayload;
///
/// # fn main() -> Result<(), bft_types::ConfigError> {
/// let mut val = Validator::new(Config::new(4, 1)?, true);
/// // First-round Initial messages are always legal.
/// let newly = val.ingest(Round::FIRST, NodeId::new(1), StepPayload::Initial(Value::One));
/// assert_eq!(newly.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Validator {
    config: Config,
    /// When false, every payload is accepted immediately (the T8 ablation:
    /// reliable broadcast without validation).
    enforce: bool,
    rounds: BTreeMap<Round, RoundState>,
}

impl Validator {
    /// Creates a validator. `enforce = false` disables legality checking
    /// (every payload validates immediately) for ablation experiments.
    pub fn new(config: Config, enforce: bool) -> Self {
        Validator { config, enforce, rounds: BTreeMap::new() }
    }

    /// The validated messages of `(round, step)`, in validation order.
    pub fn validated(&self, round: Round, step: Step) -> &[(NodeId, StepPayload)] {
        self.rounds.get(&round).map(|r| r.validated[step.index()].as_slice()).unwrap_or(&[])
    }

    /// Number of payloads currently buffered as delivered-but-not-legal in
    /// `round` (all steps). Diagnostic hook for experiments.
    pub fn pending_count(&self, round: Round) -> usize {
        self.rounds.get(&round).map(|r| r.pending.iter().map(Vec::len).sum()).unwrap_or(0)
    }

    /// Ingests a reliably-delivered payload from `from` for `round`.
    ///
    /// Returns every message that *became validated* as a consequence —
    /// the ingested one (if legal now) plus any buffered messages unlocked
    /// by the cascade, across steps and rounds, in validation order.
    ///
    /// Duplicate `(round, step, sender)` triples are ignored (the RBC
    /// layer already guarantees at-most-once per instance; this is defence
    /// in depth against a buggy host).
    pub fn ingest(
        &mut self,
        round: Round,
        from: NodeId,
        payload: StepPayload,
    ) -> Vec<ValidatedMsg> {
        if !self.config.contains(from) {
            return Vec::new();
        }
        let step = payload.step();
        let n = self.config.n();
        let state = self.rounds.entry(round).or_insert_with(|| RoundState::new(n));
        if !state.seen[step.index()].insert(from) {
            return Vec::new();
        }
        state.pending[step.index()].push((from, payload));
        state.dirty[step.index()] = true;
        self.drain(round)
    }

    /// Re-examines pending payloads starting at `round`, cascading
    /// forward, until a fixpoint.
    ///
    /// Only `(round, step)` cells whose dirty flag is raised are scanned;
    /// everywhere else the no-new-legal-pending invariant already holds,
    /// so skipping them emits nothing — exactly like the exhaustive scan
    /// this replaces.
    fn drain(&mut self, start: Round) -> Vec<ValidatedMsg> {
        let mut out = Vec::new();
        let mut round = start;
        loop {
            let mut progressed = false;
            for step in Step::ALL {
                progressed |= self.scan(round, step, &mut out);
            }
            if progressed {
                // New validations may unlock the *next* round's pending
                // Initials; restart the scan there, then come back if that
                // cascades further (rounds before `start` can never be
                // affected — legality only looks backward).
                round = start;
                continue;
            }
            // Advance to the next round that has any state, skipping gaps
            // (a Byzantine node may send messages for far-future rounds).
            let max = self.max_round();
            let mut next = round.next();
            while next <= max && !self.rounds.contains_key(&next) {
                next = next.next();
            }
            if next <= max {
                round = next;
            } else {
                break;
            }
        }
        out
    }

    /// Releases every pending message of `(round, step)` whose kind is
    /// legal, in arrival order, refreshing the cached legality bits first.
    /// Returns whether anything was released.
    ///
    /// Validating a message never changes the legality of its *own*
    /// `(round, step)` (each predicate reads counts of other steps only),
    /// so a single batch pass emits the same sequence as repeatedly
    /// extracting the first legal message.
    fn scan(&mut self, round: Round, step: Step, out: &mut Vec<ValidatedMsg>) -> bool {
        let s = step.index();
        {
            let Some(state) = self.rounds.get_mut(&round) else { return false };
            if !state.dirty[s] {
                return false;
            }
            state.dirty[s] = false;
            if state.pending[s].is_empty() {
                return false;
            }
        }
        let mask = if self.enforce {
            let mut mask = self.rounds[&round].legal[s];
            for kind in 0..KINDS[s] {
                if mask & (1 << kind) == 0 && self.kind_legal(round, step, kind) {
                    mask |= 1 << kind;
                }
            }
            // The state was present above and `kind_legal` only reads;
            // degrade to "nothing released" if it ever goes missing.
            let Some(state) = self.rounds.get_mut(&round) else { return false };
            state.legal[s] = mask;
            mask
        } else {
            u8::MAX
        };
        if mask == 0 {
            return false;
        }

        let Some(state) = self.rounds.get_mut(&round) else { return false };
        let before = out.len();
        let mut kept = Vec::new();
        for (from, payload) in std::mem::take(&mut state.pending[s]) {
            if mask & (1 << kind_index(&payload)) != 0 {
                state.counts[s].record(&payload);
                state.validated[s].push((from, payload));
                out.push(ValidatedMsg { round, from, payload });
            } else {
                kept.push((from, payload));
            }
        }
        state.pending[s] = kept;
        if out.len() == before {
            return false;
        }

        // The released messages changed this step's counts; raise the
        // dirty flag everywhere those counts feed a legality predicate.
        match step {
            Step::Initial => {
                state.dirty[Step::Echo.index()] = true;
                state.dirty[Step::Ready.index()] = true;
            }
            Step::Echo => state.dirty[Step::Ready.index()] = true,
            Step::Ready => {
                if let Some(next) = self.rounds.get_mut(&round.next()) {
                    next.dirty[Step::Initial.index()] = true;
                }
            }
        }
        true
    }

    fn max_round(&self) -> Round {
        self.rounds.keys().next_back().copied().unwrap_or(Round::FIRST)
    }

    /// Whether kind `kind` of `step` (see [`kind_index`]) is legal in
    /// `round` given the currently validated messages.
    fn kind_legal(&self, round: Round, step: Step, kind: usize) -> bool {
        let value = Value::from_bit((kind & 1) as u8);
        match step {
            Step::Initial => self.legal_initial(round, value),
            Step::Echo => self.legal_echo(round, value),
            Step::Ready => self.legal_ready(round, value, kind & 2 != 0),
        }
    }

    /// `Initial(k, v)`: legal in round 1; otherwise justified by a
    /// `q`-subset of the previous round's validated Ready messages.
    fn legal_initial(&self, round: Round, v: Value) -> bool {
        let Some(prev) = round.prev() else { return true };
        let Some(state) = self.rounds.get(&prev) else { return false };
        let c = &state.counts[Step::Ready.index()];
        let q = self.config.quorum();
        let f = self.config.f();
        let d_v = c.flagged[v.index()];
        let d_o = c.flagged[v.flipped().index()];
        let [p0, p1] = c.plain;
        let plain = p0 + p1;

        // Forced: a subset with ≥ f+1 D-flags on v adopts (or decides) v.
        let forced = d_v >= self.config.ready_threshold() && c.total() >= q;
        // Coin: a subset with ≤ f D-flags on every value flips a coin, so
        // any v is possible.
        let coin = d_v.min(f) + d_o.min(f) + plain >= q;
        forced || coin
    }

    /// `Echo(k, u)`: justified by a `q`-subset of validated `Initial(k)`
    /// messages in which `u` is a weak majority (`≥ ⌈q/2⌉` copies).
    fn legal_echo(&self, round: Round, u: Value) -> bool {
        let Some(state) = self.rounds.get(&round) else { return false };
        let c = &state.counts[Step::Initial.index()];
        let q = self.config.quorum();
        c.have(u) >= q.div_ceil(2) && c.total() >= q
    }

    /// `Ready(k, u, flagged)`.
    ///
    /// * Flagged: the sender claims `u` exceeded `n/2` in its Echo quorum
    ///   — justified by a `q`-subset of validated `Echo(k)` messages with
    ///   at least `m = ⌊n/2⌋ + 1` copies of `u`.
    /// * Not flagged: the carried value is the sender's *step-1* value
    ///   (the Echo step leaves the estimate untouched when nothing
    ///   locks), so two separate conditions apply — the value `u` must be
    ///   a possible Initial-quorum majority (same predicate as
    ///   [`Validator::legal_echo`]), and there must be a `q`-subset of
    ///   validated `Echo(k)` messages in which *no* value exceeds `n/2`
    ///   (otherwise a correct sender would have flagged).
    fn legal_ready(&self, round: Round, u: Value, flagged: bool) -> bool {
        let Some(state) = self.rounds.get(&round) else { return false };
        let echo = &state.counts[Step::Echo.index()];
        let q = self.config.quorum();
        let m = self.config.majority_threshold();
        if flagged {
            return echo.have(u) >= m && echo.total() >= q;
        }
        // (a) value justified by the Initial set.
        if !self.legal_echo(round, u) {
            return false;
        }
        // (b) "nothing locked" justified by the Echo set: a q-subset with
        // every per-value count ≤ m − 1 exists iff the capped counts can
        // fill q slots.
        echo.have(Value::Zero).min(m - 1) + echo.have(Value::One).min(m - 1) >= q
    }

    /// Drops all state for rounds strictly before `round` — garbage
    /// collection for long runs.
    ///
    /// Note: legality of `Initial(k+1)` consults round `k`, so only prune
    /// rounds the host has fully left behind (at least two behind the
    /// current round).
    pub fn prune_before(&mut self, round: Round) {
        self.rounds.retain(|r, _| *r >= round);
    }

    /// Number of rounds with live state.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(n: usize, f: usize) -> Config {
        Config::new(n, f).unwrap()
    }

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    const R1: Round = Round::FIRST;

    fn r2() -> Round {
        Round::FIRST.next()
    }

    #[test]
    fn round_one_initials_always_validate() {
        let mut val = Validator::new(cfg(4, 1), true);
        for i in 0..4 {
            let v = if i % 2 == 0 { Value::Zero } else { Value::One };
            let newly = val.ingest(R1, nid(i), StepPayload::Initial(v));
            assert_eq!(newly.len(), 1, "initial from n{i} must validate immediately");
        }
        assert_eq!(val.validated(R1, Step::Initial).len(), 4);
    }

    #[test]
    fn duplicate_sender_per_step_is_ignored() {
        let mut val = Validator::new(cfg(4, 1), true);
        assert_eq!(val.ingest(R1, nid(0), StepPayload::Initial(Value::One)).len(), 1);
        assert!(val.ingest(R1, nid(0), StepPayload::Initial(Value::Zero)).is_empty());
        assert_eq!(val.validated(R1, Step::Initial).len(), 1);
    }

    #[test]
    fn echo_requires_quorum_of_initials_supporting_it() {
        // n=4, f=1, q=3, ⌈q/2⌉ = 2.
        let mut val = Validator::new(cfg(4, 1), true);
        // Echo(1) arrives before any Initial: buffered.
        assert!(val.ingest(R1, nid(3), StepPayload::Echo(Value::One)).is_empty());
        assert_eq!(val.pending_count(R1), 1);

        let _ = val.ingest(R1, nid(0), StepPayload::Initial(Value::One));
        let _ = val.ingest(R1, nid(1), StepPayload::Initial(Value::Zero));
        // Two initials so far (1 one, 1 zero): total < q, still pending.
        assert_eq!(val.validated(R1, Step::Echo).len(), 0);

        // Third initial gives total = q = 3 and have(1) = 2 ≥ 2 → cascade.
        let newly = val.ingest(R1, nid(2), StepPayload::Initial(Value::One));
        assert_eq!(newly.len(), 2, "initial + unlocked echo");
        assert_eq!(val.validated(R1, Step::Echo).len(), 1);
        assert_eq!(val.pending_count(R1), 0);
    }

    #[test]
    fn echo_for_unsupported_value_stays_pending() {
        // All correct initials are One; a lone faulty Initial(Zero) cannot
        // legitimise Echo(Zero): have(0) = 1 < ⌈q/2⌉ = 2.
        let mut val = Validator::new(cfg(4, 1), true);
        for i in 0..3 {
            let _ = val.ingest(R1, nid(i), StepPayload::Initial(Value::One));
        }
        let _ = val.ingest(R1, nid(3), StepPayload::Initial(Value::Zero));
        assert!(val.ingest(R1, nid(3), StepPayload::Echo(Value::Zero)).is_empty());
        assert_eq!(val.pending_count(R1), 1);
        // …while Echo(One) validates fine.
        assert_eq!(val.ingest(R1, nid(0), StepPayload::Echo(Value::One)).len(), 1);
    }

    #[test]
    fn flagged_ready_needs_majority_of_echoes() {
        // n=4: m = 3. Three Echo(One) → Ready(One, D) legal.
        let mut val = Validator::new(cfg(4, 1), true);
        for i in 0..3 {
            let _ = val.ingest(R1, nid(i), StepPayload::Initial(Value::One));
        }
        for i in 0..2 {
            let _ = val.ingest(R1, nid(i), StepPayload::Echo(Value::One));
        }
        // Only 2 echoes: flagged ready pending (needs have ≥ 3).
        assert!(val
            .ingest(R1, nid(0), StepPayload::Ready { value: Value::One, flagged: true })
            .is_empty());
        let newly = val.ingest(R1, nid(2), StepPayload::Echo(Value::One));
        // Echo + unlocked flagged Ready.
        assert_eq!(newly.len(), 2);
    }

    #[test]
    fn unflagged_ready_illegal_under_unanimous_echoes() {
        // The unanimity lemma: when every validated Echo carries One, a
        // correct node must flag, so Ready(·, ¬D) must not validate.
        let mut val = Validator::new(cfg(4, 1), true);
        for i in 0..4 {
            let _ = val.ingest(R1, nid(i), StepPayload::Initial(Value::One));
        }
        for i in 0..4 {
            let _ = val.ingest(R1, nid(i), StepPayload::Echo(Value::One));
        }
        assert!(val
            .ingest(R1, nid(3), StepPayload::Ready { value: Value::One, flagged: false })
            .is_empty());
        assert!(val
            .ingest(R1, nid(2), StepPayload::Ready { value: Value::Zero, flagged: false })
            .is_empty());
        assert_eq!(val.pending_count(R1), 2);
    }

    #[test]
    fn unflagged_ready_legal_under_split_echoes() {
        // n=7, f=2, q=5, m=4. Initials 4×One + 3×Zero (both values are
        // possible step-1 majorities); echoes 3×One + 2×Zero (no value
        // can reach m=4 in any 5-subset). Plain Readys for both values
        // are therefore legal; a flagged Ready is not.
        let mut val = Validator::new(cfg(7, 2), true);
        for i in 0..4 {
            let _ = val.ingest(R1, nid(i), StepPayload::Initial(Value::One));
        }
        for i in 4..7 {
            let _ = val.ingest(R1, nid(i), StepPayload::Initial(Value::Zero));
        }
        for i in 0..3 {
            let _ = val.ingest(R1, nid(i), StepPayload::Echo(Value::One));
        }
        for i in 3..5 {
            let _ = val.ingest(R1, nid(i), StepPayload::Echo(Value::Zero));
        }
        let newly =
            val.ingest(R1, nid(5), StepPayload::Ready { value: Value::One, flagged: false });
        assert_eq!(newly.len(), 1);
        let newly =
            val.ingest(R1, nid(6), StepPayload::Ready { value: Value::Zero, flagged: false });
        assert_eq!(newly.len(), 1);
        // No value reached an echo majority, so a D-flag is a forgery.
        assert!(val
            .ingest(R1, nid(0), StepPayload::Ready { value: Value::One, flagged: true })
            .is_empty());
    }

    #[test]
    fn unflagged_ready_value_must_be_a_possible_initial_majority() {
        // n=7: initials 6×One + 1×Zero. Zero can never be a weak
        // majority of a 5-subset of initials (at most 1 of 5), so a plain
        // Ready(0) is unjustifiable even though the echo set is split
        // enough for plain Readys in general.
        let mut val = Validator::new(cfg(7, 2), true);
        for i in 0..6 {
            let _ = val.ingest(R1, nid(i), StepPayload::Initial(Value::One));
        }
        let _ = val.ingest(R1, nid(6), StepPayload::Initial(Value::Zero));
        assert!(val
            .ingest(R1, nid(6), StepPayload::Ready { value: Value::Zero, flagged: false })
            .is_empty());
        assert_eq!(val.pending_count(R1), 1);
    }

    #[test]
    fn next_round_initial_forced_by_d_flags() {
        // n=4, f=1: two D(One) readys (≥ f+1) with a third ready (total ≥ q)
        // force Initial(r2, One) and keep the coin impossible → Initial(r2,
        // Zero) illegal.
        let mut val = Validator::new(cfg(4, 1), true);
        for i in 0..4 {
            let _ = val.ingest(R1, nid(i), StepPayload::Initial(Value::One));
        }
        for i in 0..4 {
            let _ = val.ingest(R1, nid(i), StepPayload::Echo(Value::One));
        }
        for i in 0..3 {
            let _ = val.ingest(R1, nid(i), StepPayload::Ready { value: Value::One, flagged: true });
        }
        assert_eq!(
            val.ingest(r2(), nid(0), StepPayload::Initial(Value::One)).len(),
            1,
            "forced value must validate"
        );
        assert!(
            val.ingest(r2(), nid(3), StepPayload::Initial(Value::Zero)).is_empty(),
            "contrary value must stay pending"
        );
    }

    #[test]
    fn next_round_initial_free_when_coin_possible() {
        // n=4, f=1: three plain readys → any next-round initial is legal.
        let mut val = Validator::new(cfg(7, 2), true);
        for i in 0..7 {
            let v = if i < 4 { Value::One } else { Value::Zero };
            let _ = val.ingest(R1, nid(i), StepPayload::Initial(v));
        }
        for i in 0..3 {
            let _ = val.ingest(R1, nid(i), StepPayload::Echo(Value::One));
        }
        for i in 3..5 {
            let _ = val.ingest(R1, nid(i), StepPayload::Echo(Value::Zero));
        }
        for i in 0..5 {
            let _ =
                val.ingest(R1, nid(i), StepPayload::Ready { value: Value::One, flagged: false });
        }
        assert_eq!(val.ingest(r2(), nid(0), StepPayload::Initial(Value::One)).len(), 1);
        assert_eq!(val.ingest(r2(), nid(1), StepPayload::Initial(Value::Zero)).len(), 1);
    }

    #[test]
    fn cascade_spans_rounds() {
        // Deliver everything out of order: round-2 messages first, then
        // round-1; one final round-1 ingest must unlock the whole chain.
        let mut val = Validator::new(cfg(4, 1), true);
        let r2 = r2();
        assert!(val.ingest(r2, nid(0), StepPayload::Initial(Value::One)).is_empty());
        assert!(val.ingest(r2, nid(1), StepPayload::Initial(Value::One)).is_empty());

        for i in 0..4 {
            let _ = val.ingest(R1, nid(i), StepPayload::Initial(Value::One));
        }
        for i in 0..4 {
            let _ = val.ingest(R1, nid(i), StepPayload::Echo(Value::One));
        }
        let _ = val.ingest(R1, nid(0), StepPayload::Ready { value: Value::One, flagged: true });
        let _ = val.ingest(R1, nid(1), StepPayload::Ready { value: Value::One, flagged: true });
        let newly = val.ingest(R1, nid(2), StepPayload::Ready { value: Value::One, flagged: true });
        // The third D-ready validates AND unlocks both round-2 initials.
        assert_eq!(newly.len(), 3);
        assert_eq!(val.validated(r2, Step::Initial).len(), 2);
    }

    #[test]
    fn enforcement_off_validates_everything_instantly() {
        let mut val = Validator::new(cfg(4, 1), false);
        let newly =
            val.ingest(r2(), nid(0), StepPayload::Ready { value: Value::Zero, flagged: true });
        assert_eq!(newly.len(), 1);
    }

    #[test]
    fn prune_drops_old_rounds() {
        let mut val = Validator::new(cfg(4, 1), true);
        let _ = val.ingest(R1, nid(0), StepPayload::Initial(Value::One));
        let _ = val.ingest(r2(), nid(0), StepPayload::Initial(Value::One));
        assert_eq!(val.round_count(), 2);
        val.prune_before(r2());
        assert_eq!(val.round_count(), 1);
        assert!(val.validated(R1, Step::Initial).is_empty());
    }

    /// A transliteration of the pre-incremental validator: linear `seen`
    /// scans, no cached verdicts, and a drain that repeatedly extracts the
    /// *first* pending message whose payload is legal right now. Serves as
    /// the reference oracle for `incremental_matches_reference_scan`.
    #[derive(Clone, Debug, Default)]
    struct ReferenceRound {
        validated: [Vec<(NodeId, StepPayload)>; 3],
        seen: [Vec<NodeId>; 3],
        counts: [ValueCounts; 3],
        pending: [Vec<(NodeId, StepPayload)>; 3],
    }

    struct ReferenceValidator {
        config: Config,
        enforce: bool,
        rounds: BTreeMap<Round, ReferenceRound>,
    }

    impl ReferenceValidator {
        fn new(config: Config, enforce: bool) -> Self {
            ReferenceValidator { config, enforce, rounds: BTreeMap::new() }
        }

        fn validated(&self, round: Round, step: Step) -> &[(NodeId, StepPayload)] {
            self.rounds.get(&round).map(|r| r.validated[step.index()].as_slice()).unwrap_or(&[])
        }

        fn pending_count(&self, round: Round) -> usize {
            self.rounds.get(&round).map(|r| r.pending.iter().map(Vec::len).sum()).unwrap_or(0)
        }

        fn ingest(
            &mut self,
            round: Round,
            from: NodeId,
            payload: StepPayload,
        ) -> Vec<ValidatedMsg> {
            if !self.config.contains(from) {
                return Vec::new();
            }
            let step = payload.step();
            let state = self.rounds.entry(round).or_default();
            if state.seen[step.index()].contains(&from) {
                return Vec::new();
            }
            state.seen[step.index()].push(from);
            state.pending[step.index()].push((from, payload));
            self.drain(round)
        }

        fn drain(&mut self, start: Round) -> Vec<ValidatedMsg> {
            let mut out = Vec::new();
            let mut round = start;
            loop {
                let mut progressed = false;
                for step in Step::ALL {
                    while let Some(state) = self.rounds.get(&round) {
                        let idx = state.pending[step.index()]
                            .iter()
                            .position(|(_, p)| self.is_legal(round, p));
                        let Some(idx) = idx else { break };
                        let state = self.rounds.get_mut(&round).expect("state exists");
                        let (from, payload) = state.pending[step.index()].remove(idx);
                        state.counts[step.index()].record(&payload);
                        state.validated[step.index()].push((from, payload));
                        out.push(ValidatedMsg { round, from, payload });
                        progressed = true;
                    }
                }
                if progressed {
                    round = start;
                    continue;
                }
                let max = self.rounds.keys().next_back().copied().unwrap_or(Round::FIRST);
                let mut next = round.next();
                while next <= max && !self.rounds.contains_key(&next) {
                    next = next.next();
                }
                if next <= max {
                    round = next;
                } else {
                    break;
                }
            }
            out
        }

        fn is_legal(&self, round: Round, payload: &StepPayload) -> bool {
            if !self.enforce {
                return true;
            }
            let q = self.config.quorum();
            match *payload {
                StepPayload::Initial(v) => {
                    let Some(prev) = round.prev() else { return true };
                    let Some(state) = self.rounds.get(&prev) else { return false };
                    let c = &state.counts[Step::Ready.index()];
                    let f = self.config.f();
                    let d_v = c.flagged[v.index()];
                    let d_o = c.flagged[v.flipped().index()];
                    let plain = c.plain[0] + c.plain[1];
                    (d_v >= f + 1 && c.total() >= q) || d_v.min(f) + d_o.min(f) + plain >= q
                }
                StepPayload::Echo(v) => self.echo_legal(round, v),
                StepPayload::Ready { value, flagged } => {
                    let Some(state) = self.rounds.get(&round) else { return false };
                    let echo = &state.counts[Step::Echo.index()];
                    let m = self.config.majority_threshold();
                    if flagged {
                        return echo.have(value) >= m && echo.total() >= q;
                    }
                    self.echo_legal(round, value)
                        && echo.have(Value::Zero).min(m - 1) + echo.have(Value::One).min(m - 1) >= q
                }
            }
        }

        fn echo_legal(&self, round: Round, u: Value) -> bool {
            let Some(state) = self.rounds.get(&round) else { return false };
            let c = &state.counts[Step::Initial.index()];
            let q = self.config.quorum();
            c.have(u) >= q.div_ceil(2) && c.total() >= q
        }
    }

    // ---- brute-force cross-checks of the legality predicates ----

    /// A message for the brute-force model: (value index, flagged).
    type Msg = (usize, bool);

    /// Enumerates all q-subsets of `msgs` and returns whether any
    /// satisfies `pred` over (count of value-0, count of value-1,
    /// d-count-0, d-count-1).
    fn exists_subset(
        msgs: &[Msg],
        q: usize,
        pred: impl Fn(usize, usize, usize, usize) -> bool,
    ) -> bool {
        let n = msgs.len();
        if n < q {
            return false;
        }
        // Iterate over bitmasks with exactly q bits (n ≤ 12 in tests).
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != q {
                continue;
            }
            let (mut c0, mut c1, mut d0, mut d1) = (0, 0, 0, 0);
            for (i, &(v, fl)) in msgs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    if v == 0 {
                        c0 += 1;
                        if fl {
                            d0 += 1;
                        }
                    } else {
                        c1 += 1;
                        if fl {
                            d1 += 1;
                        }
                    }
                }
            }
            if pred(c0, c1, d0, d1) {
                return true;
            }
        }
        false
    }

    /// Builds a validator whose round-1 step `step` contains exactly
    /// `msgs` as validated messages (bypassing legality by toggling
    /// enforcement while loading).
    fn loaded_validator(config: Config, step: Step, msgs: &[Msg]) -> Validator {
        let mut val = Validator::new(config, false);
        for (i, &(v, fl)) in msgs.iter().enumerate() {
            let value = Value::from_bit(v as u8);
            let payload = match step {
                Step::Initial => StepPayload::Initial(value),
                Step::Echo => StepPayload::Echo(value),
                Step::Ready => StepPayload::Ready { value, flagged: fl },
            };
            let _ = val.ingest(R1, nid(i), payload);
        }
        val.enforce = true;
        val
    }

    fn arb_msgs(max_len: usize, with_flags: bool) -> impl Strategy<Value = Vec<Msg>> {
        proptest::collection::vec(
            (0usize..2, if with_flags { proptest::bool::ANY.boxed() } else { Just(false).boxed() }),
            0..max_len,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// `legal_echo` equals brute-force subset enumeration.
        #[test]
        fn echo_legality_matches_bruteforce(
            msgs in arb_msgs(10, false),
            n in 4usize..9,
        ) {
            let config = Config::max_resilience(n).unwrap();
            prop_assume!(msgs.len() <= n);
            let q = config.quorum();
            let val = loaded_validator(config, Step::Initial, &msgs);
            for v in Value::BOTH {
                let fast = val.legal_echo(R1, v);
                let slow = exists_subset(&msgs, q, |c0, c1, _, _| {
                    let cu = if v == Value::Zero { c0 } else { c1 };
                    cu >= q.div_ceil(2)
                });
                prop_assert_eq!(fast, slow, "echo({}) n={} msgs={:?}", v, n, msgs);
            }
        }

        /// `legal_ready` (both flag states) equals brute-force over the
        /// two relevant message sets (Initials for the carried value,
        /// Echoes for the lock condition).
        #[test]
        fn ready_legality_matches_bruteforce(
            initials in arb_msgs(8, false),
            echoes in arb_msgs(8, false),
            n in 4usize..9,
        ) {
            let config = Config::max_resilience(n).unwrap();
            prop_assume!(initials.len() <= n && echoes.len() <= n);
            let q = config.quorum();
            let m = config.majority_threshold();
            // Load both steps (enforcement off while loading).
            let mut val = Validator::new(config, false);
            for (i, &(v, _)) in initials.iter().enumerate() {
                let _ = val.ingest(R1, nid(i), StepPayload::Initial(Value::from_bit(v as u8)));
            }
            for (i, &(v, _)) in echoes.iter().enumerate() {
                let _ = val.ingest(R1, nid(i), StepPayload::Echo(Value::from_bit(v as u8)));
            }
            val.enforce = true;
            for v in Value::BOTH {
                for flagged in [false, true] {
                    let fast = val.legal_ready(R1, v, flagged);
                    let slow = if flagged {
                        exists_subset(&echoes, q, |c0, c1, _, _| {
                            let cu = if v == Value::Zero { c0 } else { c1 };
                            cu >= m
                        })
                    } else {
                        let value_ok = exists_subset(&initials, q, |c0, c1, _, _| {
                            let cu = if v == Value::Zero { c0 } else { c1 };
                            cu >= q.div_ceil(2)
                        });
                        let no_lock = exists_subset(&echoes, q, |c0, c1, _, _| {
                            c0 < m && c1 < m
                        });
                        value_ok && no_lock
                    };
                    prop_assert_eq!(
                        fast, slow,
                        "ready({}, {}) n={} initials={:?} echoes={:?}",
                        v, flagged, n, initials, echoes
                    );
                }
            }
        }

        /// `legal_initial` for round 2 equals brute-force over Ready
        /// messages of round 1.
        #[test]
        fn initial_legality_matches_bruteforce(
            msgs in arb_msgs(10, true),
            n in 4usize..9,
        ) {
            let config = Config::max_resilience(n).unwrap();
            prop_assume!(msgs.len() <= n);
            let q = config.quorum();
            let f = config.f();
            let val = loaded_validator(config, Step::Ready, &msgs);
            for v in Value::BOTH {
                let fast = val.legal_initial(r2(), v);
                let slow = exists_subset(&msgs, q, |_, _, d0, d1| {
                    let dv = if v == Value::Zero { d0 } else { d1 };
                    let forced = dv >= f + 1;
                    let coin = d0 <= f && d1 <= f;
                    forced || coin
                });
                prop_assert_eq!(fast, slow, "initial({}) n={} msgs={:?}", v, n, msgs);
            }
        }

        /// Confluence: the final validated set is independent of the
        /// ingestion order (the cascade always reaches the same fixpoint).
        /// This is what makes per-node validation well-defined despite
        /// adversarial delivery reordering.
        #[test]
        fn validation_is_order_independent(
            n in 4usize..8,
            // A batch of messages across two rounds and all steps, from
            // distinct (sender, round, step) slots.
            picks in proptest::collection::vec((0usize..8, 0u8..2, 0u8..2, 0u8..3, proptest::bool::ANY), 1..20),
            order_seed in 0u64..1000,
        ) {
            let config = Config::max_resilience(n).unwrap();
            // Deduplicate (round, step, sender) to respect the at-most-once
            // contract of the RBC layer.
            let mut seen = std::collections::HashSet::new();
            let mut msgs: Vec<(Round, NodeId, StepPayload)> = Vec::new();
            for (sender, round_sel, value, step_sel, flag) in picks {
                let sender = sender % n;
                let round = if round_sel == 0 { R1 } else { r2() };
                let value = Value::from_bit(value);
                let payload = match step_sel {
                    0 => StepPayload::Initial(value),
                    1 => StepPayload::Echo(value),
                    _ => StepPayload::Ready { value, flagged: flag },
                };
                if seen.insert((round, payload.step(), sender)) {
                    msgs.push((round, nid(sender), payload));
                }
            }

            // Reference order.
            let mut a = Validator::new(config, true);
            for &(round, from, payload) in &msgs {
                let _ = a.ingest(round, from, payload);
            }

            // Shuffled order (cheap LCG permutation).
            let mut shuffled = msgs.clone();
            let mut state = order_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for i in (1..shuffled.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
            let mut b = Validator::new(config, true);
            for &(round, from, payload) in &shuffled {
                let _ = b.ingest(round, from, payload);
            }

            for round in [R1, r2()] {
                for step in Step::ALL {
                    let mut va: Vec<_> = a.validated(round, step).to_vec();
                    let mut vb: Vec<_> = b.validated(round, step).to_vec();
                    va.sort_by_key(|&(id, _)| id);
                    vb.sort_by_key(|&(id, _)| id);
                    prop_assert_eq!(
                        va, vb,
                        "validated sets diverged at {}/{:?}", round, step
                    );
                }
            }
        }

        /// Differential oracle: the incremental validator (cached legality
        /// bits, bitset dedup, dirty-gated batch release) must emit the
        /// exact same sequence of validated messages, ingest by ingest, as
        /// a transliteration of the original one-at-a-time first-legal
        /// scan. This pins the order the observability tests depend on,
        /// not just the final sets.
        #[test]
        fn incremental_matches_reference_scan(
            n in 4usize..8,
            picks in proptest::collection::vec(
                (0usize..8, 0u8..3, 0u8..2, 0u8..3, proptest::bool::ANY),
                1..40,
            ),
            enforce in proptest::bool::ANY,
        ) {
            let config = Config::max_resilience(n).unwrap();
            let mut fast = Validator::new(config, enforce);
            let mut slow = ReferenceValidator::new(config, enforce);
            let mut seen = std::collections::HashSet::new();
            for (sender, round_sel, value, step_sel, flag) in picks {
                let sender = sender % n;
                let round = Round::new(u64::from(round_sel) + 1);
                let value = Value::from_bit(value);
                let payload = match step_sel {
                    0 => StepPayload::Initial(value),
                    1 => StepPayload::Echo(value),
                    _ => StepPayload::Ready { value, flagged: flag },
                };
                if !seen.insert((round, payload.step(), sender)) {
                    continue;
                }
                let a = fast.ingest(round, nid(sender), payload);
                let b = slow.ingest(round, nid(sender), payload);
                prop_assert_eq!(
                    &a, &b,
                    "emission sequence diverged at ({}, {:?}, n{})",
                    round, payload, sender
                );
            }
            for round in (1..=3).map(Round::new) {
                for step in Step::ALL {
                    prop_assert_eq!(
                        fast.validated(round, step),
                        slow.validated(round, step)
                    );
                }
                prop_assert_eq!(fast.pending_count(round), slow.pending_count(round));
            }
        }

        /// Validation is monotone: ingesting more messages never reduces
        /// the validated set.
        #[test]
        fn validation_is_monotone(
            seed_msgs in arb_msgs(8, true),
            extra in arb_msgs(4, true),
            n in 4usize..8,
        ) {
            let config = Config::max_resilience(n).unwrap();
            prop_assume!(seed_msgs.len() + extra.len() <= n);
            let mut val = Validator::new(config, true);
            let mut total_validated = 0usize;
            for (i, &(v, fl)) in seed_msgs.iter().chain(extra.iter()).enumerate() {
                let payload = StepPayload::Ready {
                    value: Value::from_bit(v as u8),
                    flagged: fl,
                };
                let newly = val.ingest(R1, nid(i), payload);
                total_validated += newly.len();
                // Counts reported must match stored state.
                let stored = val.validated(R1, Step::Ready).len();
                prop_assert_eq!(stored, total_validated);
            }
        }
    }
}
