//! Asynchronous Common Subset (ACS) — the bridge from Bracha's primitives
//! to modern asynchronous BFT.
//!
//! The calibration note for this reproduction ("basis of modern async
//! BFT; HoneyBadgerBFT implements variants") refers to exactly this
//! construction: HoneyBadgerBFT's core is `n` reliable broadcasts plus
//! `n` binary Byzantine agreements, both of which are Bracha's 1984
//! primitives. ACS lets `n` nodes agree on a *set* of at least `n − f`
//! proposals despite `f` Byzantine nodes:
//!
//! 1. Every node reliably broadcasts its proposal (one RBC instance per
//!    proposer).
//! 2. For each proposer `i` there is one binary agreement instance
//!    `ABA_i` deciding "is `i`'s proposal in the set?". A node inputs `1`
//!    to `ABA_i` when it delivers `i`'s RBC.
//! 3. Once `n − f` instances have decided `1`, the node inputs `0` to all
//!    instances it has not yet voted in (so the set closes).
//! 4. When every instance has decided, the output is the set of proposals
//!    whose instance decided `1` (waiting for any still-missing RBC
//!    deliveries — totality guarantees they arrive).
//!
//! Properties: all correct nodes output the same set; the set contains at
//! least `n − f` proposals; every proposal in the set was actually
//! broadcast by its proposer (RBC agreement).
//!
//! # Example
//!
//! ```
//! use bft_coin::CommonCoin;
//! use bft_sim::{UniformDelay, World, WorldConfig};
//! use bft_types::{Config, NodeId};
//! use bracha::acs::AcsProcess;
//!
//! # fn main() -> Result<(), bft_types::ConfigError> {
//! let cfg = Config::new(4, 1)?;
//! let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 5, 9));
//! for id in cfg.nodes() {
//!     let proposal = format!("tx-batch-from-{id}").into_bytes();
//!     let coins = (0..4).map(|i| CommonCoin::new(9, i as u64)).collect();
//!     world.add_process(Box::new(AcsProcess::new(cfg, id, proposal, coins)));
//! }
//! let report = world.run();
//! assert!(report.all_correct_decided());
//! assert!(report.agreement_holds());
//! // The agreed set contains at least n − f proposals.
//! let set = report.output_of(NodeId::new(0)).unwrap();
//! assert!(set.len() >= 3);
//! # Ok(())
//! # }
//! ```

use crate::{BrachaNode, BrachaOptions, Transition, Wire};
use bft_coin::CoinScheme;
use bft_obs::Obs;
use bft_rbc::{RbcMux, RbcMuxAction, RbcMuxMessage};
use bft_types::{Config, Effect, NodeId, Process, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The agreed set: `(proposer, proposal)` pairs, sorted by proposer.
pub type AcsOutput = Vec<(NodeId, Vec<u8>)>;

/// A wire message of the ACS protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AcsMessage {
    /// A reliable-broadcast message carrying a proposal. The RBC tag is
    /// unused (one instance per proposer), fixed to `0`.
    Proposal(RbcMuxMessage<u8, Vec<u8>>),
    /// A message of the binary agreement instance for proposer `index`.
    Aba {
        /// Which proposer's inclusion is being agreed on.
        index: usize,
        /// The inner Bracha-consensus wire message.
        wire: Wire,
    },
}

impl fmt::Display for AcsMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcsMessage::Proposal(m) => write!(f, "proposal from {}", m.sender),
            AcsMessage::Aba { index, .. } => write!(f, "aba[{index}]"),
        }
    }
}

/// One node of the ACS protocol, packaged as a [`Process`].
///
/// Internally: one [`RbcMux`] for the `n` proposal broadcasts and `n`
/// [`BrachaNode`] binary-agreement instances, one per proposer, each with
/// its own injected coin (use [`bft_coin::CommonCoin`] with the instance
/// index for constant expected latency).
#[derive(Clone, Debug)]
pub struct AcsProcess<C> {
    config: Config,
    me: NodeId,
    proposal: Option<Vec<u8>>,
    rbc: RbcMux<u8, Vec<u8>>,
    abas: Vec<BrachaNode<C>>,
    aba_started: Vec<bool>,
    delivered: BTreeMap<NodeId, Vec<u8>>,
    output: Option<AcsOutput>,
    output_emitted: bool,
    halted: bool,
}

impl<C: CoinScheme> AcsProcess<C> {
    /// Creates a participant proposing `proposal`.
    ///
    /// `coins` supplies the coin for each of the `n` agreement instances
    /// (index `i` decides proposer `i`'s inclusion).
    ///
    /// # Panics
    ///
    /// Panics if `coins.len() != config.n()`.
    pub fn new(config: Config, me: NodeId, proposal: Vec<u8>, coins: Vec<C>) -> Self {
        assert_eq!(coins.len(), config.n(), "one coin per agreement instance");
        let abas = coins
            .into_iter()
            .map(|coin| BrachaNode::new(config, me, coin, BrachaOptions::default()))
            .collect();
        AcsProcess {
            config,
            me,
            proposal: Some(proposal),
            rbc: RbcMux::new(config, me),
            abas,
            aba_started: vec![false; config.n()],
            delivered: BTreeMap::new(),
            output: None,
            output_emitted: false,
            halted: false,
        }
    }

    /// The agreed set, once computed.
    pub fn output(&self) -> Option<&AcsOutput> {
        self.output.as_ref()
    }

    /// Attaches an observer to the proposal-dissemination RBC layer.
    ///
    /// The `n` inner binary-agreement instances are deliberately not
    /// observed: they all share this node's id, so their per-round event
    /// streams would interleave indistinguishably (and their per-instance
    /// `Decided` events would read as consensus disagreements).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.rbc.set_obs(obs);
        self
    }

    /// Selects the reliable-broadcast implementation for proposal
    /// dissemination ([`bft_rbc::RbcKind::Coded`] cuts bytes-on-wire for
    /// large proposals). Call before the process starts.
    pub fn with_rbc_kind(mut self, kind: bft_rbc::RbcKind) -> Self {
        self.rbc.set_kind(kind);
        self
    }

    fn lift_rbc(
        actions: Vec<RbcMuxAction<u8, Vec<u8>>>,
        out: &mut Vec<Effect<AcsMessage, AcsOutput>>,
        delivered: &mut BTreeMap<NodeId, Vec<u8>>,
    ) {
        for a in actions {
            match a {
                RbcMuxAction::Broadcast(m) => {
                    out.push(Effect::Broadcast { msg: AcsMessage::Proposal(m) });
                }
                RbcMuxAction::Send { to, msg } => {
                    out.push(Effect::Send { to, msg: AcsMessage::Proposal(msg) });
                }
                RbcMuxAction::Deliver { sender, payload, .. } => {
                    delivered.entry(sender).or_insert(payload);
                }
            }
        }
    }

    fn lift_aba(
        index: usize,
        transitions: Vec<Transition>,
        out: &mut Vec<Effect<AcsMessage, AcsOutput>>,
    ) {
        for t in transitions {
            if let Transition::Broadcast(wire) = t {
                out.push(Effect::Broadcast { msg: AcsMessage::Aba { index, wire } });
            }
            // Decide/Halt are consumed internally via the node's getters.
        }
    }

    /// Drives the ACS wiring rules to a fixpoint.
    fn progress(&mut self, out: &mut Vec<Effect<AcsMessage, AcsOutput>>) {
        loop {
            let mut changed = false;

            // Rule 1: vote 1 for every delivered proposal.
            for i in 0..self.config.n() {
                if !self.aba_started[i] && self.delivered.contains_key(&NodeId::new(i)) {
                    self.aba_started[i] = true;
                    let ts = self.abas[i].start(Value::One);
                    Self::lift_aba(i, ts, out);
                    changed = true;
                }
            }

            // Rule 2: once n − f instances decided 1, vote 0 everywhere
            // else.
            let ones = self.abas.iter().filter(|a| a.decided() == Some(Value::One)).count();
            if ones >= self.config.quorum() {
                for i in 0..self.config.n() {
                    if !self.aba_started[i] {
                        self.aba_started[i] = true;
                        let ts = self.abas[i].start(Value::Zero);
                        Self::lift_aba(i, ts, out);
                        changed = true;
                    }
                }
            }

            // Rule 3: output when every instance has decided and every
            // accepted proposal has been delivered.
            if self.output.is_none() && self.abas.iter().all(|a| a.decided().is_some()) {
                let accepted: Vec<NodeId> = (0..self.config.n())
                    .filter(|&i| self.abas[i].decided() == Some(Value::One))
                    .map(NodeId::new)
                    .collect();
                if accepted.iter().all(|id| self.delivered.contains_key(id)) {
                    let set: AcsOutput =
                        accepted.into_iter().map(|id| (id, self.delivered[&id].clone())).collect();
                    self.output = Some(set);
                    changed = true;
                }
            }

            if let Some(set) = &self.output {
                if !self.output_emitted {
                    self.output_emitted = true;
                    out.push(Effect::Output(set.clone()));
                }
                // Halt once all agreement instances have wound down.
                if !self.halted && self.abas.iter().all(|a| a.is_halted()) {
                    self.halted = true;
                    out.push(Effect::Halt);
                }
            }

            if !changed {
                return;
            }
        }
    }
}

impl<C: CoinScheme> Process for AcsProcess<C> {
    type Msg = AcsMessage;
    type Output = AcsOutput;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self) -> Vec<Effect<AcsMessage, AcsOutput>> {
        let mut out = Vec::new();
        if let Some(p) = self.proposal.take() {
            let actions = self.rbc.broadcast(0, p);
            Self::lift_rbc(actions, &mut out, &mut self.delivered);
        }
        self.progress(&mut out);
        out
    }

    fn on_message(&mut self, from: NodeId, msg: &AcsMessage) -> Vec<Effect<AcsMessage, AcsOutput>> {
        if self.halted {
            return Vec::new();
        }
        let mut out = Vec::new();
        match msg {
            AcsMessage::Proposal(m) => {
                let actions = self.rbc.on_message(from, m);
                Self::lift_rbc(actions, &mut out, &mut self.delivered);
            }
            AcsMessage::Aba { index, wire } => {
                if *index < self.abas.len() {
                    let ts = self.abas[*index].on_message(from, wire);
                    Self::lift_aba(*index, ts, &mut out);
                }
            }
        }
        self.progress(&mut out);
        out
    }

    fn output(&self) -> Option<AcsOutput> {
        self.output.clone()
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn round(&self) -> u64 {
        self.abas.iter().map(|a| a.round().get()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::CommonCoin;
    use bft_sim::{UniformDelay, World, WorldConfig};

    fn coins(n: usize, seed: u64) -> Vec<CommonCoin> {
        (0..n).map(|i| CommonCoin::new(seed, i as u64)).collect()
    }

    fn run_acs(n: usize, f: usize, seed: u64, faulty: &[usize]) -> bft_sim::Report<AcsOutput> {
        let cfg = Config::new(n, f).unwrap();
        let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 10, seed));
        for id in cfg.nodes() {
            let proposal = format!("proposal-{}", id.index()).into_bytes();
            let p = Box::new(AcsProcess::new(cfg, id, proposal, coins(n, seed)));
            if faulty.contains(&id.index()) {
                // A crashed proposer: installed as a silent process.
                world.add_faulty_process(Box::new(SilentAcs { id }));
            } else {
                world.add_process(p);
            }
        }
        world.run()
    }

    struct SilentAcs {
        id: NodeId,
    }

    impl Process for SilentAcs {
        type Msg = AcsMessage;
        type Output = AcsOutput;
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_start(&mut self) -> Vec<Effect<AcsMessage, AcsOutput>> {
            Vec::new()
        }
        fn on_message(
            &mut self,
            _f: NodeId,
            _m: &AcsMessage,
        ) -> Vec<Effect<AcsMessage, AcsOutput>> {
            Vec::new()
        }
    }

    #[test]
    fn all_correct_nodes_agree_on_a_full_set() {
        let report = run_acs(4, 1, 3, &[]);
        assert!(report.all_correct_decided());
        assert!(report.agreement_holds());
        let set = report.output_of(NodeId::new(0)).unwrap();
        assert!(set.len() >= 3, "set must contain at least n − f proposals");
        for (id, payload) in &set {
            assert_eq!(payload, format!("proposal-{}", id.index()).as_bytes());
        }
    }

    #[test]
    fn crashed_proposer_is_excluded_but_acs_completes() {
        let report = run_acs(4, 1, 7, &[3]);
        assert!(report.all_correct_decided());
        assert!(report.agreement_holds());
        let set = report.output_of(NodeId::new(0)).unwrap();
        assert!(set.len() >= 3);
        assert!(
            set.iter().all(|(id, _)| id.index() != 3),
            "silent node's proposal cannot be delivered, hence not included"
        );
    }

    #[test]
    fn larger_cluster_completes() {
        let report = run_acs(7, 2, 1, &[6]);
        assert!(report.all_correct_decided());
        assert!(report.agreement_holds());
        assert!(report.output_of(NodeId::new(0)).unwrap().len() >= 5);
    }

    #[test]
    #[should_panic(expected = "one coin per agreement instance")]
    fn coin_count_must_match_n() {
        let cfg = Config::new(4, 1).unwrap();
        let _ = AcsProcess::new(cfg, NodeId::new(0), vec![], coins(3, 0));
    }
}
