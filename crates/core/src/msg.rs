//! Wire types of the consensus protocol.

use bft_rbc::{CodedPayload, RbcMuxMessage};
use bft_types::{Round, Step, Value};
use std::fmt;

/// Classification of a wire message: kind label plus approximate bytes.
///
/// This mirrors `bft_sim::MsgClass` without depending on the simulator
/// (protocol code is transport-agnostic); harnesses convert at the
/// boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireClass {
    /// Protocol-level message kind, `"<rbc phase>/<step>"`.
    pub kind: &'static str,
    /// Approximate serialized size in bytes.
    pub bytes: usize,
}

/// The tag identifying one reliable-broadcast instance of the consensus
/// protocol: each node broadcasts exactly one payload per `(round, step)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StepTag {
    /// The consensus round.
    pub round: Round,
    /// The step within the round.
    pub step: Step,
}

impl StepTag {
    /// Creates a tag.
    pub const fn new(round: Round, step: Step) -> Self {
        StepTag { round, step }
    }
}

impl fmt::Display for StepTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.round, self.step)
    }
}

/// The payload a node reliably broadcasts in one protocol step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StepPayload {
    /// Step 1: the node's current estimate.
    Initial(Value),
    /// Step 2: the majority value of the node's Initial quorum.
    Echo(Value),
    /// Step 3: the node's Echo outcome. `flagged` is the *D-flag*: true
    /// iff more than `n/2` of the node's Echo quorum carried `value`.
    Ready {
        /// The carried value.
        value: Value,
        /// Whether the value is locked (D-flagged).
        flagged: bool,
    },
}

impl StepPayload {
    /// The value carried by the payload.
    pub fn value(&self) -> Value {
        match *self {
            StepPayload::Initial(v) | StepPayload::Echo(v) => v,
            StepPayload::Ready { value, .. } => value,
        }
    }

    /// The step this payload belongs to.
    pub fn step(&self) -> Step {
        match self {
            StepPayload::Initial(_) => Step::Initial,
            StepPayload::Echo(_) => Step::Echo,
            StepPayload::Ready { .. } => Step::Ready,
        }
    }

    /// Whether this is a D-flagged Ready payload.
    pub fn is_flagged(&self) -> bool {
        matches!(self, StepPayload::Ready { flagged: true, .. })
    }
}

/// Byte form for erasure coding. Consensus payloads are two bytes, far
/// below any sensible fragmentation threshold — the ABA layer always runs
/// [`bft_rbc::RbcKind::Bracha`] — but the codec must exist for the mux's
/// trait bounds, and decoding is total (garbage falls back to
/// `Initial(Zero)`, which the step-vs-tag check in the engine rejects).
impl CodedPayload for StepPayload {
    fn to_coded_bytes(&self) -> Vec<u8> {
        match *self {
            StepPayload::Initial(v) => vec![0, v as u8],
            StepPayload::Echo(v) => vec![1, v as u8],
            StepPayload::Ready { value, flagged } => vec![2, value as u8, flagged as u8],
        }
    }

    fn from_coded_bytes(bytes: Vec<u8>) -> Self {
        let value = |b: &u8| if *b == 1 { Value::One } else { Value::Zero };
        match bytes.as_slice() {
            [0, v] => StepPayload::Initial(value(v)),
            [1, v] => StepPayload::Echo(value(v)),
            [2, v, fl] => StepPayload::Ready { value: value(v), flagged: *fl == 1 },
            _ => StepPayload::Initial(Value::Zero),
        }
    }
}

impl fmt::Display for StepPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepPayload::Initial(v) => write!(f, "initial({v})"),
            StepPayload::Echo(v) => write!(f, "echo({v})"),
            StepPayload::Ready { value, flagged: true } => write!(f, "ready({value}*)"),
            StepPayload::Ready { value, flagged: false } => write!(f, "ready({value})"),
        }
    }
}

/// The wire message of the consensus protocol: a reliable-broadcast
/// message for instance `(origin node, round, step)`.
pub type Wire = RbcMuxMessage<StepTag, StepPayload>;

/// Classifies a [`Wire`] message for the simulator's metrics: kind label
/// `"<rbc phase>/<step>"` and an approximate wire size (tag + payload +
/// phase byte).
pub fn classify_wire(msg: &Wire) -> WireClass {
    let step = match msg.msg.payload().map(StepPayload::step) {
        Some(Step::Initial) => "initial",
        Some(Step::Echo) => "echo",
        Some(Step::Ready) => "ready",
        // Coded phases carry fragments, not a step payload; the ABA layer
        // never speaks them, but the classifier stays total.
        None => "coded",
    };
    let kind = match (&msg.msg, step) {
        (bft_rbc::RbcMessage::Send(_), "initial") => "send/initial",
        (bft_rbc::RbcMessage::Send(_), "echo") => "send/echo",
        (bft_rbc::RbcMessage::Send(_), _) => "send/ready",
        (bft_rbc::RbcMessage::Echo(_), "initial") => "echo/initial",
        (bft_rbc::RbcMessage::Echo(_), "echo") => "echo/echo",
        (bft_rbc::RbcMessage::Echo(_), _) => "echo/ready",
        (bft_rbc::RbcMessage::Ready(_), "initial") => "ready/initial",
        (bft_rbc::RbcMessage::Ready(_), "echo") => "ready/echo",
        (bft_rbc::RbcMessage::Ready(_), _) => "ready/ready",
        (bft_rbc::RbcMessage::CodedSend { .. }, _) => "csend",
        (bft_rbc::RbcMessage::CodedEcho { .. }, _) => "cecho",
        (bft_rbc::RbcMessage::CodedReady { .. }, _) => "cready",
    };
    // sender id (4) + round (8) + step (1) + rbc phase (1) + value/flag (2);
    // coded phases add the root and any fragment they carry.
    let bytes = match &msg.msg {
        bft_rbc::RbcMessage::CodedSend { fragment, .. }
        | bft_rbc::RbcMessage::CodedEcho { fragment, .. } => 22 + fragment.weight(),
        bft_rbc::RbcMessage::CodedReady { .. } => 22,
        _ => 16,
    };
    WireClass { kind, bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_rbc::RbcMessage;
    use bft_types::NodeId;

    #[test]
    fn payload_accessors() {
        let p = StepPayload::Ready { value: Value::One, flagged: true };
        assert_eq!(p.value(), Value::One);
        assert_eq!(p.step(), Step::Ready);
        assert!(p.is_flagged());
        assert!(!StepPayload::Initial(Value::Zero).is_flagged());
        assert_eq!(StepPayload::Echo(Value::Zero).step(), Step::Echo);
    }

    #[test]
    fn display_formats() {
        assert_eq!(StepPayload::Initial(Value::One).to_string(), "initial(1)");
        assert_eq!(
            StepPayload::Ready { value: Value::Zero, flagged: true }.to_string(),
            "ready(0*)"
        );
        assert_eq!(StepTag::new(Round::new(3), Step::Echo).to_string(), "r3/echo");
    }

    #[test]
    fn classifier_distinguishes_phases_and_steps() {
        let mk = |msg: RbcMessage<StepPayload>| Wire {
            sender: NodeId::new(0),
            tag: StepTag::new(Round::FIRST, msg.payload().map_or(Step::Initial, |p| p.step())),
            msg,
        };
        let kinds: Vec<&str> = [
            mk(RbcMessage::Send(StepPayload::Initial(Value::One))),
            mk(RbcMessage::Echo(StepPayload::Initial(Value::One))),
            mk(RbcMessage::Ready(StepPayload::Echo(Value::One))),
            mk(RbcMessage::Ready(StepPayload::Ready { value: Value::One, flagged: false })),
        ]
        .iter()
        .map(|m| classify_wire(m).kind)
        .collect();
        assert_eq!(kinds, vec!["send/initial", "echo/initial", "ready/echo", "ready/ready"]);
    }
}
