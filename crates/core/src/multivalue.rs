//! Multi-value consensus layered on the [ACS](crate::acs) extension.
//!
//! Bracha's 1984 protocol is binary. The standard route to agreeing on an
//! arbitrary byte string in the same asynchronous Byzantine model is to
//! run an [asynchronous common subset](crate::acs) over everyone's
//! proposals and then apply a deterministic choice function to the agreed
//! set — all correct nodes hold the same set, so they pick the same value.
//!
//! The choice function here is "the proposal of the smallest proposer id
//! in the set". Validity (the decided value was proposed by *some* node —
//! though possibly a Byzantine one, which is the standard *weak* validity
//! of multi-value Byzantine consensus) follows from RBC agreement: every
//! payload in the set was actually broadcast by its proposer.
//!
//! # Example
//!
//! ```
//! use bft_coin::CommonCoin;
//! use bft_sim::{UniformDelay, World, WorldConfig};
//! use bft_types::{Config, NodeId};
//! use bracha::multivalue::MultiValueProcess;
//!
//! # fn main() -> Result<(), bft_types::ConfigError> {
//! let cfg = Config::new(4, 1)?;
//! let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 5, 2));
//! for id in cfg.nodes() {
//!     let coins = (0..4).map(|i| CommonCoin::new(2, i as u64)).collect();
//!     world.add_process(Box::new(MultiValueProcess::new(
//!         cfg, id, format!("value-{id}").into_bytes(), coins,
//!     )));
//! }
//! let report = world.run();
//! assert!(report.all_correct_decided());
//! assert!(report.agreement_holds());
//! # Ok(())
//! # }
//! ```

use crate::acs::{AcsMessage, AcsOutput, AcsProcess};
use bft_coin::CoinScheme;
use bft_types::{Config, Effect, NodeId, Process};

/// Multi-value consensus: agree on one byte string out of the `n`
/// proposals, despite `f < n/3` Byzantine nodes.
///
/// Wraps an [`AcsProcess`] and projects its set output through a
/// deterministic choice function.
#[derive(Clone, Debug)]
pub struct MultiValueProcess<C> {
    inner: AcsProcess<C>,
    decided: Option<Vec<u8>>,
}

impl<C: CoinScheme> MultiValueProcess<C> {
    /// Creates a participant proposing `proposal`. See
    /// [`AcsProcess::new`] for the `coins` contract.
    ///
    /// # Panics
    ///
    /// Panics if `coins.len() != config.n()`.
    pub fn new(config: Config, me: NodeId, proposal: Vec<u8>, coins: Vec<C>) -> Self {
        MultiValueProcess { inner: AcsProcess::new(config, me, proposal, coins), decided: None }
    }

    /// The deterministic choice function: the payload of the smallest
    /// proposer id in the agreed set.
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty — ACS guarantees at least `n − f` entries.
    pub fn choose(set: &AcsOutput) -> Vec<u8> {
        set.iter()
            .min_by_key(|(id, _)| *id)
            .map(|(_, payload)| payload.clone())
            // lint: allow(panic) — documented `# Panics` API contract, ACS guarantees ≥ n − f entries
            .expect("ACS output contains at least n − f entries")
    }

    fn project(
        &mut self,
        effects: Vec<Effect<AcsMessage, AcsOutput>>,
    ) -> Vec<Effect<AcsMessage, Vec<u8>>> {
        effects
            .into_iter()
            .map(|e| match e {
                Effect::Send { to, msg } => Effect::Send { to, msg },
                Effect::Broadcast { msg } => Effect::Broadcast { msg },
                Effect::Halt => Effect::Halt,
                Effect::Output(set) => {
                    let value = Self::choose(&set);
                    self.decided = Some(value.clone());
                    Effect::Output(value)
                }
            })
            .collect()
    }
}

impl<C: CoinScheme> Process for MultiValueProcess<C> {
    type Msg = AcsMessage;
    type Output = Vec<u8>;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn on_start(&mut self) -> Vec<Effect<AcsMessage, Vec<u8>>> {
        let effects = self.inner.on_start();
        self.project(effects)
    }

    fn on_message(&mut self, from: NodeId, msg: &AcsMessage) -> Vec<Effect<AcsMessage, Vec<u8>>> {
        let effects = self.inner.on_message(from, msg);
        self.project(effects)
    }

    fn output(&self) -> Option<Vec<u8>> {
        self.decided.clone().or_else(|| self.inner.output().map(|s| Self::choose(s)))
    }

    fn is_halted(&self) -> bool {
        self.inner.is_halted()
    }

    fn round(&self) -> u64 {
        self.inner.round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::CommonCoin;
    use bft_sim::{UniformDelay, World, WorldConfig};

    fn coins(n: usize, seed: u64) -> Vec<CommonCoin> {
        (0..n).map(|i| CommonCoin::new(seed, i as u64)).collect()
    }

    #[test]
    fn all_nodes_decide_the_same_byte_string() {
        for seed in 0..5 {
            let cfg = Config::new(4, 1).unwrap();
            let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 8, seed));
            for id in cfg.nodes() {
                world.add_process(Box::new(MultiValueProcess::new(
                    cfg,
                    id,
                    format!("v{}", id.index()).into_bytes(),
                    coins(4, seed),
                )));
            }
            let report = world.run();
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.agreement_holds(), "seed {seed}");
            let v = report.output_of(NodeId::new(0)).unwrap();
            // The decided value is one of the actual proposals.
            assert!((0..4).any(|i| v == format!("v{i}").into_bytes()), "seed {seed}");
        }
    }

    #[test]
    fn choose_picks_smallest_proposer() {
        let set: AcsOutput = vec![
            (NodeId::new(2), b"c".to_vec()),
            (NodeId::new(0), b"a".to_vec()),
            (NodeId::new(1), b"b".to_vec()),
        ];
        assert_eq!(MultiValueProcess::<CommonCoin>::choose(&set), b"a".to_vec());
    }

    #[test]
    #[should_panic(expected = "at least n − f entries")]
    fn choose_rejects_empty_set() {
        let _ = MultiValueProcess::<CommonCoin>::choose(&Vec::new());
    }
}
