//! The consensus state machine: validated three-step rounds over reliable
//! broadcast.

use crate::validation::Validator;
use crate::{StepPayload, StepTag, Wire};
use bft_coin::CoinScheme;
use bft_obs::{Event as ObsEvent, Obs, TraceCtx, TracePhase};
use bft_rbc::{RbcMux, RbcMuxAction};
use bft_types::{Config, NodeId, Round, Step, Value};

/// Tunables of a [`BrachaNode`].
#[derive(Clone, Copy, Debug)]
pub struct BrachaOptions {
    /// Enforce message validation (the paper's protocol). Setting this to
    /// `false` is the T8 ablation: reliable broadcast without validation,
    /// which loses safety under lying adversaries.
    pub validate: bool,
    /// Safety valve: halt (undecided) if this round is exceeded. Randomized
    /// termination has probability 1, but a worst-case experiment with a
    /// fixed adversarial coin would otherwise spin forever.
    pub max_rounds: u64,
    /// How many rounds to keep participating after deciding, so that
    /// slower nodes can still collect quorums. One round suffices for the
    /// protocol's proof; two adds margin at negligible cost.
    pub extra_rounds: u64,
    /// Garbage-collect validator and RBC state for rounds that are more
    /// than two behind the current round.
    pub prune: bool,
}

impl Default for BrachaOptions {
    fn default() -> Self {
        BrachaOptions { validate: true, max_rounds: 10_000, extra_rounds: 2, prune: true }
    }
}

/// An instruction produced by a [`BrachaNode`] for its host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Transition {
    /// Send this wire message to every node (including ourselves).
    Broadcast(Wire),
    /// The node decided `value`. Emitted at most once.
    Decide(Value),
    /// The node has finished participating (decided plus
    /// [`BrachaOptions::extra_rounds`], or the `max_rounds` valve fired).
    Halt,
}

/// One node of Bracha's randomized Byzantine consensus protocol.
///
/// The node is a pure state machine: feed wire messages with
/// [`BrachaNode::on_message`], kick it off with [`BrachaNode::start`], and
/// execute the returned [`Transition`]s. Randomness comes only from the
/// injected [`CoinScheme`], so executions are reproducible.
///
/// See the [crate-level documentation](crate) for the protocol itself.
#[derive(Clone, Debug)]
pub struct BrachaNode<C> {
    config: Config,
    me: NodeId,
    coin: C,
    options: BrachaOptions,
    rbc: RbcMux<StepTag, StepPayload>,
    validator: Validator,
    round: Round,
    step: Step,
    estimate: Value,
    started: bool,
    decided: Option<Value>,
    decided_round: Option<Round>,
    halted: bool,
    obs: Obs,
    // Causal tracing is carried on its own handle so hosts can trace an
    // instance whose metrics stream is deliberately disabled (the
    // ordering layer's per-slot ABA nodes).
    trace_obs: Obs,
    trace: Option<TraceCtx>,
    round_span_open: Option<u64>,
    ready_entered_at: Option<u64>,
}

impl<C: CoinScheme> BrachaNode<C> {
    /// Creates a node with the given coin scheme and options.
    pub fn new(config: Config, me: NodeId, coin: C, options: BrachaOptions) -> Self {
        BrachaNode {
            config,
            me,
            coin,
            options,
            rbc: RbcMux::new(config, me),
            validator: Validator::new(config, options.validate),
            round: Round::FIRST,
            step: Step::Initial,
            estimate: Value::Zero,
            started: false,
            decided: None,
            decided_round: None,
            halted: false,
            obs: Obs::disabled(),
            trace_obs: Obs::disabled(),
            trace: None,
            round_span_open: None,
            ready_entered_at: None,
        }
    }

    /// Attaches an observer; the node (and its RBC layer) emits
    /// consensus-level events through it. Attach before [`start`]
    /// (`BrachaNode::start`) so the whole run is covered.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.rbc.set_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// Attaches a causal-trace context: the node emits `aba_round[r]` and
    /// `coin_wait[r]` spans for this consensus instance through `obs`.
    /// Separate from [`with_obs`](BrachaNode::with_obs) so tracing works
    /// even when the metrics stream is disabled. Attach before
    /// [`start`](BrachaNode::start).
    pub fn set_trace(&mut self, obs: Obs, ctx: TraceCtx) {
        self.trace_obs = obs;
        self.trace = Some(ctx);
    }

    /// Closes any trace spans still open — call when the host winds the
    /// instance down mid-round (decided runs close their own spans).
    pub fn finish_spans(&mut self) {
        self.close_round_span();
    }

    fn open_round_span(&mut self) {
        // Rounds after the decision are the halting gadget (helping
        // slower nodes), not transaction latency: they are not traced,
        // which also keeps the per-instance round count in the trace
        // report at "rounds to decide".
        if self.decided.is_some() {
            return;
        }
        if let Some(ctx) = self.trace {
            let r = self.round.get();
            self.round_span_open = Some(r);
            self.trace_obs.span_start(self.me, ctx, TracePhase::AbaRound(r), ctx.root);
        }
    }

    fn close_round_span(&mut self) {
        if let Some(ctx) = self.trace {
            if let Some(r) = self.round_span_open.take() {
                self.trace_obs.span_end(self.me, ctx, TracePhase::AbaRound(r));
            }
        }
    }

    /// This node's identifier.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The decided value, once any.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    /// The round in which this node decided, if it has.
    pub fn decided_round(&self) -> Option<Round> {
        self.decided_round
    }

    /// The node's current round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The node's current estimate.
    pub fn estimate(&self) -> Value {
        self.estimate
    }

    /// Whether the node has stopped participating.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The step the node is currently waiting in (diagnostics).
    pub fn step(&self) -> Step {
        self.step
    }

    /// Number of validated messages for `(round, step)` (diagnostics).
    pub fn validated_count(&self, round: Round, step: Step) -> usize {
        self.validator.validated(round, step).len()
    }

    /// Number of delivered-but-unvalidated payloads buffered for `round`
    /// (diagnostics).
    pub fn pending_count(&self, round: Round) -> usize {
        self.validator.pending_count(round)
    }

    /// Number of rounds with live validator state — bounded when
    /// [`BrachaOptions::prune`] is on (diagnostics / leak detection).
    pub fn tracked_rounds(&self) -> usize {
        self.validator.round_count()
    }

    /// Starts the protocol with `input` as this node's initial value.
    ///
    /// May be called after messages have already been received (they are
    /// buffered); calling it twice is a no-op.
    pub fn start(&mut self, input: Value) -> Vec<Transition> {
        if self.started || self.halted {
            return Vec::new();
        }
        self.started = true;
        self.estimate = input;
        let round = self.round.get();
        self.obs.emit(self.me, || ObsEvent::RoundStarted { round });
        self.obs.emit(self.me, || ObsEvent::StepEntered { round, step: Step::Initial });
        self.open_round_span();
        let mut out = Vec::new();
        self.broadcast_current(StepPayload::Initial(input), &mut out);
        self.try_advance(&mut out);
        out
    }

    /// Processes one wire message from (authenticated) peer `from`.
    pub fn on_message(&mut self, from: NodeId, msg: &Wire) -> Vec<Transition> {
        if self.halted {
            return Vec::new();
        }
        let mut out = Vec::new();
        for action in self.rbc.on_message(from, msg) {
            match action {
                RbcMuxAction::Broadcast(wire) => out.push(Transition::Broadcast(wire)),
                // The ABA layer pins the default RbcKind::Bracha, which
                // never unicasts (two-byte payloads gain nothing from
                // fragmentation), so a Send can only appear if the mux is
                // misconfigured; dropping it is the safe response.
                RbcMuxAction::Send { .. } => {}
                RbcMuxAction::Deliver { sender, tag, payload } => {
                    // A Byzantine origin could broadcast a payload whose
                    // step contradicts the instance tag; reject it here so
                    // the validator's bookkeeping stays per-(round, step).
                    if payload.step() != tag.step {
                        self.obs.emit(self.me, || ObsEvent::MessageRejected {
                            origin: sender,
                            round: tag.round.get(),
                            reason: "payload step contradicts instance tag",
                        });
                        continue;
                    }
                    self.ingest_observed(tag.round, sender, payload);
                }
            }
        }
        self.try_advance(&mut out);
        out
    }

    /// Feeds a reliably-delivered payload to the validator and reports
    /// every message the validator newly accepted (a late arrival can
    /// unlock earlier buffered payloads, so one ingest may validate many).
    fn ingest_observed(&mut self, round: Round, from: NodeId, payload: StepPayload) {
        let newly = self.validator.ingest(round, from, payload);
        if self.obs.enabled() {
            for v in &newly {
                let (origin, round, payload) = (v.from, v.round.get(), v.payload);
                self.obs.emit(self.me, || ObsEvent::MessageValidated {
                    origin,
                    round,
                    step: payload.step(),
                    value: payload.value(),
                    flagged: payload.is_flagged(),
                });
            }
        }
    }

    /// Reliably broadcasts our payload for the current `(round, step)`.
    fn broadcast_current(&mut self, payload: StepPayload, out: &mut Vec<Transition>) {
        let tag = StepTag::new(self.round, self.step);
        for action in self.rbc.broadcast(tag, payload) {
            match action {
                RbcMuxAction::Broadcast(wire) => out.push(Transition::Broadcast(wire)),
                // See `on_message`: the ABA layer never runs the coded
                // (unicasting) RBC kind.
                RbcMuxAction::Send { .. } => {}
                RbcMuxAction::Deliver { sender, tag, payload } => {
                    self.ingest_observed(tag.round, sender, payload);
                }
            }
        }
    }

    /// Runs protocol transitions while the current step's quorum is
    /// satisfied.
    fn try_advance(&mut self, out: &mut Vec<Transition>) {
        if !self.started || self.halted {
            return;
        }
        let q = self.config.quorum();
        loop {
            let msgs = self.validator.validated(self.round, self.step);
            if msgs.len() < q {
                return;
            }
            let round = self.round.get();
            let (step, support) = (self.step, msgs.len() as u64);
            // Summarise the quorum prefix while the validator borrow is
            // live: the step rules only consume these four counters, so no
            // per-quorum allocation is needed.
            let (counts, dcounts) = summarize(&msgs[..q]);
            self.obs.emit(self.me, || ObsEvent::QuorumReached { round, step, support });
            match self.step {
                Step::Initial => {
                    self.estimate = weak_majority(counts, self.estimate);
                    self.step = Step::Echo;
                    self.obs.emit(self.me, || ObsEvent::StepEntered { round, step: Step::Echo });
                    self.broadcast_current(StepPayload::Echo(self.estimate), out);
                }
                Step::Echo => {
                    let m = self.config.majority_threshold();
                    let flagged = Value::BOTH.into_iter().find(|v| counts[v.index()] >= m);
                    if let Some(w) = flagged {
                        self.estimate = w;
                        let support = counts[w.index()] as u64;
                        self.obs.emit(self.me, || ObsEvent::ValueLocked {
                            round,
                            value: w,
                            support,
                        });
                    }
                    self.step = Step::Ready;
                    self.obs.emit(self.me, || ObsEvent::StepEntered { round, step: Step::Ready });
                    if self.trace.is_some() {
                        self.ready_entered_at = Some(self.trace_obs.now());
                    }
                    self.broadcast_current(
                        StepPayload::Ready { value: self.estimate, flagged: flagged.is_some() },
                        out,
                    );
                }
                Step::Ready => {
                    // At most one value can carry validated D-flags (quorum
                    // intersection); prefer One deterministically if the
                    // ablation (validation off) ever lets both through.
                    let [dzeros, dones] = dcounts;
                    let (w, d) =
                        if dones >= dzeros { (Value::One, dones) } else { (Value::Zero, dzeros) };
                    if d >= self.config.decide_threshold() {
                        self.estimate = w;
                        if self.decided.is_none() {
                            self.decided = Some(w);
                            self.decided_round = Some(self.round);
                            self.obs.emit(self.me, || ObsEvent::Decided { round, value: w });
                            out.push(Transition::Decide(w));
                        }
                    } else if d >= self.config.ready_threshold() {
                        self.estimate = w;
                        self.obs.emit(self.me, || ObsEvent::ValueLocked {
                            round,
                            value: w,
                            support: d as u64,
                        });
                    } else {
                        self.estimate = self.coin.flip(self.round.get());
                        let value = self.estimate;
                        let scheme = self.coin.name();
                        self.obs.emit(self.me, || ObsEvent::CoinFlipped { round, value, scheme });
                        if let Some(ctx) = (self.decided.is_none()).then_some(self.trace).flatten()
                        {
                            // The wait is only known once the coin fires:
                            // open the span retroactively at Ready-step
                            // entry and close it now (post-decision coin
                            // flips belong to the untraced halting
                            // gadget, like the round spans above).
                            let entered =
                                self.ready_entered_at.unwrap_or_else(|| self.trace_obs.now());
                            let parent = ctx.span(self.me, TracePhase::AbaRound(round));
                            self.trace_obs.span_start_at(
                                entered,
                                self.me,
                                ctx,
                                TracePhase::CoinWait(round),
                                parent,
                            );
                            self.trace_obs.span_end(self.me, ctx, TracePhase::CoinWait(round));
                        }
                    }
                    if !self.enter_next_round(out) {
                        return;
                    }
                }
            }
        }
    }

    /// Moves to the next round (or halts). Returns false when halted.
    fn enter_next_round(&mut self, out: &mut Vec<Transition>) -> bool {
        let completed = self.round.get();
        self.obs.emit(self.me, || ObsEvent::RoundCompleted { round: completed });
        self.close_round_span();
        self.ready_entered_at = None;
        let done_participating = self
            .decided_round
            .map(|dr| self.round.get() >= dr.get() + self.options.extra_rounds)
            .unwrap_or(false);
        let out_of_rounds = self.round.get() >= self.options.max_rounds;
        if done_participating || out_of_rounds {
            self.halted = true;
            out.push(Transition::Halt);
            return false;
        }
        self.round = self.round.next();
        self.step = Step::Initial;
        let round = self.round.get();
        self.obs.emit(self.me, || ObsEvent::RoundStarted { round });
        self.obs.emit(self.me, || ObsEvent::StepEntered { round, step: Step::Initial });
        self.open_round_span();
        if self.options.prune {
            if let Some(keep_from) = self.round.get().checked_sub(2) {
                if keep_from >= 1 {
                    let keep = Round::new(keep_from);
                    self.validator.prune_before(keep);
                    self.rbc.retain(|_, tag| tag.round >= keep);
                }
            }
        }
        self.broadcast_current(StepPayload::Initial(self.estimate), out);
        true
    }
}

/// Per-value and per-value-D-flag counts of a quorum, in one pass.
fn summarize(quorum: &[(NodeId, StepPayload)]) -> ([usize; 2], [usize; 2]) {
    let mut counts = [0usize; 2];
    let mut dcounts = [0usize; 2];
    for &(_, p) in quorum {
        counts[p.value().index()] += 1;
        if p.is_flagged() {
            dcounts[p.value().index()] += 1;
        }
    }
    (counts, dcounts)
}

/// The value held by strictly more than half of the counted quorum, or
/// `tiebreak` on an exact tie (possible only for even quorum sizes).
fn weak_majority(counts: [usize; 2], tiebreak: Value) -> Value {
    let [zeros, ones] = counts;
    match ones.cmp(&zeros) {
        std::cmp::Ordering::Greater => Value::One,
        std::cmp::Ordering::Less => Value::Zero,
        std::cmp::Ordering::Equal => tiebreak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::FixedCoin;

    fn cfg() -> Config {
        Config::new(4, 1).unwrap()
    }

    fn node(i: usize) -> BrachaNode<FixedCoin> {
        BrachaNode::new(
            cfg(),
            NodeId::new(i),
            FixedCoin::new(Value::Zero),
            BrachaOptions::default(),
        )
    }

    /// Starts every node with its input and returns the queued broadcasts
    /// with correct sender attribution.
    fn start_all(nodes: &mut [BrachaNode<FixedCoin>], inputs: &[Value]) -> Vec<(NodeId, Wire)> {
        let mut queue = Vec::new();
        for (n, &v) in nodes.iter_mut().zip(inputs) {
            let me = n.me();
            for t in n.start(v) {
                if let Transition::Broadcast(w) = t {
                    queue.push((me, w));
                }
            }
        }
        queue
    }

    /// Delivers every queued broadcast to every node until quiescence.
    /// Returns the decisions.
    fn pump(
        nodes: &mut [BrachaNode<FixedCoin>],
        mut queue: Vec<(NodeId, Wire)>,
    ) -> Vec<Option<Value>> {
        let mut safety = 0;
        while !queue.is_empty() {
            safety += 1;
            assert!(safety < 1_000_000, "pump did not quiesce");
            let (from, wire) = queue.remove(0);
            for node in nodes.iter_mut() {
                let ts = node.on_message(from, &wire);
                let me = node.me();
                for t in ts {
                    if let Transition::Broadcast(w) = t {
                        queue.push((me, w));
                    }
                }
            }
        }
        nodes.iter().map(|n| n.decided()).collect()
    }

    #[test]
    fn unanimous_inputs_decide_in_round_one() {
        let mut nodes: Vec<_> = (0..4).map(node).collect();
        let queue = start_all(&mut nodes, &[Value::One; 4]);
        let decisions = pump(&mut nodes, queue);
        assert!(decisions.iter().all(|d| *d == Some(Value::One)));
        for n in &nodes {
            assert_eq!(n.decided_round(), Some(Round::FIRST));
        }
    }

    #[test]
    fn validity_unanimous_zero() {
        let mut nodes: Vec<_> = (0..4).map(node).collect();
        let queue = start_all(&mut nodes, &[Value::Zero; 4]);
        let decisions = pump(&mut nodes, queue);
        assert!(decisions.iter().all(|d| *d == Some(Value::Zero)));
    }

    #[test]
    fn mixed_inputs_agree() {
        let mut nodes: Vec<_> = (0..4).map(node).collect();
        let queue = start_all(&mut nodes, &[Value::Zero, Value::Zero, Value::One, Value::One]);
        let decisions = pump(&mut nodes, queue);
        let first = decisions[0].expect("all must decide");
        assert!(decisions.iter().all(|d| *d == Some(first)));
    }

    #[test]
    fn start_is_idempotent_and_messages_buffer_before_start() {
        let mut a = node(0);
        let mut b = node(1);
        let ts = a.start(Value::One);
        assert!(!ts.is_empty());
        assert!(a.start(Value::Zero).is_empty(), "second start ignored");
        // b receives a's Send before starting: buffered, no crash.
        for t in ts {
            if let Transition::Broadcast(w) = t {
                let _ = b.on_message(NodeId::new(0), &w);
            }
        }
        assert_eq!(b.round(), Round::FIRST);
        assert!(!b.is_halted());
    }

    #[test]
    fn mismatched_tag_and_payload_step_is_rejected() {
        use bft_rbc::RbcMessage;
        let mut a = node(0);
        let _ = a.start(Value::One);
        // Byzantine node 1 reliably broadcasts an Echo payload under an
        // Initial tag; the delivery must be discarded. Drive the RBC to
        // delivery with 3 Readys.
        let tag = StepTag::new(Round::FIRST, Step::Initial);
        let payload = StepPayload::Echo(Value::One);
        for i in 1..4 {
            let _ = a.on_message(
                NodeId::new(i),
                &Wire { sender: NodeId::new(1), tag, msg: RbcMessage::Ready(payload) },
            );
        }
        // The echo payload must not appear among validated Initials...
        assert!(a
            .validator
            .validated(Round::FIRST, Step::Initial)
            .iter()
            .all(|&(from, _)| from != NodeId::new(1)));
        // ...nor among Echoes (wrong tag).
        assert!(a
            .validator
            .validated(Round::FIRST, Step::Echo)
            .iter()
            .all(|&(from, _)| from != NodeId::new(1)));
    }

    #[test]
    fn max_rounds_valve_halts_undecided() {
        // Fixed opposing coins + adversarially split inputs cannot decide
        // when... actually with 4 honest nodes inputs 2-2 and a fixed coin
        // the protocol *does* decide; to exercise the valve we set
        // max_rounds = 0 so the first round-end halts.
        let opts = BrachaOptions { max_rounds: 1, ..BrachaOptions::default() };
        let mut nodes: Vec<_> = (0..4)
            .map(|i| BrachaNode::new(cfg(), NodeId::new(i), FixedCoin::new(Value::Zero), opts))
            .collect();
        let queue = start_all(&mut nodes, &[Value::Zero, Value::Zero, Value::One, Value::One]);
        let _ = pump(&mut nodes, queue);
        for n in &nodes {
            assert!(n.is_halted(), "valve must halt node {}", n.me());
        }
    }

    #[test]
    fn decided_nodes_halt_after_extra_rounds() {
        let mut nodes: Vec<_> = (0..4).map(node).collect();
        let queue = start_all(&mut nodes, &[Value::One; 4]);
        let _ = pump(&mut nodes, queue);
        for n in &nodes {
            assert_eq!(n.decided(), Some(Value::One));
            assert!(n.is_halted(), "decided nodes must eventually halt");
            // Decided in round 1, participates through rounds 2 and 3.
            assert!(n.round().get() <= 1 + 2);
        }
    }

    #[test]
    fn traced_run_emits_balanced_round_spans() {
        use bft_obs::VecSink;
        let (tobs, sink) = Obs::new(VecSink::new());
        let mut nodes: Vec<_> = (0..4).map(node).collect();
        let ctx = TraceCtx::derive(NodeId::new(0), 0, 0);
        for n in nodes.iter_mut() {
            n.set_trace(tobs.clone(), ctx);
        }
        let queue = start_all(&mut nodes, &[Value::Zero, Value::Zero, Value::One, Value::One]);
        let decisions = pump(&mut nodes, queue);
        assert!(decisions.iter().all(|d| d.is_some()));
        for n in nodes.iter_mut() {
            n.finish_spans();
        }
        let events = sink.lock().take();
        assert!(!events.is_empty(), "traced nodes must emit spans");
        let (mut starts, mut ends) = (0usize, 0usize);
        for (_, _, e) in &events {
            match e {
                ObsEvent::SpanStart { trace, .. } => {
                    assert_eq!(*trace, ctx.trace);
                    starts += 1;
                }
                ObsEvent::SpanEnd { trace, .. } => {
                    assert_eq!(*trace, ctx.trace);
                    ends += 1;
                }
                other => panic!("trace handle must carry only spans, got {other:?}"),
            }
        }
        assert_eq!(starts, ends, "every span start needs a matching end");
    }

    #[test]
    fn weak_majority_tiebreak() {
        assert_eq!(weak_majority([1, 1], Value::One), Value::One);
        assert_eq!(weak_majority([1, 1], Value::Zero), Value::Zero);
        assert_eq!(weak_majority([1, 2], Value::Zero), Value::One);
    }

    #[test]
    fn summarize_counts_values_and_flags() {
        let q = [
            (NodeId::new(0), StepPayload::Ready { value: Value::One, flagged: true }),
            (NodeId::new(1), StepPayload::Ready { value: Value::One, flagged: false }),
            (NodeId::new(2), StepPayload::Ready { value: Value::Zero, flagged: true }),
        ];
        assert_eq!(summarize(&q), ([1, 2], [1, 1]));
    }
}
