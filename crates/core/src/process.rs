//! Transport adapter: running a [`BrachaNode`] under `bft-sim` or
//! `bft-runtime`.

use crate::{BrachaNode, BrachaOptions, Transition, Wire};
use bft_coin::CoinScheme;
use bft_types::{Config, Effect, NodeId, Process, Value};

/// A [`BrachaNode`] packaged as a [`Process`], with its input value.
///
/// The process output is the decided [`Value`]; [`Process::round`] reports
/// the node's current consensus round for the harness metrics.
///
/// # Example
///
/// See the [crate-level documentation](crate) for a full cluster run.
#[derive(Clone, Debug)]
pub struct BrachaProcess<C> {
    node: BrachaNode<C>,
    input: Value,
}

impl<C: CoinScheme> BrachaProcess<C> {
    /// Creates a consensus participant with the given input value.
    pub fn new(config: Config, me: NodeId, input: Value, coin: C, options: BrachaOptions) -> Self {
        BrachaProcess { node: BrachaNode::new(config, me, coin, options), input }
    }

    /// Read access to the wrapped node (for assertions in tests and
    /// experiments).
    pub fn node(&self) -> &BrachaNode<C> {
        &self.node
    }

    /// Attaches an observer to the wrapped node (see
    /// [`BrachaNode::with_obs`]).
    pub fn with_obs(mut self, obs: bft_obs::Obs) -> Self {
        self.node = self.node.with_obs(obs);
        self
    }

    fn lift(transitions: Vec<Transition>) -> Vec<Effect<Wire, Value>> {
        transitions
            .into_iter()
            .map(|t| match t {
                Transition::Broadcast(msg) => Effect::Broadcast { msg },
                Transition::Decide(v) => Effect::Output(v),
                Transition::Halt => Effect::Halt,
            })
            .collect()
    }
}

impl<C: CoinScheme> Process for BrachaProcess<C> {
    type Msg = Wire;
    type Output = Value;

    fn id(&self) -> NodeId {
        self.node.me()
    }

    fn on_start(&mut self) -> Vec<Effect<Wire, Value>> {
        Self::lift(self.node.start(self.input))
    }

    fn on_message(&mut self, from: NodeId, msg: &Wire) -> Vec<Effect<Wire, Value>> {
        Self::lift(self.node.on_message(from, msg))
    }

    fn output(&self) -> Option<Value> {
        self.node.decided()
    }

    fn is_halted(&self) -> bool {
        self.node.is_halted()
    }

    fn round(&self) -> u64 {
        // Report the decision round once decided (the node keeps
        // participating for `extra_rounds` afterwards, which is transport
        // bookkeeping, not protocol latency).
        self.node.decided_round().map(|r| r.get()).unwrap_or_else(|| self.node.round().get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::{CommonCoin, LocalCoin};
    use bft_sim::{FixedDelay, StopReason, UniformDelay, World, WorldConfig};

    fn run_cluster(
        n: usize,
        f_placeholder: usize,
        inputs: &[Value],
        seed: u64,
    ) -> bft_sim::Report<Value> {
        let cfg = Config::new(n, f_placeholder).unwrap();
        let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 30, seed));
        for id in cfg.nodes() {
            world.add_process(Box::new(BrachaProcess::new(
                cfg,
                id,
                inputs[id.index()],
                LocalCoin::new(seed, id),
                BrachaOptions::default(),
            )));
        }
        world.run()
    }

    #[test]
    fn all_correct_cluster_decides_and_agrees() {
        for seed in 0..20 {
            let inputs = [Value::One, Value::Zero, Value::One, Value::Zero];
            let report = run_cluster(4, 1, &inputs, seed);
            assert_eq!(report.stop, StopReason::Completed, "seed {seed}");
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.agreement_holds(), "seed {seed}");
        }
    }

    #[test]
    fn unanimous_inputs_decide_fast_and_keep_validity() {
        for seed in 0..10 {
            let inputs = [Value::One; 7];
            let report = run_cluster(7, 2, &inputs, seed);
            assert_eq!(report.unanimous_output(), Some(Value::One), "seed {seed}");
            assert_eq!(report.decision_round(), Some(1), "unanimity decides in round 1");
        }
    }

    #[test]
    fn common_coin_cluster_decides() {
        let cfg = Config::new(7, 2).unwrap();
        let mut world = World::new(WorldConfig::new(7), UniformDelay::new(1, 30, 11));
        for id in cfg.nodes() {
            let input = if id.index() % 2 == 0 { Value::One } else { Value::Zero };
            world.add_process(Box::new(BrachaProcess::new(
                cfg,
                id,
                input,
                CommonCoin::new(11, 0),
                BrachaOptions::default(),
            )));
        }
        let report = world.run();
        assert!(report.all_correct_decided());
        assert!(report.agreement_holds());
    }

    #[test]
    fn larger_cluster_with_slow_links() {
        let inputs: Vec<Value> =
            (0..10).map(|i| if i < 5 { Value::Zero } else { Value::One }).collect();
        let report = run_cluster(10, 3, &inputs, 5);
        assert!(report.all_correct_decided());
        assert!(report.agreement_holds());
    }

    #[test]
    fn synchronous_schedule_decides_quickly() {
        let cfg = Config::new(4, 1).unwrap();
        let mut world = World::new(WorldConfig::new(4), FixedDelay::new(1));
        for id in cfg.nodes() {
            world.add_process(Box::new(BrachaProcess::new(
                cfg,
                id,
                Value::One,
                LocalCoin::new(0, id),
                BrachaOptions::default(),
            )));
        }
        let report = world.run();
        assert_eq!(report.unanimous_output(), Some(Value::One));
        assert_eq!(report.decision_round(), Some(1));
    }
}
