//! The modern descendant: signature-free binary Byzantine agreement in
//! the style of Mostéfaoui–Moumen–Raynal (PODC 2014) — the ABA used by
//! HoneyBadgerBFT-era systems.
//!
//! Bracha's 1984 protocol pays O(n³) messages per round because every
//! step travels by reliable broadcast. Thirty years later, MMR showed the
//! same optimal resilience (`n ≥ 3f + 1`) with **O(n²)** messages per
//! round and expected O(1) rounds given a common coin, by replacing
//! "reliable broadcast + validation" with a lighter primitive that only
//! enforces what binary agreement actually needs:
//!
//! * **BV-broadcast** — broadcast `BVAL(r, est)`; re-broadcast a value on
//!   `f + 1` supporting receipts (so if any correct node accepts it, all
//!   do); *accept* a value into `bin_values` on `2f + 1` receipts (so
//!   every accepted value was proposed by a correct node — the validation
//!   idea, specialised to two values).
//! * **AUX exchange** — announce one accepted value; wait for `n − f`
//!   announcements all of which are accepted locally; let `vals` be the
//!   set announced.
//! * **Coin** — draw `s = coin(r)`. If `vals = {v}`: decide `v` when
//!   `v = s`, else adopt `v`. If `vals = {0, 1}`: adopt `s`.
//!
//! The experiment harness (T9) runs this protocol head-to-head with the
//! 1984 one: same guarantees, ~n× fewer messages — the line from the
//! paper to modern asynchronous BFT, measured.
//!
//! # Example
//!
//! ```
//! use bft_coin::CommonCoin;
//! use bft_sim::{UniformDelay, World, WorldConfig};
//! use bft_types::{Config, Value};
//! use bracha::mmr::MmrProcess;
//!
//! # fn main() -> Result<(), bft_types::ConfigError> {
//! let cfg = Config::new(4, 1)?;
//! let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 10, 3));
//! for id in cfg.nodes() {
//!     let input = if id.index() % 2 == 0 { Value::One } else { Value::Zero };
//!     world.add_process(Box::new(MmrProcess::new(
//!         cfg, id, input, CommonCoin::new(3, 0), 10_000,
//!     )));
//! }
//! let report = world.run();
//! assert!(report.all_correct_decided());
//! assert!(report.agreement_holds());
//! # Ok(())
//! # }
//! ```

use bft_coin::CoinScheme;
use bft_obs::{Event as ObsEvent, Obs};
use bft_types::{Config, Effect, NodeId, Process, ProtocolError, Round, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A wire message of the MMR protocol (plain point-to-point broadcast, no
/// reliable broadcast needed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MmrMessage {
    /// A binary-value broadcast vote.
    Bval {
        /// The round.
        round: Round,
        /// The supported value.
        value: Value,
    },
    /// An announcement of one accepted (`bin_values`) value.
    Aux {
        /// The round.
        round: Round,
        /// The announced value.
        value: Value,
    },
    /// The termination gadget: "I have decided `value`". On `f + 1`
    /// matching receipts a node decides too; on `2f + 1` it halts. This
    /// decouples halting from the coin (a decider cannot simply stop
    /// after a fixed number of rounds — followers only decide when the
    /// coin matches, which has an unbounded tail).
    Finish {
        /// The decided value.
        value: Value,
    },
}

impl MmrMessage {
    /// The round this message belongs to ([`MmrMessage::Finish`] is
    /// round-less and reports round 0's placeholder, `Round::FIRST`).
    pub fn round(&self) -> Round {
        match *self {
            MmrMessage::Bval { round, .. } | MmrMessage::Aux { round, .. } => round,
            MmrMessage::Finish { .. } => Round::FIRST,
        }
    }

    /// Short label of the message kind, for metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            MmrMessage::Bval { .. } => "bval",
            MmrMessage::Aux { .. } => "aux",
            MmrMessage::Finish { .. } => "finish",
        }
    }
}

impl fmt::Display for MmrMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmrMessage::Bval { round, value } => write!(f, "bval({round}, {value})"),
            MmrMessage::Aux { round, value } => write!(f, "aux({round}, {value})"),
            MmrMessage::Finish { value } => write!(f, "finish({value})"),
        }
    }
}

/// Per-round bookkeeping.
#[derive(Clone, Debug, Default)]
struct RoundState {
    /// Distinct senders of `BVAL(r, v)`, per value.
    bval_from: [BTreeSet<NodeId>; 2],
    /// Whether we have (re-)broadcast `BVAL(r, v)`, per value.
    bval_sent: [bool; 2],
    /// Values accepted into `bin_values` (2f+1 BVAL supporters).
    bin_values: [bool; 2],
    /// First AUX value per sender.
    aux_from: BTreeMap<NodeId, Value>,
    /// Whether we have broadcast our AUX for this round.
    aux_sent: bool,
}

/// One node of the MMR binary agreement protocol, packaged as a
/// [`Process`].
///
/// Use a [`bft_coin::CommonCoin`] for the documented expected-O(1)
/// latency; with purely local coins the adversary can delay (though never
/// corrupt) termination.
#[derive(Clone, Debug)]
pub struct MmrProcess<C> {
    config: Config,
    me: NodeId,
    coin: C,
    input: Value,
    estimate: Value,
    round: Round,
    started: bool,
    decided: Option<Value>,
    decided_round: Option<Round>,
    halted: bool,
    max_rounds: u64,
    rounds: BTreeMap<Round, RoundState>,
    finish_from: BTreeMap<NodeId, Value>,
    finish_sent: bool,
    obs: Obs,
}

impl<C: CoinScheme> MmrProcess<C> {
    /// Creates a participant with the given input. `max_rounds` is the
    /// liveness safety valve.
    pub fn new(config: Config, me: NodeId, input: Value, coin: C, max_rounds: u64) -> Self {
        MmrProcess {
            config,
            me,
            coin,
            input,
            estimate: input,
            round: Round::FIRST,
            started: false,
            decided: None,
            decided_round: None,
            halted: false,
            max_rounds,
            rounds: BTreeMap::new(),
            finish_from: BTreeMap::new(),
            finish_sent: false,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observer; the node emits round/coin/decision events
    /// through it.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The decided value, once any.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    /// The round this node decided in, if it has.
    pub fn decided_round(&self) -> Option<Round> {
        self.decided_round
    }

    fn broadcast_bval(
        &mut self,
        round: Round,
        value: Value,
        out: &mut Vec<Effect<MmrMessage, Value>>,
    ) {
        let state = self.rounds.entry(round).or_default();
        if !state.bval_sent[value.index()] {
            state.bval_sent[value.index()] = true;
            out.push(Effect::Broadcast { msg: MmrMessage::Bval { round, value } });
        }
    }

    /// Records a decision and starts the Finish gadget.
    fn decide(&mut self, v: Value, round: Round, out: &mut Vec<Effect<MmrMessage, Value>>) {
        if self.decided.is_none() {
            self.decided = Some(v);
            self.decided_round = Some(round);
            self.obs.emit(self.me, || ObsEvent::Decided { round: round.get(), value: v });
            out.push(Effect::Output(v));
        }
        if !self.finish_sent {
            self.finish_sent = true;
            out.push(Effect::Broadcast { msg: MmrMessage::Finish { value: v } });
        }
    }

    /// Processes the Finish tallies: adopt on f+1, halt on 2f+1.
    fn check_finish(&mut self, out: &mut Vec<Effect<MmrMessage, Value>>) {
        for v in Value::BOTH {
            let count = self.finish_from.values().filter(|x| **x == v).count();
            if count >= self.config.bv_amplify_threshold() && self.decided.is_none() {
                // At least one correct node decided v: safe to adopt.
                let round = self.round;
                self.decide(v, round, out);
            }
            if count >= self.config.bv_accept_threshold() && !self.halted {
                // Enough correct nodes have decided (and broadcast
                // Finish) that everyone will reach this threshold too.
                self.halted = true;
                out.push(Effect::Halt);
            }
        }
    }

    /// Drives the current round as far as the received messages allow.
    fn try_advance(&mut self, out: &mut Vec<Effect<MmrMessage, Value>>) {
        if !self.started || self.halted {
            return;
        }
        let amplify_at = self.config.bv_amplify_threshold();
        let accept_at = self.config.bv_accept_threshold();
        let q = self.config.quorum();
        loop {
            let round = self.round;
            // BV-broadcast amplification and acceptance for the current
            // round (buffered future-round messages are handled when we
            // get there).
            let state = self.rounds.entry(round).or_default();
            let mut amplify: Vec<Value> = Vec::new();
            for v in Value::BOTH {
                let supporters = state.bval_from[v.index()].len();
                if supporters >= amplify_at && !state.bval_sent[v.index()] {
                    amplify.push(v);
                }
                if supporters >= accept_at {
                    state.bin_values[v.index()] = true;
                }
            }
            for v in amplify {
                self.broadcast_bval(round, v, out);
            }

            let state = self.rounds.entry(round).or_default();
            // Announce the first accepted value once.
            if !state.aux_sent {
                if let Some(v) = Value::BOTH.into_iter().find(|v| state.bin_values[v.index()]) {
                    state.aux_sent = true;
                    out.push(Effect::Broadcast { msg: MmrMessage::Aux { round, value: v } });
                }
            }

            // Round completion: n − f AUX messages whose values are all
            // locally accepted.
            let accepted = state.bin_values;
            let supporting: Vec<Value> =
                state.aux_from.values().copied().filter(|v| accepted[v.index()]).collect();
            if supporting.len() < q {
                return;
            }
            let mut vals: BTreeSet<Value> = supporting.into_iter().collect();
            // Keep exactly the announced-and-accepted values (vals is
            // non-empty because supporting.len() ≥ q ≥ 1).
            debug_assert!(!vals.is_empty());

            let s = self.coin.flip(round.get());
            {
                let (value, scheme) = (s, self.coin.name());
                self.obs.emit(self.me, || ObsEvent::CoinFlipped {
                    round: round.get(),
                    value,
                    scheme,
                });
            }
            if vals.len() == 1 {
                // `supporting.len() ≥ q ≥ 1` makes this set non-empty; if
                // the invariant ever breaks, keep the coin estimate and
                // report instead of panicking mid-protocol.
                let Some(v) = vals.pop_first() else {
                    let detail =
                        ProtocolError::EmptyQuorumValueSet { round: round.get() }.to_string();
                    self.obs.emit(self.me, || ObsEvent::InvariantViolated {
                        round: round.get(),
                        detail,
                    });
                    self.estimate = s;
                    return;
                };
                self.estimate = v;
                if v == s && self.decided.is_none() {
                    self.decide(v, round, out);
                }
            } else {
                self.estimate = s;
            }
            if self.halted {
                return;
            }

            if round.get() >= self.max_rounds {
                self.halted = true;
                out.push(Effect::Halt);
                return;
            }
            self.obs.emit(self.me, || ObsEvent::RoundCompleted { round: round.get() });
            self.round = round.next();
            let next = self.round.get();
            self.obs.emit(self.me, || ObsEvent::RoundStarted { round: next });
            self.rounds.retain(|r, _| *r >= round); // GC old rounds
            let est = self.estimate;
            self.broadcast_bval(self.round, est, out);
        }
    }
}

impl<C: CoinScheme> Process for MmrProcess<C> {
    type Msg = MmrMessage;
    type Output = Value;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self) -> Vec<Effect<MmrMessage, Value>> {
        if self.started {
            return Vec::new();
        }
        self.started = true;
        self.obs.emit(self.me, || ObsEvent::RoundStarted { round: Round::FIRST.get() });
        let mut out = Vec::new();
        let input = self.input;
        self.broadcast_bval(Round::FIRST, input, &mut out);
        self.try_advance(&mut out);
        out
    }

    fn on_message(&mut self, from: NodeId, msg: &MmrMessage) -> Vec<Effect<MmrMessage, Value>> {
        if self.halted || !self.config.contains(from) {
            return Vec::new();
        }
        let mut out = Vec::new();
        match *msg {
            MmrMessage::Bval { value, .. } => {
                let state = self.rounds.entry(msg.round()).or_default();
                state.bval_from[value.index()].insert(from);
            }
            MmrMessage::Aux { value, .. } => {
                let state = self.rounds.entry(msg.round()).or_default();
                state.aux_from.entry(from).or_insert(value);
            }
            MmrMessage::Finish { value } => {
                self.finish_from.entry(from).or_insert(value);
                self.check_finish(&mut out);
            }
        }
        self.try_advance(&mut out);
        out
    }

    fn output(&self) -> Option<Value> {
        self.decided
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn round(&self) -> u64 {
        self.decided_round.map(|r| r.get()).unwrap_or_else(|| self.round.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::{CommonCoin, LocalCoin};
    use bft_sim::{StopReason, UniformDelay, World, WorldConfig};

    fn run(n: usize, inputs: &[Value], seed: u64) -> bft_sim::Report<Value> {
        let cfg = Config::max_resilience(n).unwrap();
        let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, seed));
        for id in cfg.nodes() {
            world.add_process(Box::new(MmrProcess::new(
                cfg,
                id,
                inputs[id.index()],
                CommonCoin::new(seed, 0),
                10_000,
            )));
        }
        world.run()
    }

    #[test]
    fn unanimous_inputs_decide() {
        for seed in 0..10 {
            let report = run(4, &[Value::One; 4], seed);
            assert_eq!(report.stop, StopReason::Completed, "seed {seed}");
            assert_eq!(report.unanimous_output(), Some(Value::One), "seed {seed}");
        }
    }

    #[test]
    fn mixed_inputs_agree() {
        for seed in 0..10 {
            let inputs: Vec<Value> = (0..7).map(|i| Value::from_bool(i % 2 == 0)).collect();
            let report = run(7, &inputs, seed);
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.agreement_holds(), "seed {seed}");
        }
    }

    #[test]
    fn validity_under_unanimity_zero() {
        let report = run(7, &[Value::Zero; 7], 3);
        assert_eq!(report.unanimous_output(), Some(Value::Zero));
    }

    #[test]
    fn decides_in_few_rounds_with_common_coin() {
        // With a common coin the expected round count is constant; assert
        // the mean (robust across RNG streams) plus a loose worst-case
        // valve — individual seeds can legitimately draw a slow schedule.
        let mut worst = 0;
        let mut total = 0;
        let seeds = 10;
        for seed in 0..seeds {
            let inputs: Vec<Value> = (0..7).map(|i| Value::from_bool(i < 3)).collect();
            let report = run(7, &inputs, seed);
            let round = report.decision_round().expect("decided");
            worst = worst.max(round);
            total += round;
        }
        let mean = total as f64 / seeds as f64;
        assert!(mean <= 4.0, "common-coin MMR should be fast on average, mean {mean}");
        assert!(worst <= 12, "common-coin MMR worst case blew up, worst {worst}");
    }

    #[test]
    fn message_complexity_is_quadratic_per_round() {
        // Unanimous inputs, one round to decide: total messages must be
        // O(n²) — BVAL + AUX broadcasts only.
        let r4 = run(4, &[Value::One; 4], 1);
        let r8 = run(8, &[Value::One; 8], 1);
        let m4 = r4.metrics.sent as f64;
        let m8 = r8.metrics.sent as f64;
        let rounds4 = r4.max_round.max(1) as f64;
        let rounds8 = r8.max_round.max(1) as f64;
        let exponent = ((m8 / rounds8) / (m4 / rounds4)).ln() / 2f64.ln();
        assert!(
            (1.5..=2.6).contains(&exponent),
            "MMR per-round exponent should be ≈2, got {exponent:.2}"
        );
    }

    #[test]
    fn local_coin_still_safe() {
        // With local coins MMR may be slow but must stay safe whenever it
        // does decide.
        let cfg = Config::new(4, 1).unwrap();
        let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 10, 9));
        for id in cfg.nodes() {
            let input = Value::from_bool(id.index() < 2);
            world.add_process(Box::new(MmrProcess::new(
                cfg,
                id,
                input,
                LocalCoin::new(9, id),
                200,
            )));
        }
        let report = world.run();
        assert!(report.agreement_holds());
    }

    #[test]
    fn tolerates_silent_faults() {
        let cfg = Config::new(7, 2).unwrap();
        struct SilentMmr {
            id: NodeId,
        }
        impl Process for SilentMmr {
            type Msg = MmrMessage;
            type Output = Value;
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self) -> Vec<Effect<MmrMessage, Value>> {
                Vec::new()
            }
            fn on_message(
                &mut self,
                _f: NodeId,
                _m: &MmrMessage,
            ) -> Vec<Effect<MmrMessage, Value>> {
                Vec::new()
            }
        }
        let mut world = World::new(WorldConfig::new(7), UniformDelay::new(1, 15, 5));
        for id in cfg.nodes() {
            if id.index() < 2 {
                world.add_faulty_process(Box::new(SilentMmr { id }));
            } else {
                world.add_process(Box::new(MmrProcess::new(
                    cfg,
                    id,
                    Value::One,
                    CommonCoin::new(5, 0),
                    10_000,
                )));
            }
        }
        let report = world.run();
        assert_eq!(report.unanimous_output(), Some(Value::One));
    }

    #[test]
    fn message_accessors() {
        let m = MmrMessage::Bval { round: Round::new(2), value: Value::One };
        assert_eq!(m.round(), Round::new(2));
        assert_eq!(m.kind(), "bval");
        assert_eq!(m.to_string(), "bval(r2, 1)");
        let a = MmrMessage::Aux { round: Round::FIRST, value: Value::Zero };
        assert_eq!(a.kind(), "aux");
        assert_eq!(a.to_string(), "aux(r1, 0)");
    }
}
