//! Ben-Or's randomized consensus (PODC 1983) — the baseline Bracha's
//! paper improves on.
//!
//! Ben-Or's "Protocol B" is the first asynchronous Byzantine agreement
//! protocol, but it sends raw point-to-point messages (no reliable
//! broadcast, no validation), so a Byzantine node can report different
//! values to different peers. The price is resilience: safety needs
//! `n > 5f` instead of Bracha's optimal `n > 3f`.
//!
//! Round `r` at node `p` (with `f` the fault bound):
//!
//! 1. **Report** — send `(report, r, x)` to all; wait for `n − f` round-`r`
//!    reports. If more than `(n+f)/2` carry the same `v`, propose `v`;
//!    otherwise propose `⊥`.
//! 2. **Proposal** — send `(proposal, r, v or ⊥)` to all; wait for `n − f`
//!    round-`r` proposals. With more than `(n+f)/2` proposals for `v`
//!    **decide** `v`; with at least `f + 1` adopt `x := v`; otherwise
//!    `x := coin()`.
//!
//! The experiment harness (T5) runs this protocol side by side with
//! Bracha's: at `f ≈ n/5` both are safe; between `n/5` and `n/3` Ben-Or
//! loses agreement under a double-talking adversary while Bracha does not.
//!
//! # Example
//!
//! ```
//! use bft_coin::LocalCoin;
//! use bft_sim::{UniformDelay, World, WorldConfig};
//! use bft_types::{Config, Value};
//! use bracha::benor::BenOrProcess;
//!
//! # fn main() -> Result<(), bft_types::ConfigError> {
//! let n = 6;
//! let cfg = Config::new(n, 1)?; // n > 5f
//! let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 10, 3));
//! for id in cfg.nodes() {
//!     world.add_process(Box::new(BenOrProcess::new(
//!         cfg, id, Value::One, LocalCoin::new(3, id), 10_000,
//!     )));
//! }
//! let report = world.run();
//! assert_eq!(report.unanimous_output(), Some(Value::One));
//! # Ok(())
//! # }
//! ```

use bft_coin::CoinScheme;
use bft_obs::{Event as ObsEvent, Obs};
use bft_types::{Config, Effect, NodeId, Process, Round, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A wire message of Ben-Or's protocol (sent point-to-point, no reliable
/// broadcast).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenOrMessage {
    /// Phase 1: the sender's current estimate.
    Report {
        /// The sender's round.
        round: Round,
        /// The sender's estimate.
        value: Value,
    },
    /// Phase 2: the sender's proposal (`None` = ⊥, no super-majority
    /// seen).
    Proposal {
        /// The sender's round.
        round: Round,
        /// The proposed value, if any.
        value: Option<Value>,
    },
}

impl BenOrMessage {
    /// The round this message belongs to.
    pub fn round(&self) -> Round {
        match *self {
            BenOrMessage::Report { round, .. } | BenOrMessage::Proposal { round, .. } => round,
        }
    }
}

impl fmt::Display for BenOrMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenOrMessage::Report { round, value } => write!(f, "report({round}, {value})"),
            BenOrMessage::Proposal { round, value: Some(v) } => {
                write!(f, "proposal({round}, {v})")
            }
            BenOrMessage::Proposal { round, value: None } => write!(f, "proposal({round}, ⊥)"),
        }
    }
}

/// Which phase of a round the node is waiting in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Report,
    Proposal,
}

/// Per-round message bookkeeping: first message per sender per phase.
#[derive(Clone, Debug, Default)]
struct RoundMsgs {
    reports: BTreeMap<NodeId, Value>,
    proposals: BTreeMap<NodeId, Option<Value>>,
}

/// One node of Ben-Or's protocol, packaged directly as a [`Process`].
#[derive(Clone, Debug)]
pub struct BenOrProcess<C> {
    config: Config,
    me: NodeId,
    coin: C,
    input: Value,
    estimate: Value,
    round: Round,
    phase: Phase,
    started: bool,
    decided: Option<Value>,
    decided_round: Option<Round>,
    halted: bool,
    max_rounds: u64,
    msgs: BTreeMap<Round, RoundMsgs>,
    obs: Obs,
}

impl<C: CoinScheme> BenOrProcess<C> {
    /// Creates a participant with the given input. `max_rounds` is the
    /// liveness safety valve (halt undecided beyond it).
    pub fn new(config: Config, me: NodeId, input: Value, coin: C, max_rounds: u64) -> Self {
        BenOrProcess {
            config,
            me,
            coin,
            input,
            estimate: input,
            round: Round::FIRST,
            phase: Phase::Report,
            started: false,
            decided: None,
            decided_round: None,
            halted: false,
            max_rounds,
            msgs: BTreeMap::new(),
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observer; the node emits round/coin/decision events
    /// through it.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The decided value, once any.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    /// The round this node decided in, if it has.
    pub fn decided_round(&self) -> Option<Round> {
        self.decided_round
    }

    /// `> (n+f)/2` — the super-majority threshold for proposing and for
    /// deciding.
    fn super_majority(&self) -> usize {
        self.config.super_majority_threshold()
    }

    fn try_advance(&mut self, out: &mut Vec<Effect<BenOrMessage, Value>>) {
        let q = self.config.quorum();
        loop {
            if self.halted {
                return;
            }
            let round = self.round;
            let Some(rm) = self.msgs.get(&round) else { return };
            match self.phase {
                Phase::Report => {
                    if rm.reports.len() < q {
                        return;
                    }
                    let mut counts = [0usize; 2];
                    for v in rm.reports.values().take(q) {
                        counts[v.index()] += 1;
                    }
                    let threshold = self.super_majority();
                    let proposal = Value::BOTH.into_iter().find(|v| counts[v.index()] >= threshold);
                    self.phase = Phase::Proposal;
                    out.push(Effect::Broadcast {
                        msg: BenOrMessage::Proposal { round, value: proposal },
                    });
                }
                Phase::Proposal => {
                    if rm.proposals.len() < q {
                        return;
                    }
                    let mut counts = [0usize; 2];
                    for v in rm.proposals.values().take(q).flatten() {
                        counts[v.index()] += 1;
                    }
                    let [zeros, ones] = counts;
                    let (w, c) =
                        if ones >= zeros { (Value::One, ones) } else { (Value::Zero, zeros) };
                    if c >= self.super_majority() {
                        self.estimate = w;
                        if self.decided.is_none() {
                            self.decided = Some(w);
                            self.decided_round = Some(round);
                            self.obs.emit(self.me, || ObsEvent::Decided {
                                round: round.get(),
                                value: w,
                            });
                            out.push(Effect::Output(w));
                        }
                    } else if c >= self.config.ready_threshold() {
                        self.estimate = w;
                    } else {
                        self.estimate = self.coin.flip(round.get());
                        let (value, scheme) = (self.estimate, self.coin.name());
                        self.obs.emit(self.me, || ObsEvent::CoinFlipped {
                            round: round.get(),
                            value,
                            scheme,
                        });
                    }
                    // Termination gadget: participate two extra rounds
                    // after deciding so laggards can fill their quorums.
                    let done =
                        self.decided_round.map(|dr| round.get() >= dr.get() + 2).unwrap_or(false);
                    if done || round.get() >= self.max_rounds {
                        self.halted = true;
                        out.push(Effect::Halt);
                        return;
                    }
                    self.obs.emit(self.me, || ObsEvent::RoundCompleted { round: round.get() });
                    self.round = round.next();
                    self.phase = Phase::Report;
                    let next = self.round.get();
                    self.obs.emit(self.me, || ObsEvent::RoundStarted { round: next });
                    self.msgs.retain(|r, _| *r >= round); // GC old rounds
                    out.push(Effect::Broadcast {
                        msg: BenOrMessage::Report { round: self.round, value: self.estimate },
                    });
                }
            }
        }
    }
}

impl<C: CoinScheme> Process for BenOrProcess<C> {
    type Msg = BenOrMessage;
    type Output = Value;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self) -> Vec<Effect<BenOrMessage, Value>> {
        if self.started {
            return Vec::new();
        }
        self.started = true;
        let round = self.round.get();
        self.obs.emit(self.me, || ObsEvent::RoundStarted { round });
        let mut out = vec![Effect::Broadcast {
            msg: BenOrMessage::Report { round: self.round, value: self.input },
        }];
        self.try_advance(&mut out);
        out
    }

    fn on_message(&mut self, from: NodeId, msg: &BenOrMessage) -> Vec<Effect<BenOrMessage, Value>> {
        if self.halted || !self.config.contains(from) {
            return Vec::new();
        }
        let rm = self.msgs.entry(msg.round()).or_default();
        match *msg {
            BenOrMessage::Report { value, .. } => {
                rm.reports.entry(from).or_insert(value);
            }
            BenOrMessage::Proposal { value, .. } => {
                rm.proposals.entry(from).or_insert(value);
            }
        }
        let mut out = Vec::new();
        self.try_advance(&mut out);
        out
    }

    fn output(&self) -> Option<Value> {
        self.decided
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn round(&self) -> u64 {
        // Report the decision round once decided (participation continues
        // two extra rounds as a termination gadget).
        self.decided_round.map(|r| r.get()).unwrap_or_else(|| self.round.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::LocalCoin;
    use bft_sim::{StopReason, UniformDelay, World, WorldConfig};

    fn run(n: usize, f: usize, inputs: &[Value], seed: u64) -> bft_sim::Report<Value> {
        let cfg = Config::new_unchecked_resilience(n, f).unwrap();
        let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 20, seed));
        for id in cfg.nodes() {
            world.add_process(Box::new(BenOrProcess::new(
                cfg,
                id,
                inputs[id.index()],
                LocalCoin::new(seed, id),
                10_000,
            )));
        }
        world.run()
    }

    #[test]
    fn unanimous_inputs_decide_round_one() {
        for seed in 0..10 {
            let report = run(6, 1, &[Value::One; 6], seed);
            assert_eq!(report.stop, StopReason::Completed, "seed {seed}");
            assert_eq!(report.unanimous_output(), Some(Value::One));
            assert_eq!(report.decision_round(), Some(1));
        }
    }

    #[test]
    fn mixed_inputs_agree_without_faults() {
        for seed in 0..10 {
            let inputs: Vec<Value> =
                (0..6).map(|i| if i % 2 == 0 { Value::One } else { Value::Zero }).collect();
            let report = run(6, 1, &inputs, seed);
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.agreement_holds(), "seed {seed}");
        }
    }

    #[test]
    fn message_round_accessor() {
        assert_eq!(
            BenOrMessage::Report { round: Round::new(3), value: Value::One }.round(),
            Round::new(3)
        );
        assert_eq!(
            BenOrMessage::Proposal { round: Round::new(2), value: None }.round(),
            Round::new(2)
        );
    }

    #[test]
    fn display_formats() {
        let r = BenOrMessage::Report { round: Round::FIRST, value: Value::Zero };
        assert_eq!(r.to_string(), "report(r1, 0)");
        let p = BenOrMessage::Proposal { round: Round::FIRST, value: None };
        assert_eq!(p.to_string(), "proposal(r1, ⊥)");
    }

    #[test]
    fn duplicate_messages_from_same_sender_ignored() {
        let cfg = Config::new(6, 1).unwrap();
        let mut p = BenOrProcess::new(
            cfg,
            NodeId::new(0),
            Value::One,
            LocalCoin::new(0, NodeId::new(0)),
            100,
        );
        let _ = p.on_start();
        // Node 1 sends five conflicting reports; only the first counts, so
        // no quorum of 5 distinct reporters is reached (we have 1 + self=0
        // ... self's own report arrives via loopback in a real transport;
        // here only node 1's first message is recorded).
        for _ in 0..5 {
            let _ = p.on_message(
                NodeId::new(1),
                &BenOrMessage::Report { round: Round::FIRST, value: Value::Zero },
            );
        }
        assert_eq!(p.msgs[&Round::FIRST].reports.len(), 1);
    }
}
