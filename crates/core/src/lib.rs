//! Bracha's asynchronous randomized Byzantine consensus — the PODC 1984
//! protocol that circumvents FLP with optimal resilience `n ≥ 3f + 1`.
//!
//! # The protocol
//!
//! Each node holds a binary estimate and proceeds in rounds of three steps,
//! every message being disseminated by [reliable broadcast](bft_rbc) (so a
//! node sends exactly one payload per `(round, step)` and cannot
//! equivocate) and *validated* before use (so a Byzantine node can only
//! send payloads that some correct node could have sent — see
//! [`validation`]):
//!
//! 1. **Initial** — broadcast the estimate; wait for `n − f` validated
//!    Initial messages; adopt the majority value.
//! 2. **Echo** — broadcast the new estimate; wait for `n − f` validated
//!    Echo messages; if more than `n/2` carry the same value `w`, mark the
//!    estimate *D-flagged* (locked) on `w`.
//! 3. **Ready** — broadcast the (possibly flagged) estimate; wait for
//!    `n − f` validated Ready messages; with `2f + 1` D-flags on `w`
//!    **decide** `w`; with `f + 1` adopt `w`; otherwise flip a
//!    [coin](bft_coin).
//!
//! Safety is deterministic (agreement + validity always hold); liveness is
//! probabilistic (termination with probability 1) — exactly the corner of
//! FLP the paper occupies. With a *common* coin instead of local coins the
//! expected number of rounds becomes constant; this crate treats the coin
//! as an injected [`CoinScheme`](bft_coin::CoinScheme) so the same state
//! machine covers both the 1984 protocol and its modern descendants.
//!
//! # Crate contents
//!
//! * [`BrachaNode`] / [`BrachaProcess`] — the consensus state machine and
//!   its transport adapter.
//! * [`validation`] — the message-validation engine (the paper's second
//!   key idea) with its existential quorum-subset predicates.
//! * [`benor`] — Ben-Or's 1983 protocol (`n > 5f`), the baseline the paper
//!   improves on.
//! * [`acs`] + [`multivalue`] — the "basis of modern async BFT" layer:
//!   asynchronous common subset (HoneyBadger-style) and multi-value
//!   consensus built from `n` reliable broadcasts and `n` binary
//!   agreement instances.
//!
//! # Example
//!
//! Run a 4-node cluster to agreement under the simulator:
//!
//! ```
//! use bft_coin::LocalCoin;
//! use bft_sim::{UniformDelay, World, WorldConfig};
//! use bft_types::{Config, NodeId, Value};
//! use bracha::{BrachaOptions, BrachaProcess};
//!
//! # fn main() -> Result<(), bft_types::ConfigError> {
//! let cfg = Config::new(4, 1)?;
//! let mut world = World::new(WorldConfig::new(4), UniformDelay::new(1, 10, 7));
//! for id in cfg.nodes() {
//!     let input = if id.index() % 2 == 0 { Value::One } else { Value::Zero };
//!     let coin = LocalCoin::new(7, id);
//!     world.add_process(Box::new(BrachaProcess::new(
//!         cfg, id, input, coin, BrachaOptions::default(),
//!     )));
//! }
//! let report = world.run();
//! assert!(report.all_correct_decided());
//! assert!(report.agreement_holds());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
// Quorum thresholds are deliberately spelled `f + 1`, `2f + 1`, `3f + 1`
// to match the paper's statements, even where clippy prefers `> f`.
#![allow(clippy::int_plus_one)]
#![warn(missing_docs)]

pub mod acs;
pub mod benor;
pub mod crash;
pub mod mmr;
pub mod multivalue;
pub mod validation;

mod engine;
mod msg;
mod process;

pub use engine::{BrachaNode, BrachaOptions, Transition};
pub use msg::{classify_wire, StepPayload, StepTag, Wire, WireClass};
pub use process::BrachaProcess;
