//! The crash-fault baseline: randomized consensus tolerating `f < n/2`
//! *fail-stop* faults (Ben-Or 1983, crash variant; cf. Bracha & Toueg's
//! companion resilience analysis).
//!
//! Byzantine tolerance is expensive: Bracha's protocol pays reliable
//! broadcast and validation to get `n ≥ 3f + 1`. If nodes can only
//! *crash* (stop permanently, never lie), a much simpler and cheaper
//! protocol reaches `n ≥ 2f + 1`:
//!
//! 1. **Report** — send `(report, r, x)` to all; wait for `n − f`
//!    round-`r` reports; if more than `n/2` carry the same `v`, propose
//!    `v`, else propose `⊥`.
//! 2. **Proposal** — send `(proposal, r, ·)`; wait for `n − f`; with
//!    `f + 1` proposals for `v` **decide** `v`; with at least one
//!    proposal adopt `v`; otherwise flip the coin.
//!
//! Safety rests on counting *distinct senders*: a crashed node never
//! reports two values, so two different values can never both exceed
//! `n/2`. A single Byzantine node voids that argument — the experiments
//! contrast the fault models.
//!
//! # Example
//!
//! ```
//! use bft_coin::LocalCoin;
//! use bft_sim::{UniformDelay, World, WorldConfig};
//! use bft_types::{Config, Value};
//! use bracha::crash::CrashConsensus;
//!
//! # fn main() -> Result<(), bft_types::ConfigError> {
//! let n = 5;
//! let cfg = Config::new_unchecked_resilience(n, 2)?; // f < n/2 !
//! let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 10, 1));
//! for id in cfg.nodes() {
//!     world.add_process(Box::new(CrashConsensus::new(
//!         cfg, id, Value::One, LocalCoin::new(1, id), 10_000,
//!     )));
//! }
//! let report = world.run();
//! assert_eq!(report.unanimous_output(), Some(Value::One));
//! # Ok(())
//! # }
//! ```

use crate::benor::BenOrMessage;
use bft_coin::CoinScheme;
use bft_types::{Config, Effect, NodeId, Process, Round, Value};
use std::collections::BTreeMap;

/// Per-round message bookkeeping (first message per sender per phase).
#[derive(Clone, Debug, Default)]
struct RoundMsgs {
    reports: BTreeMap<NodeId, Value>,
    proposals: BTreeMap<NodeId, Option<Value>>,
}

/// Which phase of a round the node is waiting in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Report,
    Proposal,
}

/// One node of the crash-fault consensus protocol (`f < n/2`), packaged
/// as a [`Process`]. Shares [`BenOrMessage`] on the wire with the
/// Byzantine Ben-Or baseline.
#[derive(Clone, Debug)]
pub struct CrashConsensus<C> {
    config: Config,
    me: NodeId,
    coin: C,
    input: Value,
    estimate: Value,
    round: Round,
    phase: Phase,
    started: bool,
    decided: Option<Value>,
    decided_round: Option<Round>,
    halted: bool,
    max_rounds: u64,
    msgs: BTreeMap<Round, RoundMsgs>,
}

impl<C: CoinScheme> CrashConsensus<C> {
    /// Creates a participant.
    ///
    /// Note the resilience contract differs from the Byzantine
    /// protocols: `config` may carry `f` up to `⌈n/2⌉ − 1` (construct it
    /// with [`Config::new_unchecked_resilience`]); the *fault model* must
    /// be crash-only for the guarantees to hold.
    pub fn new(config: Config, me: NodeId, input: Value, coin: C, max_rounds: u64) -> Self {
        CrashConsensus {
            config,
            me,
            coin,
            input,
            estimate: input,
            round: Round::FIRST,
            phase: Phase::Report,
            started: false,
            decided: None,
            decided_round: None,
            halted: false,
            max_rounds,
            msgs: BTreeMap::new(),
        }
    }

    /// The decided value, once any.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    /// The round this node decided in, if it has.
    pub fn decided_round(&self) -> Option<Round> {
        self.decided_round
    }

    fn try_advance(&mut self, out: &mut Vec<Effect<BenOrMessage, Value>>) {
        let q = self.config.quorum();
        let majority = self.config.majority_threshold();
        loop {
            if self.halted {
                return;
            }
            let round = self.round;
            let Some(rm) = self.msgs.get(&round) else { return };
            match self.phase {
                Phase::Report => {
                    if rm.reports.len() < q {
                        return;
                    }
                    let mut counts = [0usize; 2];
                    for v in rm.reports.values().take(q) {
                        counts[v.index()] += 1;
                    }
                    let proposal = Value::BOTH.into_iter().find(|v| counts[v.index()] >= majority);
                    self.phase = Phase::Proposal;
                    out.push(Effect::Broadcast {
                        msg: BenOrMessage::Proposal { round, value: proposal },
                    });
                }
                Phase::Proposal => {
                    if rm.proposals.len() < q {
                        return;
                    }
                    let mut counts = [0usize; 2];
                    for v in rm.proposals.values().take(q).flatten() {
                        counts[v.index()] += 1;
                    }
                    let [zeros, ones] = counts;
                    let (w, c) =
                        if ones >= zeros { (Value::One, ones) } else { (Value::Zero, zeros) };
                    if c >= self.config.ready_threshold() {
                        self.estimate = w;
                        if self.decided.is_none() {
                            self.decided = Some(w);
                            self.decided_round = Some(round);
                            out.push(Effect::Output(w));
                        }
                    } else if c >= 1 {
                        self.estimate = w;
                    } else {
                        self.estimate = self.coin.flip(round.get());
                    }
                    let done =
                        self.decided_round.map(|dr| round.get() >= dr.get() + 2).unwrap_or(false);
                    if done || round.get() >= self.max_rounds {
                        self.halted = true;
                        out.push(Effect::Halt);
                        return;
                    }
                    self.round = round.next();
                    self.phase = Phase::Report;
                    self.msgs.retain(|r, _| *r >= round);
                    out.push(Effect::Broadcast {
                        msg: BenOrMessage::Report { round: self.round, value: self.estimate },
                    });
                }
            }
        }
    }
}

impl<C: CoinScheme> Process for CrashConsensus<C> {
    type Msg = BenOrMessage;
    type Output = Value;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self) -> Vec<Effect<BenOrMessage, Value>> {
        if self.started {
            return Vec::new();
        }
        self.started = true;
        let mut out = vec![Effect::Broadcast {
            msg: BenOrMessage::Report { round: self.round, value: self.input },
        }];
        self.try_advance(&mut out);
        out
    }

    fn on_message(&mut self, from: NodeId, msg: &BenOrMessage) -> Vec<Effect<BenOrMessage, Value>> {
        if self.halted || !self.config.contains(from) {
            return Vec::new();
        }
        let rm = self.msgs.entry(msg.round()).or_default();
        match *msg {
            BenOrMessage::Report { value, .. } => {
                rm.reports.entry(from).or_insert(value);
            }
            BenOrMessage::Proposal { value, .. } => {
                rm.proposals.entry(from).or_insert(value);
            }
        }
        let mut out = Vec::new();
        self.try_advance(&mut out);
        out
    }

    fn output(&self) -> Option<Value> {
        self.decided
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn round(&self) -> u64 {
        self.decided_round.map(|r| r.get()).unwrap_or_else(|| self.round.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_coin::LocalCoin;
    use bft_sim::{UniformDelay, World, WorldConfig};

    struct Crashed {
        id: NodeId,
    }
    impl Process for Crashed {
        type Msg = BenOrMessage;
        type Output = Value;
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_start(&mut self) -> Vec<Effect<BenOrMessage, Value>> {
            Vec::new()
        }
        fn on_message(
            &mut self,
            _f: NodeId,
            _m: &BenOrMessage,
        ) -> Vec<Effect<BenOrMessage, Value>> {
            Vec::new()
        }
    }

    fn run(
        n: usize,
        f: usize,
        crashed: usize,
        inputs: &[Value],
        seed: u64,
    ) -> bft_sim::Report<Value> {
        let cfg = Config::new_unchecked_resilience(n, f).unwrap();
        let mut world = World::new(WorldConfig::new(n), UniformDelay::new(1, 15, seed));
        for id in cfg.nodes() {
            if id.index() < crashed {
                world.add_faulty_process(Box::new(Crashed { id }));
            } else {
                world.add_process(Box::new(CrashConsensus::new(
                    cfg,
                    id,
                    inputs[id.index()],
                    LocalCoin::new(seed, id),
                    5_000,
                )));
            }
        }
        world.run()
    }

    /// f = 2 of n = 5 — far beyond the Byzantine bound (⌊4/3⌋ = 1), fine
    /// for crash faults.
    #[test]
    fn tolerates_minority_crashes() {
        for seed in 0..10 {
            let inputs = [Value::One, Value::Zero, Value::One, Value::Zero, Value::One];
            let report = run(5, 2, 2, &inputs, seed);
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.agreement_holds(), "seed {seed}");
        }
    }

    #[test]
    fn unanimity_decides_round_one() {
        let report = run(5, 2, 0, &[Value::Zero; 5], 3);
        assert_eq!(report.unanimous_output(), Some(Value::Zero));
        assert_eq!(report.decision_round(), Some(1));
    }

    #[test]
    fn validity_with_crashes() {
        for seed in 0..10 {
            let report = run(7, 3, 3, &[Value::One; 7], seed);
            assert_eq!(
                report.unanimous_output(),
                Some(Value::One),
                "seed {seed}: crashed minority must not affect validity"
            );
        }
    }

    #[test]
    fn mixed_inputs_agree_with_crashes() {
        for seed in 0..10 {
            let inputs: Vec<Value> = (0..7).map(|i| Value::from_bool(i % 2 == 0)).collect();
            let report = run(7, 3, 2, &inputs, seed);
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.agreement_holds(), "seed {seed}");
        }
    }
}
