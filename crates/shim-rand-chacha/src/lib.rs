//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides a [`ChaCha8Rng`]-shaped type: seedable from a 64-bit seed or a
//! 32-byte key, with independent sub-streams selected by
//! [`ChaCha8Rng::set_stream`]. The underlying generator is xoshiro256**
//! rather than the ChaCha8 stream cipher — every property the workspace
//! relies on (determinism, stream independence, statistical quality for
//! coin flips and delay sampling) is preserved; bit-compatibility with the
//! real cipher is not, and nothing in the workspace depends on it.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng, SplitMix64, Xoshiro256};

/// Re-export of the core traits, mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// A deterministic seedable generator with selectable streams, shaped like
/// `rand_chacha::ChaCha8Rng`.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The seed key, retained so that `set_stream` can re-derive state.
    key: [u64; 4],
    stream: u64,
    inner: Xoshiro256,
}

impl ChaCha8Rng {
    /// Selects an independent sub-stream of this generator's key. Calling
    /// with the same value twice restarts the stream from its beginning,
    /// matching the real ChaCha stream semantics closely enough for
    /// reproducible per-node randomness derivation.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.inner = derive(self.key, stream);
    }

    /// The currently selected stream.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }
}

fn derive(key: [u64; 4], stream: u64) -> Xoshiro256 {
    let mut s = [0u64; 4];
    let mut sm =
        SplitMix64::new(stream.wrapping_mul(0xa076_1d64_78bd_642f) ^ 0x2545_f491_4f6c_dd1d);
    for (slot, k) in s.iter_mut().zip(key) {
        *slot = k ^ sm.next_u64();
    }
    Xoshiro256::from_seed(words_to_bytes(s))
}

fn words_to_bytes(words: [u64; 4]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (chunk, w) in out.chunks_exact_mut(8).zip(words) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    out
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u64; 4];
        for (slot, chunk) in key.iter_mut().zip(seed.chunks_exact(8)) {
            *slot = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        let inner = derive(key, 0);
        ChaCha8Rng { key, stream: 0, inner }
    }
}

/// Alias: the workspace only ever needs one quality tier.
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_independent_and_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());

        let mut s1 = ChaCha8Rng::seed_from_u64(42);
        s1.set_stream(1);
        let mut s2 = ChaCha8Rng::seed_from_u64(42);
        s2.set_stream(2);
        let v1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_ne!(v1, v2);

        // Re-selecting a stream restarts it.
        s1.set_stream(1);
        let v1_again: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_eq!(v1, v1_again);
    }

    #[test]
    fn from_seed_uses_all_key_bytes() {
        let mut k1 = [0u8; 32];
        let mut k2 = [0u8; 32];
        k2[31] = 1;
        let mut a = ChaCha8Rng::from_seed(k1);
        let mut b = ChaCha8Rng::from_seed(k2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        k1[31] = 1;
        let mut c = ChaCha8Rng::from_seed(k1);
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(vb, vc);
    }
}
