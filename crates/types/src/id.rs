//! Process identifiers.

use std::fmt;

/// Identifier of a process (node) in the system.
///
/// Nodes are numbered `0..n` and the network is a complete graph, as assumed
/// by Bracha (1984). The identifier doubles as an index into per-node
/// vectors, which is why it wraps a `usize`.
///
/// # Example
///
/// ```
/// use bft_types::NodeId;
///
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(format!("{a}"), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from its index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the zero-based index of this node.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all node identifiers of an `n`-node system, in order.
    ///
    /// # Example
    ///
    /// ```
    /// use bft_types::NodeId;
    /// let ids: Vec<_> = NodeId::all(3).collect();
    /// assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> + Clone {
        (0..n).map(NodeId)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trips_through_usize() {
        let id = NodeId::new(42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(NodeId::from(42usize), id);
    }

    #[test]
    fn all_yields_distinct_ordered_ids() {
        let ids: Vec<_> = NodeId::all(10).collect();
        assert_eq!(ids.len(), 10);
        let set: HashSet<_> = ids.iter().copied().collect();
        assert_eq!(set.len(), 10);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
        assert_eq!(format!("{:?}", NodeId::new(7)), "n7");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        assert_eq!(set.len(), 1);
    }
}
