//! System parameters and quorum arithmetic.

use crate::{ConfigError, NodeId};
use std::fmt;

/// The `(n, f)` parameters of a Byzantine fault tolerant system, together
/// with all quorum thresholds derived from them.
///
/// Bracha's protocols are parameterised by the total number of nodes `n` and
/// the maximum number of Byzantine faulty nodes `f`, and require
/// `n ≥ 3f + 1` (the optimal resilience bound proved in the paper). All
/// threshold computations used anywhere in the workspace live here so that
/// each protocol's resilience argument is auditable in one place.
///
/// # Example
///
/// ```
/// use bft_types::Config;
///
/// # fn main() -> Result<(), bft_types::ConfigError> {
/// let cfg = Config::new(10, 3)?;
/// assert_eq!(cfg.n(), 10);
/// assert_eq!(cfg.f(), 3);
/// assert_eq!(cfg.quorum(), 7); // n − f
/// assert_eq!(cfg.echo_threshold(), 7); // ⌈(n + f + 1) / 2⌉
/// assert_eq!(cfg.ready_threshold(), 4); // f + 1
/// assert_eq!(cfg.decide_threshold(), 7); // 2f + 1
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    n: usize,
    f: usize,
}

impl Config {
    /// Creates a configuration for `n` nodes tolerating up to `f` Byzantine
    /// faults.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TooFewNodes`] if `n == 0` and
    /// [`ConfigError::ResilienceExceeded`] if `n < 3f + 1`, the resilience
    /// bound of Bracha's protocols.
    pub fn new(n: usize, f: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::TooFewNodes { n });
        }
        if n < 3 * f + 1 {
            return Err(ConfigError::ResilienceExceeded { n, f });
        }
        Ok(Config { n, f })
    }

    /// Creates a configuration without enforcing `n ≥ 3f + 1`.
    ///
    /// This exists solely so that the benchmark harness can run protocols
    /// *beyond* their resilience bound (experiment T2 demonstrates that the
    /// bound is tight). Production users should call [`Config::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TooFewNodes`] if `n == 0` or
    /// [`ConfigError::ResilienceExceeded`] if `f >= n` (a system where every
    /// node may be faulty is meaningless even for experiments).
    pub fn new_unchecked_resilience(n: usize, f: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::TooFewNodes { n });
        }
        if f >= n {
            return Err(ConfigError::ResilienceExceeded { n, f });
        }
        Ok(Config { n, f })
    }

    /// Creates the configuration with the maximum tolerable `f` for a given
    /// `n`, i.e. `f = ⌊(n − 1) / 3⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TooFewNodes`] if `n == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use bft_types::Config;
    /// # fn main() -> Result<(), bft_types::ConfigError> {
    /// assert_eq!(Config::max_resilience(4)?.f(), 1);
    /// assert_eq!(Config::max_resilience(10)?.f(), 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn max_resilience(n: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::TooFewNodes { n });
        }
        Config::new(n, (n - 1) / 3)
    }

    /// Total number of nodes.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of Byzantine faulty nodes tolerated.
    pub const fn f(&self) -> usize {
        self.f
    }

    /// `n − f`: the number of messages a process waits for in each protocol
    /// step; also the minimum number of correct processes.
    pub const fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// `⌈(n + f + 1) / 2⌉`: the Echo threshold of Bracha's reliable
    /// broadcast. Any two sets of this size intersect in at least one
    /// correct node, which is what prevents sender equivocation.
    pub const fn echo_threshold(&self) -> usize {
        (self.n + self.f + 1).div_ceil(2)
    }

    /// `f + 1`: the Ready amplification threshold of reliable broadcast and
    /// the value-adoption threshold of the consensus protocol. A set of this
    /// size must contain at least one correct node.
    pub const fn ready_threshold(&self) -> usize {
        self.f + 1
    }

    /// `2f + 1`: the delivery threshold of reliable broadcast and the
    /// decision threshold of the consensus protocol. A set of this size
    /// contains at least `f + 1` correct nodes.
    pub const fn decide_threshold(&self) -> usize {
        2 * self.f + 1
    }

    /// `⌊n/2⌋ + 1`: the strict-majority threshold used by the consensus
    /// protocol's Echo step to lock ("D-flag") a value. Two different values
    /// can never both be locked in a round because their supporters would
    /// have to exceed `n` distinct nodes.
    pub const fn majority_threshold(&self) -> usize {
        self.n / 2 + 1
    }

    /// `f + 1`: the BV-broadcast amplification threshold of the MMR
    /// (Mostéfaoui–Moumen–Raynal) binary consensus. Once `f + 1` nodes
    /// BVAL-support a value, at least one of them is correct, so relaying
    /// the value cannot inject a Byzantine-only proposal.
    pub const fn bv_amplify_threshold(&self) -> usize {
        self.f + 1
    }

    /// `2f + 1`: the BV-broadcast acceptance threshold of the MMR binary
    /// consensus. `2f + 1` supporters contain at least `f + 1` correct
    /// nodes, so every correct node eventually sees the same support and
    /// admits the value to its `bin_values` set.
    pub const fn bv_accept_threshold(&self) -> usize {
        2 * self.f + 1
    }

    /// `⌊(n + f) / 2⌋ + 1`: the super-majority threshold of the Ben-Or
    /// baseline — more than `(n + f) / 2` votes for one value. Two
    /// super-majorities for different values would require more than
    /// `n + f` voters, impossible with at most `f` equivocators, and a
    /// super-majority forces every correct node to at least *observe* a
    /// plain majority for that value in the same round.
    pub const fn super_majority_threshold(&self) -> usize {
        (self.n + self.f) / 2 + 1
    }

    /// `n − 2f`: the erasure-coded broadcast reconstruction threshold —
    /// the number of data shards a payload is split into, and the number
    /// of distinct verified fragments that suffice to decode it. Any
    /// `n − f` echo quorum contains at least `n − 2f` correct fragments,
    /// so a node that turns Ready can always eventually reconstruct.
    pub const fn reconstruct_threshold(&self) -> usize {
        self.n - 2 * self.f
    }

    /// Returns whether this configuration satisfies `n ≥ 3f + 1`.
    ///
    /// Always true for configurations created via [`Config::new`]; may be
    /// false for those created via [`Config::new_unchecked_resilience`].
    pub const fn is_within_resilience(&self) -> bool {
        self.n >= 3 * self.f + 1
    }

    /// Iterates over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + Clone {
        NodeId::all(self.n)
    }

    /// Returns whether `id` names a node of this system.
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.n
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Config(n={}, f={})", self.n, self.f)
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={}, f={}", self.n, self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_zero_nodes() {
        assert!(matches!(Config::new(0, 0), Err(ConfigError::TooFewNodes { .. })));
        assert!(matches!(Config::max_resilience(0), Err(ConfigError::TooFewNodes { .. })));
    }

    #[test]
    fn rejects_insufficient_resilience() {
        assert!(matches!(Config::new(3, 1), Err(ConfigError::ResilienceExceeded { .. })));
        assert!(Config::new(4, 1).is_ok());
        assert!(Config::new(6, 2).is_err());
        assert!(Config::new(7, 2).is_ok());
    }

    #[test]
    fn unchecked_allows_overload_but_not_all_faulty() {
        let cfg = Config::new_unchecked_resilience(6, 2).unwrap();
        assert!(!cfg.is_within_resilience());
        assert!(Config::new_unchecked_resilience(3, 3).is_err());
    }

    #[test]
    fn known_threshold_values() {
        let cfg = Config::new(4, 1).unwrap();
        assert_eq!(cfg.quorum(), 3);
        assert_eq!(cfg.echo_threshold(), 3);
        assert_eq!(cfg.ready_threshold(), 2);
        assert_eq!(cfg.decide_threshold(), 3);
        assert_eq!(cfg.majority_threshold(), 3);

        let cfg = Config::new(7, 2).unwrap();
        assert_eq!(cfg.quorum(), 5);
        assert_eq!(cfg.echo_threshold(), 5);
        assert_eq!(cfg.ready_threshold(), 3);
        assert_eq!(cfg.decide_threshold(), 5);
        assert_eq!(cfg.majority_threshold(), 4);
    }

    /// Pins every accessor to the paper formula for all `n ≥ 3f + 1`,
    /// `f ≤ 5` (and a margin of `n` beyond the resilience floor), so a
    /// transposed threshold in `Config` itself cannot survive review.
    #[test]
    fn accessors_pin_paper_formulas_for_small_f() {
        for f in 0..=5usize {
            for n in (3 * f + 1)..=(3 * f + 1 + 20) {
                let cfg = Config::new(n, f).unwrap();
                assert_eq!(cfg.quorum(), n - f, "quorum, n={n} f={f}");
                assert_eq!(cfg.echo_threshold(), (n + f + 1).div_ceil(2), "echo, n={n} f={f}");
                assert_eq!(cfg.ready_threshold(), f + 1, "ready, n={n} f={f}");
                assert_eq!(cfg.decide_threshold(), 2 * f + 1, "decide, n={n} f={f}");
                assert_eq!(cfg.majority_threshold(), n / 2 + 1, "majority, n={n} f={f}");
                assert_eq!(cfg.bv_amplify_threshold(), f + 1, "bv-amplify, n={n} f={f}");
                assert_eq!(cfg.bv_accept_threshold(), 2 * f + 1, "bv-accept, n={n} f={f}");
                assert_eq!(
                    cfg.super_majority_threshold(),
                    (n + f) / 2 + 1,
                    "super-majority, n={n} f={f}"
                );
                assert_eq!(cfg.reconstruct_threshold(), n - 2 * f, "reconstruct, n={n} f={f}");
                // An n−f echo quorum holds at least n−2f correct
                // fragments, so reconstruction is always reachable.
                assert!(cfg.quorum() - cfg.f() >= cfg.reconstruct_threshold(), "n={n} f={f}");
                assert!(cfg.reconstruct_threshold() >= 1, "n={n} f={f}");
                // The BV acceptance quorum is reachable by correct nodes
                // alone, and a super-majority cannot be forged by the
                // adversary plus a minority of correct nodes.
                assert!(cfg.bv_accept_threshold() <= cfg.quorum(), "n={n} f={f}");
                assert!(cfg.super_majority_threshold() > cfg.majority_threshold() - 1);
            }
        }
    }

    #[test]
    fn max_resilience_matches_floor_formula() {
        for n in 1..100 {
            let cfg = Config::max_resilience(n).unwrap();
            assert_eq!(cfg.f(), (n - 1) / 3, "n = {n}");
            assert!(cfg.is_within_resilience());
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let cfg = Config::new(4, 1).unwrap();
        assert!(cfg.contains(NodeId::new(3)));
        assert!(!cfg.contains(NodeId::new(4)));
    }

    proptest! {
        /// Quorum-intersection facts the protocols rely on, checked for all
        /// valid configurations up to n = 200.
        #[test]
        fn quorum_intersection_properties(n in 1usize..200) {
            let cfg = Config::max_resilience(n).unwrap();
            let (n, f) = (cfg.n(), cfg.f());

            // Two quorums of size n − f intersect in ≥ n − 2f ≥ f + 1 nodes.
            prop_assert!(2 * cfg.quorum() >= n + cfg.ready_threshold());

            // Two echo-threshold sets intersect in > f nodes, hence in at
            // least one correct node.
            prop_assert!(2 * cfg.echo_threshold() > n + f);

            // A decide-threshold set and a quorum intersect in ≥ f + 1 nodes.
            prop_assert!(cfg.decide_threshold() + cfg.quorum() >= n + cfg.ready_threshold());

            // Correct nodes alone can always fill every threshold.
            prop_assert!(cfg.quorum() >= cfg.echo_threshold() || n < 3 * f + 1);
            prop_assert!(cfg.quorum() >= cfg.decide_threshold());

            // Two strict majorities among distinct senders would need > n nodes.
            prop_assert!(2 * cfg.majority_threshold() > n);
        }

        #[test]
        fn thresholds_are_monotone_in_f(n in 4usize..200) {
            let max_f = (n - 1) / 3;
            for f in 0..max_f {
                let a = Config::new(n, f).unwrap();
                let b = Config::new(n, f + 1).unwrap();
                prop_assert!(a.quorum() > b.quorum());
                prop_assert!(a.echo_threshold() <= b.echo_threshold());
                prop_assert!(a.decide_threshold() < b.decide_threshold());
            }
        }
    }
}
