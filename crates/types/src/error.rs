//! Error types.

use std::error::Error;
use std::fmt;

/// Error returned when constructing an invalid [`Config`](crate::Config).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The system must contain at least one node.
    TooFewNodes {
        /// The offending node count.
        n: usize,
    },
    /// The requested fault tolerance exceeds what the node count supports
    /// (`n ≥ 3f + 1` for checked construction, `f < n` always).
    ResilienceExceeded {
        /// The node count.
        n: usize,
        /// The requested fault tolerance.
        f: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewNodes { n } => {
                write!(f, "system must contain at least one node, got n = {n}")
            }
            ConfigError::ResilienceExceeded { n, f: faults } => {
                write!(f, "fault tolerance f = {faults} exceeds what n = {n} nodes support")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let msgs = [
            ConfigError::TooFewNodes { n: 0 }.to_string(),
            ConfigError::ResilienceExceeded { n: 3, f: 1 }.to_string(),
        ];
        for msg in msgs {
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ConfigError>();
    }
}
