//! Error types.

use std::error::Error;
use std::fmt;

/// Error returned when constructing an invalid [`Config`](crate::Config).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The system must contain at least one node.
    TooFewNodes {
        /// The offending node count.
        n: usize,
    },
    /// The requested fault tolerance exceeds what the node count supports
    /// (`n ≥ 3f + 1` for checked construction, `f < n` always).
    ResilienceExceeded {
        /// The node count.
        n: usize,
        /// The requested fault tolerance.
        f: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewNodes { n } => {
                write!(f, "system must contain at least one node, got n = {n}")
            }
            ConfigError::ResilienceExceeded { n, f: faults } => {
                write!(f, "fault tolerance f = {faults} exceeds what n = {n} nodes support")
            }
        }
    }
}

impl Error for ConfigError {}

/// Error raised when a protocol state machine reaches a state its quorum
/// arguments prove unreachable.
///
/// Correct nodes never construct these under the `n ≥ 3f + 1` resilience
/// assumption; a raised `ProtocolError` therefore means either the
/// assumption was violated (more than `f` faults) or the implementation
/// has a bug. Handlers degrade gracefully (drop the message, keep the
/// prior estimate) and surface the error through the observability
/// invariant sink rather than panicking mid-protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Bookkeeping for a round was missing when a handler needed it.
    MissingRoundState {
        /// The 1-based round number.
        round: u64,
    },
    /// A value set the quorum argument proves non-empty was empty.
    EmptyQuorumValueSet {
        /// The 1-based round number.
        round: u64,
    },
    /// A per-node slot the host guarantees populated was vacant.
    VacantSlot {
        /// The slot index (node id).
        index: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::MissingRoundState { round } => {
                write!(f, "round {round} state missing from handler bookkeeping")
            }
            ProtocolError::EmptyQuorumValueSet { round } => {
                write!(f, "round {round} quorum produced an empty value set")
            }
            ProtocolError::VacantSlot { index } => {
                write!(f, "process slot {index} is vacant")
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let msgs = [
            ConfigError::TooFewNodes { n: 0 }.to_string(),
            ConfigError::ResilienceExceeded { n: 3, f: 1 }.to_string(),
        ];
        for msg in msgs {
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ConfigError>();
    }
}
