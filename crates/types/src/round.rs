//! Round and step numbering for Bracha's consensus protocol.

use std::fmt;

/// A consensus round number, starting at 1.
///
/// Bracha's protocol proceeds in an unbounded sequence of rounds; each round
/// consists of the three [`Step`]s `Initial → Echo → Ready`.
///
/// # Example
///
/// ```
/// use bft_types::Round;
///
/// let r = Round::FIRST;
/// assert_eq!(r.get(), 1);
/// assert_eq!(r.next().get(), 2);
/// assert_eq!(r.next().prev(), Some(r));
/// assert_eq!(r.prev(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Round(u64);

impl Round {
    /// The first round of the protocol.
    pub const FIRST: Round = Round(1);

    /// Creates a round from its 1-based number.
    ///
    /// # Panics
    ///
    /// Panics if `round` is zero; rounds are numbered from 1.
    pub fn new(round: u64) -> Self {
        assert!(round >= 1, "rounds are numbered from 1");
        Round(round)
    }

    /// Returns the 1-based round number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the next round.
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Returns the previous round, or `None` for the first round.
    pub const fn prev(self) -> Option<Round> {
        if self.0 > 1 {
            Some(Round(self.0 - 1))
        } else {
            None
        }
    }

    /// Returns whether this is the first round.
    pub const fn is_first(self) -> bool {
        self.0 == 1
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One of the three steps of a Bracha consensus round.
///
/// Each round runs `Initial → Echo → Ready`; a process moves to the next
/// step only after collecting a quorum (`n − f`) of *validated* messages of
/// its current step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Step {
    /// Step 1: broadcast the current estimate.
    Initial,
    /// Step 2: broadcast the majority of the Initial messages received.
    Echo,
    /// Step 3: broadcast the (possibly D-flagged) Echo outcome; decide,
    /// adopt, or flip a coin.
    Ready,
}

impl Step {
    /// All steps in protocol order.
    pub const ALL: [Step; 3] = [Step::Initial, Step::Echo, Step::Ready];

    /// Returns the step that follows this one within a round, or `None`
    /// after [`Step::Ready`] (the round ends).
    pub const fn next(self) -> Option<Step> {
        match self {
            Step::Initial => Some(Step::Echo),
            Step::Echo => Some(Step::Ready),
            Step::Ready => None,
        }
    }

    /// Returns the step that precedes this one within a round, or `None`
    /// before [`Step::Initial`].
    pub const fn prev(self) -> Option<Step> {
        match self {
            Step::Initial => None,
            Step::Echo => Some(Step::Initial),
            Step::Ready => Some(Step::Echo),
        }
    }

    /// Returns the 0-based position of the step within its round.
    pub const fn index(self) -> usize {
        match self {
            Step::Initial => 0,
            Step::Echo => 1,
            Step::Ready => 2,
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Step::Initial => "initial",
            Step::Echo => "echo",
            Step::Ready => "ready",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_sequence() {
        let r = Round::FIRST;
        assert!(r.is_first());
        assert_eq!(r.prev(), None);
        let r5 = Round::new(5);
        assert_eq!(r5.get(), 5);
        assert_eq!(r5.next().get(), 6);
        assert_eq!(r5.prev(), Some(Round::new(4)));
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn round_zero_panics() {
        let _ = Round::new(0);
    }

    #[test]
    fn step_order_is_a_chain() {
        assert_eq!(Step::Initial.next(), Some(Step::Echo));
        assert_eq!(Step::Echo.next(), Some(Step::Ready));
        assert_eq!(Step::Ready.next(), None);
        for (i, s) in Step::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            if i > 0 {
                assert_eq!(s.prev(), Some(Step::ALL[i - 1]));
            } else {
                assert_eq!(s.prev(), None);
            }
        }
    }

    #[test]
    fn step_ordering_matches_protocol_order() {
        assert!(Step::Initial < Step::Echo);
        assert!(Step::Echo < Step::Ready);
    }
}
