//! A fixed-capacity bitset over node identifiers.

use crate::NodeId;

/// A set of [`NodeId`]s backed by `u64` words.
///
/// Protocol hot paths track "which peers have I already counted?" per
/// step or per phase; a hash set pays hashing and allocation per probe,
/// and a sorted vector pays a linear scan. For the small, dense id
/// spaces of a consensus cluster a bitset makes membership test and
/// insert one shift and mask, and the whole set for n ≤ 64 is a single
/// word.
///
/// # Example
///
/// ```
/// use bft_types::{NodeBitset, NodeId};
///
/// let mut seen = NodeBitset::new(7);
/// assert!(seen.insert(NodeId::new(3)));
/// assert!(!seen.insert(NodeId::new(3))); // already present
/// assert!(seen.contains(NodeId::new(3)));
/// assert_eq!(seen.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeBitset {
    words: Vec<u64>,
    len: usize,
}

impl NodeBitset {
    /// Creates an empty set with capacity for nodes `0..n`.
    pub fn new(n: usize) -> Self {
        NodeBitset { words: vec![0; n.div_ceil(64)], len: 0 }
    }

    /// Adds `id`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the capacity the set was created with.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let (word, bit) = (id.index() / 64, 1u64 << (id.index() % 64));
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        self.len += usize::from(fresh);
        fresh
    }

    /// Whether `id` is in the set. Out-of-capacity ids are never members.
    pub fn contains(&self, id: NodeId) -> bool {
        self.words.get(id.index() / 64).is_some_and(|w| w & (1u64 << (id.index() % 64)) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(NodeId::new(w * 64 + bit))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut s = NodeBitset::new(130);
        assert!(s.is_empty());
        for i in [0usize, 63, 64, 129] {
            assert!(!s.contains(NodeId::new(i)));
            assert!(s.insert(NodeId::new(i)));
            assert!(s.contains(NodeId::new(i)));
        }
        assert!(!s.insert(NodeId::new(64)));
        assert_eq!(s.len(), 4);
        assert!(!s.contains(NodeId::new(1)));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = NodeBitset::new(100);
        for i in [99usize, 0, 64, 63, 7] {
            s.insert(NodeId::new(i));
        }
        let ids: Vec<usize> = s.iter().map(|id| id.index()).collect();
        assert_eq!(ids, vec![0, 7, 63, 64, 99]);
    }

    #[test]
    fn out_of_capacity_is_not_a_member() {
        let s = NodeBitset::new(4);
        assert!(!s.contains(NodeId::new(1000)));
    }

    #[test]
    #[should_panic]
    fn insert_beyond_capacity_panics() {
        NodeBitset::new(4).insert(NodeId::new(64));
    }
}
