//! Core vocabulary types shared by every crate in the `async-bft` workspace.
//!
//! This crate defines the *language* of the reproduction of Bracha's
//! asynchronous Byzantine consensus (PODC 1984):
//!
//! * [`NodeId`] — process identifiers in a fully connected network of `n`
//!   nodes.
//! * [`Value`] — the binary consensus values `0` and `1`.
//! * [`Config`] — the `(n, f)` system parameters together with all quorum
//!   arithmetic used by the protocols (`n − f`, `⌈(n+f+1)/2⌉`, `f + 1`,
//!   `2f + 1`, …). Centralising the thresholds here keeps every protocol
//!   honest about where its resilience comes from.
//! * [`Round`] and [`Step`] — the three-step round structure of Bracha's
//!   consensus protocol.
//! * [`Process`] and [`Effect`] — the sans-io interface between protocol
//!   state machines and transports. Both the deterministic discrete-event
//!   simulator (`bft-sim`) and the thread actor runtime (`bft-runtime`)
//!   drive the *same* protocol code through this interface.
//!
//! # Example
//!
//! ```
//! use bft_types::{Config, Value};
//!
//! # fn main() -> Result<(), bft_types::ConfigError> {
//! let cfg = Config::new(7, 2)?; // n = 7 nodes, f = 2 Byzantine
//! assert_eq!(cfg.quorum(), 5); // n − f
//! assert_eq!(cfg.decide_threshold(), 5); // 2f + 1
//! assert_eq!(Value::Zero.flipped(), Value::One);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
// Quorum thresholds are deliberately spelled `f + 1`, `2f + 1`, `3f + 1`
// to match the paper's statements, even where clippy prefers `> f`.
#![allow(clippy::int_plus_one)]
#![warn(missing_docs)]

mod bitset;
mod config;
mod error;
mod id;
mod process;
mod round;
mod value;

pub use bitset::NodeBitset;
pub use config::Config;
pub use error::{ConfigError, ProtocolError};
pub use id::NodeId;
pub use process::{Effect, Envelope, Process};
pub use round::{Round, Step};
pub use value::Value;
