//! Binary consensus values.

use std::fmt;
use std::ops::Not;

/// A binary consensus value, `0` or `1`.
///
/// Bracha's consensus protocol (like Ben-Or's) is a *binary* Byzantine
/// agreement protocol; multi-value consensus is layered on top (see the
/// `bracha` crate's `multivalue` module). Using a dedicated enum instead of
/// `bool` keeps protocol code legible and prevents accidental boolean logic
/// on consensus values (C-CUSTOM-TYPE).
///
/// # Example
///
/// ```
/// use bft_types::Value;
///
/// let v = Value::One;
/// assert_eq!(!v, Value::Zero);
/// assert_eq!(Value::from_bit(1), Value::One);
/// assert_eq!(Value::Zero.bit(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The value `0`.
    Zero,
    /// The value `1`.
    One,
}

impl Value {
    /// Both values, in ascending order. Useful for iterating over the
    /// binary domain in validation predicates.
    pub const BOTH: [Value; 2] = [Value::Zero, Value::One];

    /// Returns the opposite value.
    ///
    /// # Example
    ///
    /// ```
    /// use bft_types::Value;
    /// assert_eq!(Value::Zero.flipped(), Value::One);
    /// ```
    pub const fn flipped(self) -> Value {
        match self {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
        }
    }

    /// Converts a bit (`0` or `1`) into a value. Any non-zero bit maps to
    /// [`Value::One`].
    pub const fn from_bit(bit: u8) -> Value {
        if bit == 0 {
            Value::Zero
        } else {
            Value::One
        }
    }

    /// Converts a boolean into a value (`true` ⇒ [`Value::One`]).
    pub const fn from_bool(b: bool) -> Value {
        if b {
            Value::One
        } else {
            Value::Zero
        }
    }

    /// Returns this value as a bit, `0` or `1`.
    pub const fn bit(self) -> u8 {
        match self {
            Value::Zero => 0,
            Value::One => 1,
        }
    }

    /// Returns this value as an index, `0` or `1`. Convenient for
    /// per-value count arrays: `counts[v.index()]`.
    pub const fn index(self) -> usize {
        self.bit() as usize
    }
}

impl Not for Value {
    type Output = Value;

    fn not(self) -> Value {
        self.flipped()
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::from_bool(b)
    }
}

impl From<Value> for bool {
    fn from(v: Value) -> bool {
        v == Value::One
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bit())
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        for v in Value::BOTH {
            assert_eq!(v.flipped().flipped(), v);
            assert_eq!(!!v, v);
            assert_ne!(!v, v);
        }
    }

    #[test]
    fn bit_round_trip() {
        assert_eq!(Value::from_bit(0), Value::Zero);
        assert_eq!(Value::from_bit(1), Value::One);
        assert_eq!(Value::from_bit(7), Value::One);
        for v in Value::BOTH {
            assert_eq!(Value::from_bit(v.bit()), v);
        }
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Value::from(true), Value::One);
        assert_eq!(Value::from(false), Value::Zero);
        assert!(bool::from(Value::One));
        assert!(!bool::from(Value::Zero));
    }

    #[test]
    fn index_is_bit() {
        assert_eq!(Value::Zero.index(), 0);
        assert_eq!(Value::One.index(), 1);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Value::Zero < Value::One);
    }

    #[test]
    fn display_is_the_bit() {
        assert_eq!(Value::Zero.to_string(), "0");
        assert_eq!(Value::One.to_string(), "1");
    }
}
