//! The sans-io interface between protocol state machines and transports.
//!
//! Protocols in this workspace are written as *pure state machines*: they
//! receive events ([`Process::on_start`], [`Process::on_message`]) and
//! return a list of [`Effect`]s. They never touch sockets, threads, clocks
//! or randomness sources directly (randomness is injected through the
//! `bft-coin` crate). This makes the same protocol code runnable under the
//! deterministic discrete-event simulator (`bft-sim`), under the thread
//! actor runtime (`bft-runtime`), and directly inside unit tests.

use crate::NodeId;
use std::fmt;
use std::sync::Arc;

/// An instruction emitted by a protocol state machine for its transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Effect<M, O> {
    /// Send `msg` to a single peer over the authenticated point-to-point
    /// link. The transport guarantees FIFO order per link and eventual
    /// delivery (the asynchronous model: unbounded but finite delay).
    Send {
        /// Destination node.
        to: NodeId,
        /// The message to deliver.
        msg: M,
    },
    /// Send `msg` to every node in the system, *including the sender
    /// itself*. This is the protocol-level "broadcast to all" of Bracha's
    /// paper (a convenience over `n` point-to-point sends — it is **not**
    /// reliable broadcast, which is a protocol built on top).
    Broadcast {
        /// The message to deliver to every node.
        msg: M,
    },
    /// Surface a protocol output to the harness (a consensus decision, a
    /// reliable-broadcast delivery, …).
    Output(O),
    /// The process has terminated and will take no further steps. The
    /// transport may drop any messages still addressed to it.
    Halt,
}

impl<M, O> Effect<M, O> {
    /// Returns the output carried by this effect, if any.
    pub fn as_output(&self) -> Option<&O> {
        match self {
            Effect::Output(o) => Some(o),
            _ => None,
        }
    }

    /// Returns whether this effect is [`Effect::Halt`].
    pub fn is_halt(&self) -> bool {
        matches!(self, Effect::Halt)
    }
}

/// A message in flight, tagged with its (authenticated) sender and its
/// destination.
///
/// The asynchronous model of the paper assumes authenticated channels: when
/// `v` receives a message from `u`, it knows the message was sent by `u`.
/// Transports realise this by constructing the envelope themselves rather
/// than trusting the payload.
///
/// The payload is behind an [`Arc`]: a broadcast to `n` recipients is `n`
/// envelopes sharing **one** payload allocation, so fan-out enqueues `n`
/// pointers instead of `n` deep clones. Read access is transparent via
/// deref (`envelope.msg.method()` works as before); transports hand the
/// payload to protocol code as `&M` ([`Process::on_message`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The node that sent the message.
    pub from: NodeId,
    /// The node the message is addressed to.
    pub to: NodeId,
    /// The protocol payload, shared between every envelope of the same
    /// broadcast.
    pub msg: Arc<M>,
}

impl<M> Envelope<M> {
    /// Wraps an owned payload into a fresh single-owner envelope.
    pub fn new(from: NodeId, to: NodeId, msg: M) -> Self {
        Envelope { from, to, msg: Arc::new(msg) }
    }

    /// Builds an envelope around an already-shared payload (the fan-out
    /// path: one `Arc` per broadcast, one cheap clone per recipient).
    pub fn shared(from: NodeId, to: NodeId, msg: Arc<M>) -> Self {
        Envelope { from, to, msg }
    }
}

impl<M: fmt::Display> fmt::Display for Envelope<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.from, self.to, self.msg)
    }
}

/// A protocol participant driven by a transport.
///
/// Implementations include every correct-protocol state machine in the
/// workspace (reliable broadcast nodes, Bracha/Ben-Or consensus nodes, ACS
/// nodes) *and* the Byzantine behaviours of `bft-adversary` — a faulty node
/// is just a `Process` that does not follow the protocol.
///
/// # Contract
///
/// * The transport calls [`Process::on_start`] exactly once, before any
///   message delivery.
/// * [`Process::on_message`] is called once per delivered message, with the
///   authenticated sender.
/// * After a process emits [`Effect::Halt`] (or [`Process::is_halted`]
///   returns true) the transport stops delivering to it.
///
/// # Example
///
/// A trivial process that decides its own input immediately:
///
/// ```
/// use bft_types::{Effect, NodeId, Process};
///
/// struct Trivial { id: NodeId, decided: Option<u8> }
///
/// impl Process for Trivial {
///     type Msg = ();
///     type Output = u8;
///
///     fn id(&self) -> NodeId { self.id }
///
///     fn on_start(&mut self) -> Vec<Effect<(), u8>> {
///         self.decided = Some(7);
///         vec![Effect::Output(7), Effect::Halt]
///     }
///
///     fn on_message(&mut self, _from: NodeId, _msg: &()) -> Vec<Effect<(), u8>> {
///         Vec::new()
///     }
///
///     fn output(&self) -> Option<u8> { self.decided }
///     fn is_halted(&self) -> bool { self.decided.is_some() }
/// }
///
/// let mut p = Trivial { id: NodeId::new(0), decided: None };
/// let effects = p.on_start();
/// assert_eq!(effects.len(), 2);
/// assert_eq!(p.output(), Some(7));
/// ```
pub trait Process {
    /// The message type exchanged between processes of this protocol.
    type Msg: Clone + fmt::Debug;
    /// The output type surfaced to the harness (e.g. the decided value).
    type Output: Clone + fmt::Debug;

    /// The identifier of this process.
    fn id(&self) -> NodeId;

    /// Invoked once by the transport before any delivery; typically emits
    /// the protocol's first broadcast.
    fn on_start(&mut self) -> Vec<Effect<Self::Msg, Self::Output>>;

    /// Invoked for each message delivered to this process. `from` is the
    /// authenticated sender.
    ///
    /// The payload arrives by reference because the transport may share
    /// one allocation between all recipients of a broadcast; processes
    /// clone only the pieces they store.
    fn on_message(&mut self, from: NodeId, msg: &Self::Msg)
        -> Vec<Effect<Self::Msg, Self::Output>>;

    /// Invoked by host transports that have out-of-band input for the
    /// process — e.g. the TCP runtime's client gateway draining external
    /// submissions into the mempool between deliveries. Never invoked by
    /// the deterministic simulator, so protocol state machines that rely
    /// on it are host-level adapters by construction; pure protocols
    /// keep the default no-op.
    fn on_tick(&mut self) -> Vec<Effect<Self::Msg, Self::Output>> {
        Vec::new()
    }

    /// The most recent output of this process (e.g. its decision), if any.
    fn output(&self) -> Option<Self::Output> {
        None
    }

    /// Whether this process has terminated. Halted processes receive no
    /// further events.
    fn is_halted(&self) -> bool {
        false
    }

    /// The protocol round this process is currently in, as a metrics hook
    /// for the harness. Protocols without a round structure return 0.
    fn round(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Ping;

    struct Echoer {
        id: NodeId,
        halted: bool,
    }

    impl Process for Echoer {
        type Msg = Ping;
        type Output = ();

        fn id(&self) -> NodeId {
            self.id
        }

        fn on_start(&mut self) -> Vec<Effect<Ping, ()>> {
            vec![Effect::Broadcast { msg: Ping }]
        }

        fn on_message(&mut self, from: NodeId, msg: &Ping) -> Vec<Effect<Ping, ()>> {
            self.halted = true;
            vec![Effect::Send { to: from, msg: msg.clone() }, Effect::Halt]
        }

        fn is_halted(&self) -> bool {
            self.halted
        }
    }

    #[test]
    fn process_lifecycle() {
        let mut p = Echoer { id: NodeId::new(1), halted: false };
        assert_eq!(p.on_start(), vec![Effect::Broadcast { msg: Ping }]);
        assert!(!p.is_halted());
        let effects = p.on_message(NodeId::new(2), &Ping);
        assert!(effects.iter().any(Effect::is_halt));
        assert!(p.is_halted());
        assert_eq!(p.round(), 0);
        assert_eq!(p.output(), None);
    }

    #[test]
    fn effect_accessors() {
        let e: Effect<Ping, u8> = Effect::Output(3);
        assert_eq!(e.as_output(), Some(&3));
        assert!(!e.is_halt());
        let h: Effect<Ping, u8> = Effect::Halt;
        assert_eq!(h.as_output(), None);
        assert!(h.is_halt());
    }

    #[test]
    fn envelope_display() {
        let env = Envelope::new(NodeId::new(0), NodeId::new(1), "hi");
        assert_eq!(env.to_string(), "n0 -> n1: hi");
        let shared = std::sync::Arc::new("yo");
        let a = Envelope::shared(NodeId::new(0), NodeId::new(1), shared.clone());
        let b = Envelope::shared(NodeId::new(0), NodeId::new(2), shared);
        assert!(std::sync::Arc::ptr_eq(&a.msg, &b.msg));
    }
}
